package query

import (
	"math"
	"strings"
)

// MaxQueryLen caps statement text; longer inputs are rejected before
// lexing so a hostile client cannot make the parser chew megabytes.
const MaxQueryLen = 1 << 20

// tokKind enumerates lexical token classes.
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tLParen
	tRParen
	tComma
	tStar
	tCmp // text holds the operator: = != < <= > >=
)

type token struct {
	kind tokKind
	pos  int    // byte offset of the first character
	text string // ident: original spelling; cmp: canonical operator
	num  uint64 // number value
}

// lexer produces tokens from statement text. It never panics: every
// malformed input surfaces as a *Error with KindParse.
type lexer struct {
	src string
	pos int
}

func (lx *lexer) next() (token, *Error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.pos++
		case c == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-':
			// -- line comment, for REPL and corpus files.
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tEOF, pos: lx.pos}, nil

scan:
	start := lx.pos
	c := lx.src[lx.pos]
	switch {
	case isIdentStart(c):
		for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
			lx.pos++
		}
		return token{kind: tIdent, pos: start, text: lx.src[start:lx.pos]}, nil
	case c >= '0' && c <= '9':
		var v uint64
		for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			d := uint64(lx.src[lx.pos] - '0')
			if v > (math.MaxUint64-d)/10 {
				return token{}, parseErrf(start, "number too large")
			}
			v = v*10 + d
			lx.pos++
		}
		if lx.pos < len(lx.src) && isIdentStart(lx.src[lx.pos]) {
			return token{}, parseErrf(lx.pos, "malformed number")
		}
		return token{kind: tNumber, pos: start, num: v}, nil
	case c == '(':
		lx.pos++
		return token{kind: tLParen, pos: start}, nil
	case c == ')':
		lx.pos++
		return token{kind: tRParen, pos: start}, nil
	case c == ',':
		lx.pos++
		return token{kind: tComma, pos: start}, nil
	case c == '*':
		lx.pos++
		return token{kind: tStar, pos: start}, nil
	case c == '=':
		lx.pos++
		return token{kind: tCmp, pos: start, text: "="}, nil
	case c == '!':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '=' {
			lx.pos += 2
			return token{kind: tCmp, pos: start, text: "!="}, nil
		}
		return token{}, parseErrf(start, "unexpected character %q", string(c))
	case c == '<':
		lx.pos++
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '=' {
			lx.pos++
			return token{kind: tCmp, pos: start, text: "<="}, nil
		}
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '>' {
			lx.pos++ // <> is an accepted alias for !=
			return token{kind: tCmp, pos: start, text: "!="}, nil
		}
		return token{kind: tCmp, pos: start, text: "<"}, nil
	case c == '>':
		lx.pos++
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '=' {
			lx.pos++
			return token{kind: tCmp, pos: start, text: ">="}, nil
		}
		return token{kind: tCmp, pos: start, text: ">"}, nil
	}
	return token{}, parseErrf(start, "unexpected character %q", string(c))
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// keywords are reserved: they parse as keywords everywhere, so none
// can be used as a column or alias name.
var keywords = map[string]bool{
	"EXPLAIN": true, "SELECT": true, "DISTINCT": true, "AS": true,
	"FROM": true, "JOIN": true, "REGIONS": true, "ON": true,
	"WHERE": true, "AND": true, "GROUP": true, "ORDER": true,
	"BY": true, "ASC": true, "DESC": true, "LIMIT": true,
	"CONTAINS": true, "INTERSECTS": true, "NEAREST": true,
	"BOX": true, "POINT": true,
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true,
}

// parser is the recursive-descent parser. It holds one token of
// lookahead.
type parser struct {
	lx  lexer
	tok token
}

// Parse parses one statement. All failures are *Error with KindParse;
// the parser never panics on any input (FuzzParseQuery enforces this
// together with the String() round-trip property).
func Parse(text string) (*Statement, error) {
	if len(text) > MaxQueryLen {
		return nil, parseErrf(0, "statement longer than %d bytes", MaxQueryLen)
	}
	p := &parser{lx: lexer{src: text}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	st := &Statement{}
	if p.atKeyword("EXPLAIN") {
		st.Explain = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	st.Select = sel
	if p.tok.kind != tEOF {
		return nil, parseErrf(p.tok.pos, "trailing input after statement")
	}
	return st, nil
}

func (p *parser) advance() *Error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// kw returns the uppercase keyword spelling of the current token if
// it is a reserved word, else "".
func (p *parser) kw() string {
	if p.tok.kind != tIdent {
		return ""
	}
	up := strings.ToUpper(p.tok.text)
	if keywords[up] {
		return up
	}
	return ""
}

func (p *parser) atKeyword(k string) bool { return p.kw() == k }

func (p *parser) expectKeyword(k string) *Error {
	if !p.atKeyword(k) {
		return parseErrf(p.tok.pos, "expected %s", k)
	}
	return p.advance()
}

func (p *parser) expect(kind tokKind, what string) *Error {
	if p.tok.kind != kind {
		return parseErrf(p.tok.pos, "expected %s", what)
	}
	return p.advance()
}

// ident consumes a non-reserved identifier.
func (p *parser) ident(what string) (string, *Error) {
	if p.tok.kind != tIdent {
		return "", parseErrf(p.tok.pos, "expected %s", what)
	}
	if p.kw() != "" {
		return "", parseErrf(p.tok.pos, "%s is a reserved word; cannot be used as %s", strings.ToUpper(p.tok.text), what)
	}
	name := p.tok.text
	return name, p.advance()
}

// number consumes an unsigned integer literal with an upper bound.
func (p *parser) number(max uint64, what string) (uint64, *Error) {
	if p.tok.kind != tNumber {
		return 0, parseErrf(p.tok.pos, "expected %s", what)
	}
	v := p.tok.num
	if v > max {
		return 0, parseErrf(p.tok.pos, "%s %d out of range (max %d)", what, v, max)
	}
	return v, p.advance()
}

func (p *parser) parseSelect() (*Select, *Error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	if p.atKeyword("DISTINCT") {
		sel.Distinct = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind == tStar {
		sel.Star = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else {
		for {
			it, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			sel.Items = append(sel.Items, it)
			if p.tok.kind != tComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	sel.From = from
	if p.atKeyword("JOIN") {
		j, err := p.parseJoin()
		if err != nil {
			return nil, err
		}
		sel.Join = j
	}
	if p.atKeyword("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			pred, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			sel.Where = append(sel.Where, pred)
			if !p.atKeyword("AND") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.atKeyword("GROUP") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident("group column")
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, col)
			if p.tok.kind != tComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.atKeyword("ORDER") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident("order column")
			if err != nil {
				return nil, err
			}
			key := OrderKey{Col: col}
			switch p.kw() {
			case "ASC":
				if err := p.advance(); err != nil {
					return nil, err
				}
			case "DESC":
				key.Desc = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			sel.OrderBy = append(sel.OrderBy, key)
			if p.tok.kind != tComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.atKeyword("LIMIT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.number(math.MaxInt64, "LIMIT")
		if err != nil {
			return nil, err
		}
		sel.Limit = int64(n)
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, *Error) {
	var it SelectItem
	switch p.kw() {
	case "COUNT":
		it.Agg = AggCount
	case "SUM":
		it.Agg = AggSum
	case "MIN":
		it.Agg = AggMin
	case "MAX":
		it.Agg = AggMax
	}
	if it.Agg != AggNone {
		if err := p.advance(); err != nil {
			return it, err
		}
		if err := p.expect(tLParen, "("); err != nil {
			return it, err
		}
		if p.tok.kind == tStar {
			if it.Agg != AggCount {
				return it, parseErrf(p.tok.pos, "%v(*) is not valid; only COUNT(*)", it.Agg)
			}
			it.Col = "*"
			if err := p.advance(); err != nil {
				return it, err
			}
		} else {
			col, err := p.ident("aggregate column")
			if err != nil {
				return it, err
			}
			it.Col = col
		}
		if err := p.expect(tRParen, ")"); err != nil {
			return it, err
		}
	} else {
		col, err := p.ident("column name")
		if err != nil {
			return it, err
		}
		it.Col = col
	}
	if p.atKeyword("AS") {
		if err := p.advance(); err != nil {
			return it, err
		}
		as, err := p.ident("alias")
		if err != nil {
			return it, err
		}
		it.As = as
	}
	return it, nil
}

func (p *parser) parseJoin() (*Join, *Error) {
	if err := p.expectKeyword("JOIN"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("REGIONS"); err != nil {
		return nil, err
	}
	if err := p.expect(tLParen, "("); err != nil {
		return nil, err
	}
	j := &Join{}
	for {
		id, err := p.number(math.MaxUint64, "region id")
		if err != nil {
			return nil, err
		}
		box, err := p.parseBox()
		if err != nil {
			return nil, err
		}
		j.Regions = append(j.Regions, Region{ID: id, Box: box})
		if p.tok.kind != tComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expect(tRParen, ")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTERSECTS"); err != nil {
		return nil, err
	}
	return j, nil
}

func (p *parser) parsePred() (Pred, *Error) {
	switch p.kw() {
	case "CONTAINS", "INTERSECTS":
		contains := p.kw() == "CONTAINS"
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(tLParen, "("); err != nil {
			return nil, err
		}
		box, err := p.parseBox()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tRParen, ")"); err != nil {
			return nil, err
		}
		return &BoxPred{Contains: contains, Box: box}, nil
	case "NEAREST":
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(tLParen, "("); err != nil {
			return nil, err
		}
		pt, err := p.parsePoint()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tComma, ","); err != nil {
			return nil, err
		}
		k, err := p.number(math.MaxInt32, "NEAREST k")
		if err != nil {
			return nil, err
		}
		if err := p.expect(tRParen, ")"); err != nil {
			return nil, err
		}
		return &NearestPred{Point: pt, K: int64(k)}, nil
	}
	col, err := p.ident("predicate")
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tCmp {
		return nil, parseErrf(p.tok.pos, "expected comparison operator")
	}
	var op CmpOp
	switch p.tok.text {
	case "=":
		op = OpEq
	case "!=":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	v, err := p.number(math.MaxInt64, "comparison value")
	if err != nil {
		return nil, err
	}
	return &CmpPred{Col: col, Op: op, Value: int64(v)}, nil
}

// parseBox parses BOX(lo1, hi1, lo2, hi2, ...). Dimension count is
// checked at compile time against the database grid; coordinate range
// (uint32) is a lexical property checked here.
func (p *parser) parseBox() (BoxLit, *Error) {
	if err := p.expectKeyword("BOX"); err != nil {
		return BoxLit{}, err
	}
	vs, err := p.u32List()
	if err != nil {
		return BoxLit{}, err
	}
	return BoxLit{Bounds: vs}, nil
}

func (p *parser) parsePoint() (PointLit, *Error) {
	if err := p.expectKeyword("POINT"); err != nil {
		return PointLit{}, err
	}
	vs, err := p.u32List()
	if err != nil {
		return PointLit{}, err
	}
	return PointLit{Coords: vs}, nil
}

func (p *parser) u32List() ([]uint32, *Error) {
	if err := p.expect(tLParen, "("); err != nil {
		return nil, err
	}
	var vs []uint32
	for {
		v, err := p.number(math.MaxUint32, "coordinate")
		if err != nil {
			return nil, err
		}
		vs = append(vs, uint32(v))
		if p.tok.kind != tComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expect(tRParen, ")"); err != nil {
		return nil, err
	}
	return vs, nil
}

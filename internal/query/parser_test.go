package query

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestParseRoundTrip checks the canonical-rendering property on
// representative statements: parse, render, re-parse, compare ASTs.
func TestParseRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT * FROM points",
		"select * from points",
		"SELECT id FROM points",
		"SELECT id, x, y FROM points WHERE CONTAINS(BOX(0, 100, 0, 100))",
		"SELECT * FROM points WHERE INTERSECTS(BOX(10, 20, 30, 40))",
		"SELECT id AS object, x FROM points WHERE x >= 5 AND y < 100 AND id != 3",
		"SELECT * FROM points WHERE NEAREST(POINT(512, 512), 5)",
		"SELECT COUNT(*) FROM points",
		"SELECT COUNT(*) AS n, SUM(x), MIN(y), MAX(y) FROM points WHERE CONTAINS(BOX(0, 63, 0, 63))",
		"SELECT region, COUNT(*) FROM points JOIN REGIONS(1 BOX(0, 10, 0, 10), 2 BOX(5, 20, 5, 20)) ON INTERSECTS GROUP BY region",
		"SELECT DISTINCT x FROM points ORDER BY x DESC LIMIT 10",
		"SELECT id FROM points ORDER BY x, y DESC, id LIMIT 0",
		"EXPLAIN SELECT * FROM points WHERE CONTAINS(BOX(0, 100, 0, 100))",
		"SELECT id FROM points WHERE x <> 7",
		"SELECT id FROM points -- trailing comment",
		"SELECT id\n\tFROM points\n\tWHERE x = 1",
	}
	for _, q := range queries {
		st, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		rendered := st.String()
		st2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-Parse(%q) of %q: %v", rendered, q, err)
		}
		if !reflect.DeepEqual(st, st2) {
			t.Errorf("round trip changed AST:\n  input:    %q\n  rendered: %q\n  first:  %#v\n  second: %#v", q, rendered, st, st2)
		}
		if rendered2 := st2.String(); rendered2 != rendered {
			t.Errorf("rendering is not idempotent: %q -> %q", rendered, rendered2)
		}
	}
}

// TestParseErrors checks malformed statements fail with typed parse
// errors (never panics, never KindPlan).
func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM points",
		"SELECT * FROM",
		"SELECT * FROM points trailing",
		"SELECT * FROM points WHERE",
		"SELECT * FROM points WHERE CONTAINS(BOX(1, 2, 3))garbage",
		"SELECT * FROM points WHERE CONTAINS(1, 2)",
		"SELECT * FROM points WHERE NEAREST(POINT(1, 2))",
		"SELECT * FROM points WHERE x",
		"SELECT * FROM points WHERE x ! 3",
		"SELECT * FROM points WHERE x = 99999999999999999999999999",
		"SELECT * FROM points WHERE x = 5000000000", // > MaxUint32 coordinate is fine for compares; box is not:
		"SELECT * FROM points LIMIT x",
		"SELECT SELECT FROM points",
		"SELECT id AS FROM FROM points",
		"SELECT SUM(*) FROM points",
		"SELECT * FROM points JOIN REGIONS() ON INTERSECTS",
		"SELECT * FROM points JOIN REGIONS(1 BOX(0, 1, 0, 1)) ON EQUALS",
		"SELECT * FROM points GROUP BY",
		"SELECT * FROM points ORDER BY",
		"SELECT * FROM points WHERE CONTAINS(BOX(0, 5000000000, 0, 1))",
		"SELECT * FROM points; DROP TABLE points",
		"SELECT 1abc FROM points",
	}
	for _, q := range bad {
		st, err := Parse(q)
		if q == "SELECT * FROM points WHERE x = 5000000000" {
			// Large comparison literals are legal (they clamp at plan
			// time); this entry documents the asymmetry with BOX.
			if err != nil {
				t.Errorf("Parse(%q) should accept large comparison literals: %v", q, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("Parse(%q) = %v, want error", q, st)
			continue
		}
		var qe *Error
		if !errors.As(err, &qe) || qe.Kind != KindParse {
			t.Errorf("Parse(%q) error %v is not a typed parse error", q, err)
		}
	}
}

// TestParsePositions checks parse errors carry a plausible offset.
func TestParsePositions(t *testing.T) {
	q := "SELECT * FROM points WHERE x ~ 3"
	_, err := Parse(q)
	var qe *Error
	if !errors.As(err, &qe) {
		t.Fatalf("want *Error, got %v", err)
	}
	if qe.Pos != strings.Index(q, "~") {
		t.Errorf("Pos = %d, want %d", qe.Pos, strings.Index(q, "~"))
	}
	if !strings.Contains(qe.Error(), "offset") {
		t.Errorf("Error() = %q, want offset rendering", qe.Error())
	}
}

// TestParseShapes spot-checks the parsed structure.
func TestParseShapes(t *testing.T) {
	st, err := Parse("EXPLAIN SELECT DISTINCT id AS i, COUNT(*) FROM points JOIN REGIONS(7 BOX(1, 2, 3, 4)) ON INTERSECTS WHERE x >= 10 AND NEAREST(POINT(1, 2), 3) GROUP BY id ORDER BY i DESC LIMIT 9")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.Select
	if !st.Explain || !sel.Distinct || sel.Star {
		t.Errorf("flags wrong: %+v", st)
	}
	if len(sel.Items) != 2 || sel.Items[0].As != "i" || sel.Items[1].Agg != AggCount {
		t.Errorf("items wrong: %+v", sel.Items)
	}
	if sel.Join == nil || len(sel.Join.Regions) != 1 || sel.Join.Regions[0].ID != 7 {
		t.Errorf("join wrong: %+v", sel.Join)
	}
	if len(sel.Where) != 2 {
		t.Fatalf("where wrong: %+v", sel.Where)
	}
	if cp, ok := sel.Where[0].(*CmpPred); !ok || cp.Op != OpGe || cp.Value != 10 {
		t.Errorf("cmp pred wrong: %+v", sel.Where[0])
	}
	if np, ok := sel.Where[1].(*NearestPred); !ok || np.K != 3 {
		t.Errorf("nearest pred wrong: %+v", sel.Where[1])
	}
	if len(sel.GroupBy) != 1 || len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc || sel.Limit != 9 {
		t.Errorf("tail clauses wrong: %+v", sel)
	}
}

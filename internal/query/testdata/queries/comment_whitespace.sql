SELECT id -- project just the identifier
  FROM points
  WHERE x <> 7 AND y < 4096

SELECT id AS object, x, y FROM points WHERE INTERSECTS(BOX(10, 200, 10, 200)) AND id != 3 AND x >= 50

package relation

import (
	"fmt"
	"strings"
)

// AggFunc is an aggregate function.
type AggFunc int

const (
	// Count counts tuples per group (its column is ignored).
	Count AggFunc = iota
	// Sum adds a TInt or TFloat column.
	Sum
	// Min takes the minimum of a TInt, TFloat or TString column.
	Min
	// Max takes the maximum of a TInt, TFloat or TString column.
	Max
)

// String implements fmt.Stringer.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	}
	return fmt.Sprintf("AggFunc(%d)", int(f))
}

// Agg specifies one aggregate output column.
type Agg struct {
	Func AggFunc
	Col  string // input column (ignored for Count)
	As   string // output column name
}

// GroupBy groups the relation by the named columns and computes the
// aggregates per group — the set-at-a-time summarization needed for
// the paper's "global property" queries (how many objects, what is
// the area of each). Output columns are the group columns followed by
// the aggregates; groups appear in first-encounter order.
func GroupBy(r *Relation, groupCols []string, aggs []Agg) (*Relation, error) {
	gi := make([]int, len(groupCols))
	schema := make(Schema, 0, len(groupCols)+len(aggs))
	for i, name := range groupCols {
		j := r.Schema.Index(name)
		if j < 0 {
			return nil, fmt.Errorf("relation: no group column %q", name)
		}
		gi[i] = j
		schema = append(schema, r.Schema[j])
	}
	ai := make([]int, len(aggs))
	for i, a := range aggs {
		if a.As == "" {
			return nil, fmt.Errorf("relation: aggregate %d has no output name", i)
		}
		switch a.Func {
		case Count:
			ai[i] = -1
			schema = append(schema, Column{Name: a.As, Type: TInt})
		case Sum, Min, Max:
			j := r.Schema.Index(a.Col)
			if j < 0 {
				return nil, fmt.Errorf("relation: no aggregate column %q", a.Col)
			}
			typ := r.Schema[j].Type
			if err := checkAggType(a.Func, typ); err != nil {
				return nil, err
			}
			ai[i] = j
			schema = append(schema, Column{Name: a.As, Type: typ})
		default:
			return nil, fmt.Errorf("relation: unknown aggregate %v", a.Func)
		}
	}
	out := New(schema)
	groupIdx := make(map[string]int)
	var order []string
	groups := make(map[string][]Tuple)
	for _, t := range r.Tuples {
		key := make(Tuple, len(gi))
		for i, j := range gi {
			key[i] = t[j]
		}
		k := tupleKey(key)
		if _, ok := groupIdx[k]; !ok {
			groupIdx[k] = len(order)
			order = append(order, k)
		}
		groups[k] = append(groups[k], t)
	}
	for _, k := range order {
		tuples := groups[k]
		row := make(Tuple, 0, len(schema))
		for _, j := range gi {
			row = append(row, tuples[0][j])
		}
		for i, a := range aggs {
			v, err := aggregate(a.Func, tuples, ai[i])
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out.Tuples = append(out.Tuples, row)
	}
	return out, nil
}

func checkAggType(f AggFunc, t Type) error {
	switch f {
	case Sum:
		if t != TInt && t != TFloat {
			return fmt.Errorf("relation: sum over %v column", t)
		}
	case Min, Max:
		if t != TInt && t != TFloat && t != TString && t != TID {
			return fmt.Errorf("relation: %v over %v column", f, t)
		}
	}
	return nil
}

func aggregate(f AggFunc, tuples []Tuple, col int) (Value, error) {
	if f == Count {
		return int64(len(tuples)), nil
	}
	switch v0 := tuples[0][col].(type) {
	case int64:
		acc := v0
		for _, t := range tuples[1:] {
			v := t[col].(int64)
			acc = combineInt(f, acc, v)
		}
		return acc, nil
	case float64:
		acc := v0
		for _, t := range tuples[1:] {
			v := t[col].(float64)
			acc = combineFloat(f, acc, v)
		}
		return acc, nil
	case uint64:
		acc := v0
		for _, t := range tuples[1:] {
			v := t[col].(uint64)
			acc = combineUint(f, acc, v)
		}
		return acc, nil
	case string:
		if f == Sum {
			return nil, fmt.Errorf("relation: sum over string column")
		}
		acc := v0
		for _, t := range tuples[1:] {
			v := t[col].(string)
			if (f == Min && strings.Compare(v, acc) < 0) || (f == Max && strings.Compare(v, acc) > 0) {
				acc = v
			}
		}
		return acc, nil
	}
	return nil, fmt.Errorf("relation: cannot aggregate %T", tuples[0][col])
}

func combineInt(f AggFunc, a, b int64) int64 {
	switch f {
	case Sum:
		return a + b
	case Min:
		if b < a {
			return b
		}
	case Max:
		if b > a {
			return b
		}
	}
	return a
}

func combineFloat(f AggFunc, a, b float64) float64 {
	switch f {
	case Sum:
		return a + b
	case Min:
		if b < a {
			return b
		}
	case Max:
		if b > a {
			return b
		}
	}
	return a
}

func combineUint(f AggFunc, a, b uint64) uint64 {
	switch f {
	case Min:
		if b < a {
			return b
		}
	case Max:
		if b > a {
			return b
		}
	}
	return a
}

package relation

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// bruteGroupBy recomputes GroupBy with a deliberately naive
// implementation — a linear scan per group, accumulating with the
// plainest possible loops — to serve as the oracle for the property
// test. It supports the same group-in-first-encounter-order contract.
func bruteGroupBy(r *Relation, groupCols []string, aggs []Agg) *Relation {
	gi := make([]int, len(groupCols))
	for i, name := range groupCols {
		gi[i] = r.Schema.Index(name)
	}
	var keys []string
	rows := map[string][]Tuple{}
	for _, t := range r.Tuples {
		key := ""
		for _, j := range gi {
			key += fmt.Sprintf("|%v", t[j])
		}
		if _, ok := rows[key]; !ok {
			keys = append(keys, key)
		}
		rows[key] = append(rows[key], t)
	}
	out := &Relation{}
	for _, k := range keys {
		group := rows[k]
		row := make(Tuple, 0, len(gi)+len(aggs))
		for _, j := range gi {
			row = append(row, group[0][j])
		}
		for _, a := range aggs {
			j := r.Schema.Index(a.Col)
			switch a.Func {
			case Count:
				row = append(row, int64(len(group)))
			case Sum:
				switch group[0][j].(type) {
				case int64:
					var acc int64
					for _, t := range group {
						acc += t[j].(int64)
					}
					row = append(row, acc)
				case float64:
					var acc float64
					for _, t := range group {
						acc += t[j].(float64)
					}
					row = append(row, acc)
				}
			case Min, Max:
				best := group[0][j]
				for _, t := range group[1:] {
					v := t[j]
					var less bool
					switch x := v.(type) {
					case int64:
						less = x < best.(int64)
					case float64:
						less = x < best.(float64)
					case uint64:
						less = x < best.(uint64)
					case string:
						less = x < best.(string)
					}
					if (a.Func == Min && less) || (a.Func == Max && !less && !reflect.DeepEqual(v, best)) {
						best = v
					}
				}
				row = append(row, best)
			}
		}
		out.Tuples = append(out.Tuples, row)
	}
	return out
}

// TestGroupByProperty checks GroupBy against the brute-force oracle
// over randomly generated relations: random group cardinality, random
// value distributions, every aggregate function, many trials.
func TestGroupByProperty(t *testing.T) {
	schema := MustSchema(
		Column{Name: "g", Type: TInt},
		Column{Name: "h", Type: TString},
		Column{Name: "n", Type: TInt},
		Column{Name: "x", Type: TFloat},
		Column{Name: "s", Type: TString},
	)
	aggs := []Agg{
		{Func: Count, As: "cnt"},
		{Func: Sum, Col: "n", As: "sum_n"},
		{Func: Min, Col: "n", As: "min_n"},
		{Func: Max, Col: "n", As: "max_n"},
		{Func: Sum, Col: "x", As: "sum_x"},
		{Func: Min, Col: "s", As: "min_s"},
		{Func: Max, Col: "s", As: "max_s"},
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		r := New(schema)
		nRows := rng.Intn(60)
		nGroups := 1 + rng.Intn(8)
		for i := 0; i < nRows; i++ {
			r.MustAppend(Tuple{
				int64(rng.Intn(nGroups)),
				fmt.Sprintf("h%d", rng.Intn(3)),
				int64(rng.Intn(201) - 100),
				float64(rng.Intn(1000)) / 8, // dyadic: exact float sums
				fmt.Sprintf("s%02d", rng.Intn(50)),
			})
		}
		for _, groupCols := range [][]string{{"g"}, {"g", "h"}, nil} {
			got, err := GroupBy(r, groupCols, aggs)
			if err != nil {
				t.Fatalf("trial %d group %v: %v", trial, groupCols, err)
			}
			want := bruteGroupBy(r, groupCols, aggs)
			if nRows == 0 {
				// An empty input yields no groups, even with no
				// group columns (SQL would yield one global row; the
				// paper's engine defines it as empty).
				if got.Len() != 0 {
					t.Fatalf("trial %d: empty relation produced %d groups", trial, got.Len())
				}
				continue
			}
			if got.Len() != len(want.Tuples) {
				t.Fatalf("trial %d group %v: %d groups, want %d",
					trial, groupCols, got.Len(), len(want.Tuples))
			}
			for i, row := range got.Tuples {
				if !reflect.DeepEqual(row, want.Tuples[i]) {
					t.Fatalf("trial %d group %v row %d:\n got %v\nwant %v",
						trial, groupCols, i, row, want.Tuples[i])
				}
			}
		}
	}
}

// TestGroupByEmptyRelation pins the empty-input contract explicitly.
func TestGroupByEmptyRelation(t *testing.T) {
	r := New(MustSchema(Column{Name: "g", Type: TInt}, Column{Name: "v", Type: TInt}))
	out, err := GroupBy(r, []string{"g"}, []Agg{{Func: Sum, Col: "v", As: "s"}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("empty relation grouped to %d rows", out.Len())
	}
	if len(out.Schema) != 2 || out.Schema[0].Name != "g" || out.Schema[1].Name != "s" {
		t.Fatalf("wrong output schema %v", out.Schema)
	}
}

// TestGroupBySingleGroup: all tuples in one group, every aggregate.
func TestGroupBySingleGroup(t *testing.T) {
	r := New(MustSchema(Column{Name: "g", Type: TString}, Column{Name: "v", Type: TInt}))
	for _, v := range []int64{5, -2, 9, 9, 0} {
		r.MustAppend(Tuple{"only", v})
	}
	out, err := GroupBy(r, []string{"g"}, []Agg{
		{Func: Count, As: "c"},
		{Func: Sum, Col: "v", As: "sum"},
		{Func: Min, Col: "v", As: "min"},
		{Func: Max, Col: "v", As: "max"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("%d groups, want 1", out.Len())
	}
	want := Tuple{"only", int64(5), int64(21), int64(-2), int64(9)}
	if !reflect.DeepEqual(out.Tuples[0], want) {
		t.Fatalf("got %v, want %v", out.Tuples[0], want)
	}
}

// TestGroupByFirstEncounterOrder pins the group ordering contract.
func TestGroupByFirstEncounterOrder(t *testing.T) {
	r := New(MustSchema(Column{Name: "g", Type: TString}))
	for _, g := range []string{"z", "a", "m", "a", "z", "q"} {
		r.MustAppend(Tuple{g})
	}
	out, err := GroupBy(r, []string{"g"}, []Agg{{Func: Count, As: "c"}})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, row := range out.Tuples {
		order = append(order, row[0].(string))
	}
	if !reflect.DeepEqual(order, []string{"z", "a", "m", "q"}) {
		t.Fatalf("group order %v, want first-encounter order", order)
	}
}

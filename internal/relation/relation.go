// Package relation is a miniature set-at-a-time relational engine:
// the substrate Section 4 requires to host spatial query processing
// inside a DBMS. It provides schemas, relations and the classical
// operators (select, project with duplicate elimination, sort,
// equijoin), plus the two additions the paper calls for: a domain for
// the element object class, and the spatial join R[zr <> zs]S
// implemented with "the implementation strategies of natural join...
// instead of looking for equality, we're looking for containment".
package relation

import (
	"fmt"
	"sort"
	"strings"

	"probe/internal/core"
	"probe/internal/zorder"
)

// Type is a column type.
type Type int

const (
	// TID is a 64-bit object/tuple identifier (the p@ of the paper).
	TID Type = iota
	// TInt is a 64-bit signed integer.
	TInt
	// TFloat is a 64-bit float.
	TFloat
	// TString is a string.
	TString
	// TElement is the element domain of Section 4: a variable-length
	// bitstring with a spatial interpretation.
	TElement
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TID:
		return "id"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TString:
		return "string"
	case TElement:
		return "element"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Value is a single attribute value: uint64 for TID, int64 for TInt,
// float64 for TFloat, string for TString, zorder.Element for
// TElement.
type Value interface{}

// checkValue verifies a value against a type.
func checkValue(v Value, t Type) error {
	ok := false
	switch t {
	case TID:
		_, ok = v.(uint64)
	case TInt:
		_, ok = v.(int64)
	case TFloat:
		_, ok = v.(float64)
	case TString:
		_, ok = v.(string)
	case TElement:
		_, ok = v.(zorder.Element)
	}
	if !ok {
		return fmt.Errorf("relation: value %v (%T) does not satisfy type %v", v, v, t)
	}
	return nil
}

// Column is a named, typed attribute.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns with unique names.
type Schema []Column

// NewSchema validates and builds a schema.
func NewSchema(cols ...Column) (Schema, error) {
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("relation: empty column name")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}
	return Schema(cols), nil
}

// MustSchema is NewSchema panicking on error.
func MustSchema(cols ...Column) Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Index returns the position of the named column, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// String implements fmt.Stringer.
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = fmt.Sprintf("%s:%v", c.Name, c.Type)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Tuple is one row; its values correspond positionally to a schema.
type Tuple []Value

// Relation is a schema plus a multiset of tuples.
type Relation struct {
	Schema Schema
	Tuples []Tuple
}

// New creates an empty relation with the schema.
func New(schema Schema) *Relation {
	return &Relation{Schema: schema}
}

// Append adds a tuple after validating it against the schema.
func (r *Relation) Append(t Tuple) error {
	if len(t) != len(r.Schema) {
		return fmt.Errorf("relation: tuple has %d values, schema %d", len(t), len(r.Schema))
	}
	for i, v := range t {
		if err := checkValue(v, r.Schema[i].Type); err != nil {
			return fmt.Errorf("relation: column %q: %w", r.Schema[i].Name, err)
		}
	}
	r.Tuples = append(r.Tuples, t)
	return nil
}

// MustAppend is Append panicking on error.
func (r *Relation) MustAppend(t Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Select returns the tuples satisfying the predicate.
func Select(r *Relation, pred func(Tuple) bool) *Relation {
	out := New(r.Schema)
	for _, t := range r.Tuples {
		if pred(t) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// Project returns the named columns with duplicate elimination — the
// projection that "eliminates this redundancy" after a spatial join
// (Section 4).
func Project(r *Relation, cols ...string) (*Relation, error) {
	idx := make([]int, len(cols))
	schema := make(Schema, len(cols))
	for i, name := range cols {
		j := r.Schema.Index(name)
		if j < 0 {
			return nil, fmt.Errorf("relation: no column %q in %v", name, r.Schema)
		}
		idx[i] = j
		schema[i] = r.Schema[j]
	}
	out := New(schema)
	seen := make(map[string]bool, len(r.Tuples))
	for _, t := range r.Tuples {
		proj := make(Tuple, len(idx))
		for i, j := range idx {
			proj[i] = t[j]
		}
		k := tupleKey(proj)
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Tuples = append(out.Tuples, proj)
	}
	return out, nil
}

// tupleKey builds a map key identifying a tuple's values.
func tupleKey(t Tuple) string {
	var b strings.Builder
	for _, v := range t {
		fmt.Fprintf(&b, "%T|%v|", v, v)
	}
	return b.String()
}

// SortBy sorts the relation by the named column, ascending. Elements
// sort in z order.
func SortBy(r *Relation, col string) (*Relation, error) {
	j := r.Schema.Index(col)
	if j < 0 {
		return nil, fmt.Errorf("relation: no column %q", col)
	}
	out := New(r.Schema)
	out.Tuples = append([]Tuple(nil), r.Tuples...)
	typ := r.Schema[j].Type
	sort.SliceStable(out.Tuples, func(a, b int) bool {
		return valueLess(out.Tuples[a][j], out.Tuples[b][j], typ)
	})
	return out, nil
}

func valueLess(a, b Value, t Type) bool {
	switch t {
	case TID:
		return a.(uint64) < b.(uint64)
	case TInt:
		return a.(int64) < b.(int64)
	case TFloat:
		return a.(float64) < b.(float64)
	case TString:
		return a.(string) < b.(string)
	case TElement:
		return a.(zorder.Element).Precedes(b.(zorder.Element))
	}
	return false
}

// EquiJoin joins r and s on equality of the named columns (hash
// join). Output columns are r's followed by s's, with s's join column
// retained; colliding names get an "s_" prefix.
func EquiJoin(r, s *Relation, rcol, scol string) (*Relation, error) {
	ri := r.Schema.Index(rcol)
	si := s.Schema.Index(scol)
	if ri < 0 || si < 0 {
		return nil, fmt.Errorf("relation: join columns %q/%q missing", rcol, scol)
	}
	if r.Schema[ri].Type != s.Schema[si].Type {
		return nil, fmt.Errorf("relation: join column types differ: %v vs %v",
			r.Schema[ri].Type, s.Schema[si].Type)
	}
	schema := combinedSchema(r.Schema, s.Schema)
	out := New(schema)
	index := make(map[string][]Tuple)
	for _, t := range s.Tuples {
		k := tupleKey(Tuple{t[si]})
		index[k] = append(index[k], t)
	}
	for _, t := range r.Tuples {
		for _, u := range index[tupleKey(Tuple{t[ri]})] {
			out.Tuples = append(out.Tuples, concatTuples(t, u))
		}
	}
	return out, nil
}

func combinedSchema(a, b Schema) Schema {
	names := make(map[string]bool, len(a)+len(b))
	for _, c := range a {
		names[c.Name] = true
	}
	schema := append(Schema(nil), a...)
	for _, c := range b {
		name := c.Name
		for names[name] {
			name = "s_" + name
		}
		names[name] = true
		schema = append(schema, Column{Name: name, Type: c.Type})
	}
	return schema
}

func concatTuples(a, b Tuple) Tuple {
	t := make(Tuple, 0, len(a)+len(b))
	t = append(t, a...)
	return append(t, b...)
}

// SpatialJoin computes R[zr <> zs]S: pairs of tuples whose element
// attributes overlap (one contains the other). Output columns are r's
// followed by s's as in EquiJoin.
func SpatialJoin(r, s *Relation, zr, zs string) (*Relation, error) {
	ri := r.Schema.Index(zr)
	si := s.Schema.Index(zs)
	if ri < 0 || si < 0 {
		return nil, fmt.Errorf("relation: spatial join columns %q/%q missing", zr, zs)
	}
	if r.Schema[ri].Type != TElement || s.Schema[si].Type != TElement {
		return nil, fmt.Errorf("relation: spatial join requires element columns")
	}
	// Sort both sides in z order and run the element merge. Items
	// carry tuple indexes as ids.
	aItems := make([]core.Item, len(r.Tuples))
	for i, t := range r.Tuples {
		aItems[i] = core.Item{Elem: t[ri].(zorder.Element), ID: uint64(i)}
	}
	bItems := make([]core.Item, len(s.Tuples))
	for i, t := range s.Tuples {
		bItems[i] = core.Item{Elem: t[si].(zorder.Element), ID: uint64(i)}
	}
	core.SortItems(aItems)
	core.SortItems(bItems)
	pairs, err := core.SpatialJoin(aItems, bItems)
	if err != nil {
		return nil, err
	}
	out := New(combinedSchema(r.Schema, s.Schema))
	for _, p := range pairs {
		out.Tuples = append(out.Tuples, concatTuples(r.Tuples[p.A], s.Tuples[p.B]))
	}
	return out, nil
}

// String renders the relation as a small table (for examples and
// debugging).
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(r.Schema.String())
	b.WriteByte('\n')
	for _, t := range r.Tuples {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = fmt.Sprintf("%v", v)
		}
		b.WriteString(strings.Join(parts, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

package relation

import (
	"math/rand"
	"testing"

	"probe/internal/decompose"
	"probe/internal/geom"
	"probe/internal/zorder"
)

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Column{Name: "a", Type: TInt}, Column{Name: "a", Type: TID}); err == nil {
		t.Errorf("duplicate column accepted")
	}
	if _, err := NewSchema(Column{Name: "", Type: TInt}); err == nil {
		t.Errorf("empty column name accepted")
	}
	s := MustSchema(Column{Name: "a", Type: TInt}, Column{Name: "b", Type: TString})
	if s.Index("b") != 1 || s.Index("zzz") != -1 {
		t.Errorf("Index wrong")
	}
	if s.String() != "(a:int, b:string)" {
		t.Errorf("String = %q", s.String())
	}
	for _, typ := range []Type{TID, TInt, TFloat, TString, TElement, Type(99)} {
		if typ.String() == "" {
			t.Errorf("type %d renders empty", typ)
		}
	}
}

func TestAppendTypeChecking(t *testing.T) {
	r := New(MustSchema(
		Column{Name: "id", Type: TID},
		Column{Name: "n", Type: TInt},
		Column{Name: "f", Type: TFloat},
		Column{Name: "s", Type: TString},
		Column{Name: "e", Type: TElement},
	))
	good := Tuple{uint64(1), int64(-5), 2.5, "x", zorder.MustParseElement("01")}
	if err := r.Append(good); err != nil {
		t.Fatalf("valid tuple rejected: %v", err)
	}
	if err := r.Append(Tuple{uint64(1)}); err == nil {
		t.Errorf("short tuple accepted")
	}
	bad := Tuple{int64(1), int64(-5), 2.5, "x", zorder.MustParseElement("01")}
	if err := r.Append(bad); err == nil {
		t.Errorf("mistyped tuple accepted")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	if r.String() == "" {
		t.Errorf("String empty")
	}
}

func TestSelectProject(t *testing.T) {
	r := New(MustSchema(Column{Name: "id", Type: TID}, Column{Name: "n", Type: TInt}))
	for i := 0; i < 10; i++ {
		r.MustAppend(Tuple{uint64(i), int64(i % 3)})
	}
	sel := Select(r, func(t Tuple) bool { return t[1].(int64) == 1 })
	if sel.Len() != 3 {
		t.Errorf("Select found %d", sel.Len())
	}
	proj, err := Project(r, "n")
	if err != nil {
		t.Fatal(err)
	}
	if proj.Len() != 3 { // duplicates eliminated
		t.Errorf("Project kept %d distinct values, want 3", proj.Len())
	}
	if _, err := Project(r, "missing"); err == nil {
		t.Errorf("projection of missing column accepted")
	}
}

func TestSortBy(t *testing.T) {
	r := New(MustSchema(Column{Name: "e", Type: TElement}))
	es := []string{"10", "0", "011", "01"}
	for _, s := range es {
		r.MustAppend(Tuple{zorder.MustParseElement(s)})
	}
	sorted, err := SortBy(r, "e")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0", "01", "011", "10"}
	for i, w := range want {
		if sorted.Tuples[i][0].(zorder.Element).String() != w {
			t.Fatalf("sort order wrong at %d", i)
		}
	}
	if _, err := SortBy(r, "zzz"); err == nil {
		t.Errorf("sort by missing column accepted")
	}
}

func TestEquiJoin(t *testing.T) {
	r := New(MustSchema(Column{Name: "id", Type: TID}, Column{Name: "city", Type: TString}))
	r.MustAppend(Tuple{uint64(1), "boston"})
	r.MustAppend(Tuple{uint64(2), "cambridge"})
	s := New(MustSchema(Column{Name: "id", Type: TID}, Column{Name: "pop", Type: TInt}))
	s.MustAppend(Tuple{uint64(1), int64(600)})
	s.MustAppend(Tuple{uint64(3), int64(100)})
	j, err := EquiJoin(r, s, "id", "id")
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 || j.Tuples[0][1] != "boston" || j.Tuples[0][3] != int64(600) {
		t.Errorf("join result wrong: %v", j)
	}
	if j.Schema.Index("s_id") < 0 {
		t.Errorf("name collision not resolved: %v", j.Schema)
	}
	if _, err := EquiJoin(r, s, "zzz", "id"); err == nil {
		t.Errorf("missing join column accepted")
	}
	if _, err := EquiJoin(r, s, "city", "pop"); err == nil {
		t.Errorf("mismatched join types accepted")
	}
}

func TestSpatialJoinOperator(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	mkRel := func(boxes []geom.Box) *Relation {
		r := New(MustSchema(Column{Name: "id", Type: TID}, Column{Name: "z", Type: TElement}))
		for i, b := range boxes {
			for _, e := range decompose.Box(g, b) {
				r.MustAppend(Tuple{uint64(i), e})
			}
		}
		return r
	}
	left := mkRel([]geom.Box{geom.Box2(0, 7, 0, 7), geom.Box2(12, 15, 12, 15)})
	right := mkRel([]geom.Box{geom.Box2(4, 11, 4, 11)})
	j, err := SpatialJoin(left, right, "z", "z")
	if err != nil {
		t.Fatal(err)
	}
	// Only left object 0 overlaps right object 0; project ids.
	proj, err := Project(j, "id", "s_id")
	if err != nil {
		t.Fatal(err)
	}
	if proj.Len() != 1 || proj.Tuples[0][0] != uint64(0) || proj.Tuples[0][1] != uint64(0) {
		t.Errorf("spatial join result wrong: %v", proj)
	}
	if _, err := SpatialJoin(left, right, "id", "z"); err == nil {
		t.Errorf("non-element column accepted")
	}
	if _, err := SpatialJoin(left, right, "zzz", "z"); err == nil {
		t.Errorf("missing column accepted")
	}
}

func TestShufflePoints(t *testing.T) {
	g := zorder.MustGrid(2, 3)
	pts := New(MustSchema(
		Column{Name: "id", Type: TID},
		Column{Name: "x", Type: TInt},
		Column{Name: "y", Type: TInt},
	))
	pts.MustAppend(Tuple{uint64(1), int64(3), int64(5)})
	p, err := ShufflePoints(g, pts, "id", []string{"x", "y"}, "zp")
	if err != nil {
		t.Fatal(err)
	}
	e := p.Tuples[0][p.Schema.Index("zp")].(zorder.Element)
	// Figure 4: [3,5] -> 011011.
	if e.String() != "011011" {
		t.Errorf("shuffled element = %v", e)
	}
	// Errors.
	if _, err := ShufflePoints(g, pts, "x", []string{"x", "y"}, "zp"); err == nil {
		t.Errorf("non-TID id column accepted")
	}
	if _, err := ShufflePoints(g, pts, "id", []string{"x"}, "zp"); err == nil {
		t.Errorf("wrong arity accepted")
	}
	bad := New(pts.Schema)
	bad.MustAppend(Tuple{uint64(1), int64(99), int64(0)})
	if _, err := ShufflePoints(g, bad, "id", []string{"x", "y"}, "zp"); err == nil {
		t.Errorf("out-of-grid coordinate accepted")
	}
}

func TestDecomposeObjects(t *testing.T) {
	g := zorder.MustGrid(2, 3)
	rel, err := DecomposeObjects(g, []CatalogEntry{
		{ID: 7, Object: geom.Box2(2, 3, 0, 3)},
		{ID: 8, Object: geom.Box2(0, 7, 0, 7)},
	}, decompose.Options{}, "id", "z")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 { // one element each
		t.Fatalf("Len = %d: %v", rel.Len(), rel)
	}
	if rel.Tuples[0][0] != uint64(7) || rel.Tuples[0][1].(zorder.Element).String() != "001" {
		t.Errorf("decomposed tuple wrong: %v", rel.Tuples[0])
	}
	if _, err := DecomposeObjects(zorder.MustGrid(3, 2), []CatalogEntry{{ID: 1, Object: geom.Box2(0, 1, 0, 1)}}, decompose.Options{}, "id", "z"); err == nil {
		t.Errorf("dims mismatch accepted")
	}
}

// TestRangeSearchPlan runs the complete Section 4 scenario and checks
// it against a direct filter.
func TestRangeSearchPlan(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	rng := rand.New(rand.NewSource(17))
	points := New(MustSchema(
		Column{Name: "p", Type: TID},
		Column{Name: "x", Type: TInt},
		Column{Name: "y", Type: TInt},
	))
	for i := 0; i < 500; i++ {
		points.MustAppend(Tuple{uint64(i), int64(rng.Intn(64)), int64(rng.Intn(64))})
	}
	box := geom.Box2(10, 30, 20, 50)
	res, err := RangeSearchPlan(g, points, "p", "x", "y", box)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[[2]int64]bool)
	for _, t := range points.Tuples {
		x, y := t[1].(int64), t[2].(int64)
		if x >= 10 && x <= 30 && y >= 20 && y <= 50 {
			want[[2]int64{x, y}] = true
		}
	}
	if res.Len() != len(want) {
		t.Fatalf("plan returned %d coordinates, want %d", res.Len(), len(want))
	}
	for _, tu := range res.Tuples {
		if !want[[2]int64{tu[0].(int64), tu[1].(int64)}] {
			t.Fatalf("unexpected coordinate %v", tu)
		}
	}
	if _, err := RangeSearchPlan(zorder.MustGrid(3, 4), points, "p", "x", "y", box); err == nil {
		t.Errorf("3d grid accepted")
	}
}

func TestGroupByCountSum(t *testing.T) {
	r := New(MustSchema(
		Column{Name: "city", Type: TString},
		Column{Name: "pop", Type: TInt},
		Column{Name: "area", Type: TFloat},
	))
	r.MustAppend(Tuple{"boston", int64(600), 1.5})
	r.MustAppend(Tuple{"boston", int64(100), 2.5})
	r.MustAppend(Tuple{"salem", int64(40), 3.0})
	out, err := GroupBy(r, []string{"city"}, []Agg{
		{Func: Count, As: "n"},
		{Func: Sum, Col: "pop", As: "pop"},
		{Func: Max, Col: "area", As: "maxarea"},
		{Func: Min, Col: "pop", As: "minpop"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("groups = %d", out.Len())
	}
	b := out.Tuples[0]
	if b[0] != "boston" || b[1] != int64(2) || b[2] != int64(700) || b[3] != 2.5 || b[4] != int64(100) {
		t.Errorf("boston row = %v", b)
	}
	s := out.Tuples[1]
	if s[0] != "salem" || s[1] != int64(1) || s[2] != int64(40) {
		t.Errorf("salem row = %v", s)
	}
}

func TestGroupByNoGroupColumns(t *testing.T) {
	r := New(MustSchema(Column{Name: "v", Type: TInt}))
	for i := int64(1); i <= 5; i++ {
		r.MustAppend(Tuple{i})
	}
	out, err := GroupBy(r, nil, []Agg{
		{Func: Sum, Col: "v", As: "total"},
		{Func: Min, Col: "v", As: "lo"},
		{Func: Max, Col: "v", As: "hi"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Tuples[0][0] != int64(15) || out.Tuples[0][1] != int64(1) || out.Tuples[0][2] != int64(5) {
		t.Errorf("whole-relation aggregate = %v", out.Tuples)
	}
}

func TestGroupByStringsAndIDs(t *testing.T) {
	r := New(MustSchema(Column{Name: "g", Type: TInt}, Column{Name: "name", Type: TString}, Column{Name: "id", Type: TID}))
	r.MustAppend(Tuple{int64(1), "zebra", uint64(9)})
	r.MustAppend(Tuple{int64(1), "ant", uint64(4)})
	out, err := GroupBy(r, []string{"g"}, []Agg{
		{Func: Min, Col: "name", As: "first"},
		{Func: Max, Col: "id", As: "maxid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Tuples[0][1] != "ant" || out.Tuples[0][2] != uint64(9) {
		t.Errorf("row = %v", out.Tuples[0])
	}
}

func TestGroupByErrors(t *testing.T) {
	r := New(MustSchema(Column{Name: "s", Type: TString}, Column{Name: "e", Type: TElement}))
	r.MustAppend(Tuple{"x", zorder.MustParseElement("01")})
	if _, err := GroupBy(r, []string{"zzz"}, nil); err == nil {
		t.Errorf("missing group column accepted")
	}
	if _, err := GroupBy(r, nil, []Agg{{Func: Sum, Col: "s", As: "x"}}); err == nil {
		t.Errorf("sum over string accepted")
	}
	if _, err := GroupBy(r, nil, []Agg{{Func: Min, Col: "e", As: "x"}}); err == nil {
		t.Errorf("min over element accepted")
	}
	if _, err := GroupBy(r, nil, []Agg{{Func: Count}}); err == nil {
		t.Errorf("aggregate without output name accepted")
	}
	if _, err := GroupBy(r, nil, []Agg{{Func: AggFunc(9), As: "x"}}); err == nil {
		t.Errorf("unknown aggregate accepted")
	}
	if _, err := GroupBy(r, nil, []Agg{{Func: Sum, Col: "zzz", As: "x"}}); err == nil {
		t.Errorf("missing aggregate column accepted")
	}
	for _, f := range []AggFunc{Count, Sum, Min, Max, AggFunc(9)} {
		if f.String() == "" {
			t.Errorf("AggFunc %d renders empty", f)
		}
	}
}

// TestGroupByOverlapCounts runs the paper's global-property pattern:
// after a spatial join, count overlapping elements per object pair.
func TestGroupByOverlapCounts(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	mkRel := func(boxes []geom.Box) *Relation {
		r := New(MustSchema(Column{Name: "id", Type: TID}, Column{Name: "z", Type: TElement}))
		for i, b := range boxes {
			for _, e := range decompose.Box(g, b) {
				r.MustAppend(Tuple{uint64(i + 1), e})
			}
		}
		return r
	}
	left := mkRel([]geom.Box{geom.Box2(0, 7, 0, 7)})
	right := mkRel([]geom.Box{geom.Box2(4, 11, 4, 11), geom.Box2(0, 1, 0, 1)})
	joined, err := SpatialJoin(left, right, "z", "z")
	if err != nil {
		t.Fatal(err)
	}
	counts, err := GroupBy(joined, []string{"id", "s_id"}, []Agg{{Func: Count, As: "pairs"}})
	if err != nil {
		t.Fatal(err)
	}
	if counts.Len() != 2 {
		t.Fatalf("expected 2 overlapping object pairs, got %d:\n%v", counts.Len(), counts)
	}
	for _, row := range counts.Tuples {
		if row[2].(int64) < 1 {
			t.Errorf("pair %v has no element pairs", row)
		}
	}
}

func TestCombinedSchemaDeepCollision(t *testing.T) {
	a := MustSchema(Column{Name: "id", Type: TID}, Column{Name: "s_id", Type: TInt})
	b := MustSchema(Column{Name: "id", Type: TID})
	got := combinedSchema(a, b)
	seen := map[string]bool{}
	for _, c := range got {
		if seen[c.Name] {
			t.Fatalf("duplicate column %q in combined schema %v", c.Name, got)
		}
		seen[c.Name] = true
	}
	if got.Index("s_s_id") < 0 {
		t.Errorf("expected doubly-prefixed column, got %v", got)
	}
}

package relation

import (
	"fmt"

	"probe/internal/decompose"
	"probe/internal/geom"
	"probe/internal/zorder"
)

// This file provides the spatial operators that connect the
// relational engine to approximate geometry: the element-domain
// operations of Section 4 (shuffle, decompose as relational
// operators) and the end-to-end range-search plan of that section.

// ShufflePoints implements the paper's
//
//	P(p@, zp, x, y) := Points[p@, shuffle([x:x, y:y]), x, y]
//
// step: it extends a relation of identified grid points with the
// element column holding each point's shuffled (one-pixel) element.
// idCol must be TID and coordCols TInt columns within grid range.
func ShufflePoints(g zorder.Grid, r *Relation, idCol string, coordCols []string, zCol string) (*Relation, error) {
	ii := r.Schema.Index(idCol)
	if ii < 0 || r.Schema[ii].Type != TID {
		return nil, fmt.Errorf("relation: id column %q missing or not TID", idCol)
	}
	if len(coordCols) != g.Dims() {
		return nil, fmt.Errorf("relation: %d coordinate columns for %d dims", len(coordCols), g.Dims())
	}
	ci := make([]int, len(coordCols))
	for i, name := range coordCols {
		j := r.Schema.Index(name)
		if j < 0 || r.Schema[j].Type != TInt {
			return nil, fmt.Errorf("relation: coordinate column %q missing or not TInt", name)
		}
		ci[i] = j
	}
	schema := append(Schema(nil), r.Schema...)
	schema = append(schema, Column{Name: zCol, Type: TElement})
	out := New(schema)
	coords := make([]uint32, g.Dims())
	for _, t := range r.Tuples {
		for i, j := range ci {
			v := t[j].(int64)
			if v < 0 || uint64(v) >= g.Side() {
				return nil, fmt.Errorf("relation: coordinate %d outside grid %v", v, g)
			}
			coords[i] = uint32(v)
		}
		nt := append(append(Tuple(nil), t...), g.Shuffle(coords))
		out.Tuples = append(out.Tuples, nt)
	}
	return out, nil
}

// DecomposeObjects implements
//
//	R(p@, zr) := Decompose(P(p@, ...))
//
// for a catalog of spatial objects: each object becomes the set of
// tuples (id, element), flattened to 1NF as the paper describes.
type CatalogEntry struct {
	ID     uint64
	Object geom.Object
}

// DecomposeObjects decomposes every catalog object on grid g into an
// element relation with columns (idCol TID, zCol TElement).
func DecomposeObjects(g zorder.Grid, objs []CatalogEntry, opts decompose.Options, idCol, zCol string) (*Relation, error) {
	out := New(MustSchema(Column{Name: idCol, Type: TID}, Column{Name: zCol, Type: TElement}))
	for _, entry := range objs {
		elems, err := decompose.Object(g, entry.Object, opts)
		if err != nil {
			return nil, fmt.Errorf("relation: decompose object %d: %w", entry.ID, err)
		}
		for _, e := range elems {
			out.Tuples = append(out.Tuples, Tuple{entry.ID, e})
		}
	}
	return out, nil
}

// RangeSearchPlan executes the full Section 4 range-search strategy
// over a points relation with columns (idCol TID, xCol TInt, yCol
// TInt):
//
//	P(p@, zp, x, y) := Points[p@, shuffle([x:x, y:y]), x, y]
//	B(zb)           := Decompose(Box)
//	Result          := (P[zp <> zb]B)[x, y]
//
// It returns the projected (x, y) relation.
func RangeSearchPlan(g zorder.Grid, points *Relation, idCol, xCol, yCol string, box geom.Box) (*Relation, error) {
	if g.Dims() != 2 {
		return nil, fmt.Errorf("relation: RangeSearchPlan requires a 2-d grid")
	}
	p, err := ShufflePoints(g, points, idCol, []string{xCol, yCol}, "zp")
	if err != nil {
		return nil, err
	}
	b := New(MustSchema(Column{Name: "zb", Type: TElement}))
	for _, e := range decompose.Box(g, box) {
		b.Tuples = append(b.Tuples, Tuple{e})
	}
	joined, err := SpatialJoin(p, b, "zp", "zb")
	if err != nil {
		return nil, err
	}
	return Project(joined, xCol, yCol)
}

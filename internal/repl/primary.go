package repl

import (
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"probe"
	"probe/internal/disk"
	"probe/internal/obs"
	"probe/internal/wire"
)

// PrimaryConfig tunes the shipping side. Zero values select the
// defaults in brackets.
type PrimaryConfig struct {
	// HistorySegments bounds how many shipped segments are retained for
	// incremental catch-up [64]. A replica behind the retained window
	// re-bootstraps from a snapshot.
	HistorySegments int
	// HistoryBytes bounds the retained history's encoded size [32 MiB].
	HistoryBytes int
	// Heartbeat is the idle-stream heartbeat interval [1s]; replicas
	// use it to measure lag and detect a dead primary.
	Heartbeat time.Duration
	// SendBuffer is the per-subscriber queue of encoded segments [64].
	// A replica that cannot drain it is dropped (it reconnects and
	// catches up through history or a snapshot).
	SendBuffer int
	// Registry receives the primary's shipping metrics
	// (repl.segments_shipped, repl.history_bytes, repl.subscribers,
	// repl.snapshots_served, repl.subscribers_dropped) [new registry].
	Registry *obs.Registry
	// Logger receives structured subscription logs; nil disables.
	Logger *slog.Logger
}

func (c *PrimaryConfig) fillDefaults() {
	if c.HistorySegments <= 0 {
		c.HistorySegments = 64
	}
	if c.HistoryBytes <= 0 {
		c.HistoryBytes = 32 << 20
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = time.Second
	}
	if c.SendBuffer <= 0 {
		c.SendBuffer = 64
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
}

// histEntry is one retained segment: enc is its wire encoding, the
// segment covers LSNs (from, max].
type histEntry struct {
	from uint64
	max  uint64
	enc  []byte
}

// subscriber is one connected replica's send queue. The hook pushes
// encoded segments; the per-subscriber sender goroutine drains them
// onto the socket.
type subscriber struct {
	ch   chan []byte
	dead chan struct{} // closed when the queue overflows
	once sync.Once
}

func (sub *subscriber) drop() { sub.once.Do(func() { close(sub.dead) }) }

// Primary ships a durable database's checkpoint segments to
// subscribed replicas. Create with NewPrimary (which installs the
// checkpoint hook), serve with Serve, stop with Close.
type Primary struct {
	db  *probe.DB
	cfg PrimaryConfig

	mu        sync.Mutex
	hist      []histEntry
	histBytes int
	latest    uint64 // MaxLSN of the newest shipped segment
	subs      map[*subscriber]struct{}
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool

	wg sync.WaitGroup
}

// NewPrimary wraps db (which must be durable) as a shipping primary.
// From here on every db.Checkpoint feeds the replication stream.
func NewPrimary(db *probe.DB, cfg PrimaryConfig) (*Primary, error) {
	cfg.fillDefaults()
	p := &Primary{
		db:        db,
		cfg:       cfg,
		latest:    db.CheckpointLSN(),
		subs:      make(map[*subscriber]struct{}),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	if err := db.SetWALSegmentHook(p.onSegment); err != nil {
		return nil, err
	}
	return p, nil
}

// Metrics returns the registry the primary records shipping metrics in.
func (p *Primary) Metrics() *obs.Registry { return p.cfg.Registry }

// onSegment is the checkpoint hook: it runs inside DB.Checkpoint, so
// it only encodes, appends to history, and enqueues — never blocks,
// never calls back into the database.
func (p *Primary) onSegment(seg probe.WALSegment) {
	if len(seg.Records) == 0 {
		return
	}
	enc := disk.EncodeSegment(seg)
	p.mu.Lock()
	entry := histEntry{from: p.latest, max: seg.MaxLSN, enc: enc}
	p.hist = append(p.hist, entry)
	p.histBytes += len(enc)
	for len(p.hist) > p.cfg.HistorySegments ||
		(p.histBytes > p.cfg.HistoryBytes && len(p.hist) > 1) {
		p.histBytes -= len(p.hist[0].enc)
		p.hist = p.hist[1:]
	}
	p.latest = seg.MaxLSN
	for sub := range p.subs {
		select {
		case sub.ch <- enc:
		default:
			// The replica is not draining its queue; drop it rather
			// than block a checkpoint or buffer without bound. It
			// reconnects and catches up.
			sub.drop()
		}
	}
	p.mu.Unlock()
	p.cfg.Registry.Int("repl.segments_shipped").Add(1)
	p.cfg.Registry.Gauge("repl.history_bytes").Set(int64(p.historyBytes()))
}

func (p *Primary) historyBytes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.histBytes
}

// Latest returns the newest shipped LSN (the heartbeat value).
func (p *Primary) Latest() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.latest
}

// Serve accepts replica subscriptions on ln until Close. It blocks;
// run it in a goroutine.
func (p *Primary) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return fmt.Errorf("repl: Serve after Close")
	}
	p.listeners[ln] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.listeners, ln)
		p.mu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			continue
		}
		p.conns[conn] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go func() {
			defer p.wg.Done()
			defer func() {
				p.mu.Lock()
				delete(p.conns, conn)
				p.mu.Unlock()
				conn.Close()
			}()
			p.serveSubscriber(conn)
		}()
	}
}

// serveSubscriber runs one replica's session: hello, catch-up
// (incremental from history when contiguous, snapshot otherwise),
// then the live stream.
func (p *Primary) serveSubscriber(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil || typ != msgHello {
		sendError(conn, "repl: expected hello")
		return
	}
	haveLSN, err := decodeHello(payload)
	if err != nil {
		sendError(conn, err.Error())
		return
	}
	conn.SetReadDeadline(time.Time{})

	// Subscribe FIRST, then decide the catch-up path: segments shipped
	// while the snapshot is being built queue on sub.ch, so nothing is
	// lost in between. The replica skips anything the snapshot already
	// contains.
	sub := &subscriber{ch: make(chan []byte, p.cfg.SendBuffer), dead: make(chan struct{})}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.subs[sub] = struct{}{}
	var backlog [][]byte
	incremental := haveLSN >= p.latest ||
		(len(p.hist) > 0 && haveLSN >= p.hist[0].from)
	if incremental {
		for _, e := range p.hist {
			if e.max > haveLSN {
				backlog = append(backlog, e.enc)
			}
		}
	}
	p.mu.Unlock()
	p.cfg.Registry.Gauge("repl.subscribers").Inc()
	defer func() {
		p.mu.Lock()
		delete(p.subs, sub)
		p.mu.Unlock()
		p.cfg.Registry.Gauge("repl.subscribers").Dec()
	}()
	if p.cfg.Logger != nil {
		p.cfg.Logger.Info("repl subscriber connected",
			"remote", conn.RemoteAddr().String(), "have_lsn", haveLSN, "incremental", incremental)
	}

	if !incremental {
		// Snapshot path. StoreImage checkpoints, which fires the hook;
		// the resulting segment lands on sub.ch and the replica drops it
		// as stale (its LSN is <= the image's). Never hold p.mu here.
		img, lsn, err := p.db.StoreImage()
		if err != nil {
			sendError(conn, fmt.Sprintf("repl: snapshot: %v", err))
			return
		}
		p.cfg.Registry.Int("repl.snapshots_served").Add(1)
		if wire.WriteFrame(conn, msgSnapBegin, encodeU64Pair(lsn, uint64(len(img)))) != nil {
			return
		}
		for off := 0; off < len(img); off += snapChunkSize {
			end := min(off+snapChunkSize, len(img))
			if wire.WriteFrame(conn, msgSnapChunk, img[off:end]) != nil {
				return
			}
		}
		if wire.WriteFrame(conn, msgSnapEnd, nil) != nil {
			return
		}
	} else {
		for _, enc := range backlog {
			if wire.WriteFrame(conn, msgSegment, enc) != nil {
				return
			}
		}
	}

	// Live stream: segments as they arrive, heartbeats in between. A
	// parallel reader turns any inbound frame or connection loss into
	// a drop, so a dead replica cannot pin the sender.
	go func() {
		wire.ReadFrame(conn) // replicas never send after hello
		sub.drop()
	}()
	hb := time.NewTicker(p.cfg.Heartbeat)
	defer hb.Stop()
	for {
		select {
		case enc := <-sub.ch:
			if wire.WriteFrame(conn, msgSegment, enc) != nil {
				return
			}
		case <-hb.C:
			if wire.WriteFrame(conn, msgHeartbeat, encodeU64(p.Latest())) != nil {
				return
			}
		case <-sub.dead:
			p.cfg.Registry.Int("repl.subscribers_dropped").Add(1)
			if p.cfg.Logger != nil {
				p.cfg.Logger.Warn("repl subscriber dropped", "remote", conn.RemoteAddr().String())
			}
			return
		}
	}
}

// Close stops serving: the checkpoint hook is removed, listeners and
// subscriber connections close, and every session goroutine exits.
// The database itself is untouched (the server owns it).
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for ln := range p.listeners {
		ln.Close()
	}
	for conn := range p.conns {
		conn.Close()
	}
	for sub := range p.subs {
		sub.drop()
	}
	p.mu.Unlock()
	p.db.SetWALSegmentHook(nil)
	p.wg.Wait()
	return nil
}

// Package repl implements physical WAL shipping between a primary
// probed and its read replicas (docs/cluster.md).
//
// The unit of replication is the disk.Segment: the compacted record
// batch a checkpoint applied to the primary's page file. The primary
// observes every checkpoint through probe.DB.SetWALSegmentHook, keeps
// a bounded in-memory history of encoded segments, and streams them to
// subscribed replicas; a replica joining with no usable state (or too
// far behind the retained history) first receives a full page-file
// snapshot (probe.DB.StoreImage) and then the live stream.
//
// A replica maintains two page files in ping-pong: segments apply to
// the idle file, a fresh probe.DB opens over it, the serving database
// is swapped atomically (server.SwapDB), and the previous database is
// closed — which blocks until its in-flight reads finish, making the
// close the quiesce point. Reads on a replica therefore always see a
// complete checkpoint state, lagging the primary by the segments not
// yet promoted.
//
// Lag is exported as gauges in the registry the replica is given
// (conventionally the query server's, so "repl.caught_up" surfaces as
// "server.repl.caught_up" through STATS — exactly the key the router's
// health prober reads) and gates /readyz via Replica.ReadyErr.
//
// The stream runs on its own TCP connection with the wire package's
// length-prefixed frames but its own message set; it is not part of
// the query protocol.
package repl

import (
	"encoding/binary"
	"fmt"
	"io"

	"probe/internal/wire"
)

// Protocol frames. A session: replica sends hello; primary answers
// with either a snapshot (snapBegin, chunk*, snapEnd) or nothing, then
// streams segment and heartbeat frames until either side closes.
const (
	msgHello     = 0x01 // replica → primary: [magic "ZKDR"][version u8][haveLSN u64]
	msgSnapBegin = 0x02 // primary → replica: [ckpt LSN u64][total bytes u64]
	msgSnapChunk = 0x03 // primary → replica: raw image bytes
	msgSnapEnd   = 0x04 // primary → replica: empty
	msgSegment   = 0x05 // primary → replica: disk.EncodeSegment bytes
	msgHeartbeat = 0x06 // primary → replica: [latest LSN u64]
	msgError     = 0x7F // either → either: utf-8 text, then close
)

const (
	helloMagic  = "ZKDR"
	replVersion = 1
	helloLen    = 4 + 1 + 8
	// snapChunkSize keeps snapshot frames comfortably under
	// wire.MaxFrame.
	snapChunkSize = 4 << 20
)

func encodeHello(haveLSN uint64) []byte {
	b := make([]byte, 0, helloLen)
	b = append(b, helloMagic...)
	b = append(b, replVersion)
	return binary.LittleEndian.AppendUint64(b, haveLSN)
}

func decodeHello(p []byte) (uint64, error) {
	if len(p) != helloLen || string(p[:4]) != helloMagic {
		return 0, fmt.Errorf("repl: malformed hello")
	}
	if p[4] != replVersion {
		return 0, fmt.Errorf("repl: protocol version %d, want %d", p[4], replVersion)
	}
	return binary.LittleEndian.Uint64(p[5:]), nil
}

func encodeU64Pair(a, b uint64) []byte {
	buf := make([]byte, 0, 16)
	buf = binary.LittleEndian.AppendUint64(buf, a)
	return binary.LittleEndian.AppendUint64(buf, b)
}

func decodeU64Pair(p []byte) (a, b uint64, err error) {
	if len(p) != 16 {
		return 0, 0, fmt.Errorf("repl: frame has %d bytes, want 16", len(p))
	}
	return binary.LittleEndian.Uint64(p[:8]), binary.LittleEndian.Uint64(p[8:]), nil
}

func encodeU64(v uint64) []byte {
	return binary.LittleEndian.AppendUint64(make([]byte, 0, 8), v)
}

func decodeU64(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("repl: frame has %d bytes, want 8", len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// sendError best-effort writes a typed error frame before the caller
// closes the connection.
func sendError(w io.Writer, msg string) {
	wire.WriteFrame(w, msgError, []byte(msg))
}

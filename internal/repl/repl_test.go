package repl

import (
	"context"
	"fmt"
	"net"
	"sort"
	"testing"
	"time"

	"probe"
	"probe/internal/disk/faultfs"
)

// scanIDs collects every point ID in the database, sorted.
func scanIDs(t *testing.T, db *probe.DB) []uint64 {
	t.Helper()
	var ids []uint64
	if err := db.Scan(func(p probe.Point) bool {
		ids = append(ids, p.ID)
		return true
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sameIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func points(from, n int) []probe.Point {
	pts := make([]probe.Point, n)
	for i := range pts {
		id := from + i
		pts[i] = probe.Point{ID: uint64(id), Coords: []uint32{uint32(id % 1024), uint32((id * 7) % 1024)}}
	}
	return pts
}

// startPrimary builds a durable primary DB with n points and serves
// replication on a loopback listener.
func startPrimary(t *testing.T, cfg PrimaryConfig, n int) (*probe.DB, *Primary, string) {
	t.Helper()
	g := probe.MustGrid(2, 10)
	db, err := probe.Open(g, probe.WithDurability("primary"), probe.WithFS(faultfs.New()))
	if err != nil {
		t.Fatal(err)
	}
	if n > 0 {
		if err := db.InsertAll(points(0, n)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	p, err := NewPrimary(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go p.Serve(ln)
	t.Cleanup(func() { p.Close(); db.Close() })
	return db, p, ln.Addr().String()
}

// waitSynced polls until the replica serves exactly the primary's
// point set.
func waitSynced(t *testing.T, r *Replica, primary *probe.DB) {
	t.Helper()
	want := scanIDs(t, primary)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if db := r.DB(); db != nil {
			if got := scanIDs(t, db); sameIDs(got, want) && r.ReadyErr() == nil {
				return
			}
		}
		if time.Now().After(deadline) {
			var got []uint64
			if db := r.DB(); db != nil {
				got = scanIDs(t, db)
			}
			t.Fatalf("replica never synced: ready=%v, %d ids vs primary %d",
				r.ReadyErr(), len(got), len(want))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReplicaSnapshotAndStream covers the tentpole happy path: a
// fresh replica bootstraps from a snapshot, then follows live
// checkpoints, promoting a new database version per segment.
func TestReplicaSnapshotAndStream(t *testing.T) {
	db, _, addr := startPrimary(t, PrimaryConfig{Heartbeat: 50 * time.Millisecond}, 500)
	r, err := NewReplica(ReplicaConfig{
		Primary: addr, Grid: probe.MustGrid(2, 10),
		PathA: "ra", PathB: "rb", FS: faultfs.New(),
		RetryInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go r.Run(ctx)
	defer r.Close()

	if _, err := r.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	waitSynced(t, r, db)
	if got := r.cfg.Registry.Gauge("repl.caught_up").Value(); got != 1 {
		t.Fatalf("repl.caught_up = %d after sync", got)
	}

	// Live stream: three rounds of writes, each checkpoint ships one
	// segment and promotes a new replica version.
	for round := 0; round < 3; round++ {
		if err := db.InsertAll(points(1000+round*100, 50)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		waitSynced(t, r, db)
	}
	if n := r.cfg.Registry.Int("repl.promotions").Value(); n < 3 {
		t.Fatalf("promotions = %d, want >= 3", n)
	}
	if n := r.cfg.Registry.Int("repl.snapshots_received").Value(); n != 1 {
		t.Fatalf("snapshots_received = %d, want 1", n)
	}
}

// TestReplicaIncrementalCatchUp restarts a replica that fell behind by
// fewer segments than the primary retains: it must catch up from
// history alone, without a second snapshot.
func TestReplicaIncrementalCatchUp(t *testing.T) {
	db, _, addr := startPrimary(t, PrimaryConfig{Heartbeat: 50 * time.Millisecond}, 200)
	rfs := faultfs.New()
	g := probe.MustGrid(2, 10)
	cfg := ReplicaConfig{
		Primary: addr, Grid: g, PathA: "ra", PathB: "rb", FS: rfs,
		RetryInterval: 50 * time.Millisecond,
	}
	r1, err := NewReplica(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	go r1.Run(ctx1)
	if _, err := r1.WaitReady(ctx1); err != nil {
		t.Fatal(err)
	}
	waitSynced(t, r1, db)
	cancel1()
	r1.Close()

	// The replica is offline; the primary moves on (well within the
	// retained history).
	for round := 0; round < 3; round++ {
		if err := db.InsertAll(points(2000+round*100, 30)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}

	r2, err := NewReplica(cfg) // same files: reopens and resumes
	if err != nil {
		t.Fatal(err)
	}
	if r2.DB() == nil {
		t.Fatal("restarted replica did not reopen its page files")
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go r2.Run(ctx2)
	defer r2.Close()
	waitSynced(t, r2, db)
	if n := r2.cfg.Registry.Int("repl.snapshots_received").Value(); n != 0 {
		t.Fatalf("catch-up took %d snapshots, want incremental", n)
	}
}

// TestReplicaResnapshotsWhenHistoryPruned drops a replica far enough
// behind that the primary's retained history cannot cover the gap:
// the reconnect must fall back to a fresh snapshot and still
// converge.
func TestReplicaResnapshotsWhenHistoryPruned(t *testing.T) {
	db, p, addr := startPrimary(t, PrimaryConfig{
		Heartbeat: 50 * time.Millisecond, HistorySegments: 2,
	}, 100)
	rfs := faultfs.New()
	cfg := ReplicaConfig{
		Primary: addr, Grid: probe.MustGrid(2, 10), PathA: "ra", PathB: "rb", FS: rfs,
		RetryInterval: 50 * time.Millisecond,
	}
	r1, err := NewReplica(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	go r1.Run(ctx1)
	if _, err := r1.WaitReady(ctx1); err != nil {
		t.Fatal(err)
	}
	waitSynced(t, r1, db)
	cancel1()
	r1.Close()

	// Six checkpoints against a two-segment history: the gap is
	// unbridgeable incrementally.
	for round := 0; round < 6; round++ {
		if err := db.InsertAll(points(3000+round*50, 20)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if p.Metrics().Int("repl.segments_shipped").Value() < 6 {
		t.Fatal("test setup: segments were not shipped")
	}

	r2, err := NewReplica(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go r2.Run(ctx2)
	defer r2.Close()
	waitSynced(t, r2, db)
	if n := r2.cfg.Registry.Int("repl.snapshots_received").Value(); n != 1 {
		t.Fatalf("pruned-history catch-up took %d snapshots, want exactly 1", n)
	}
}

// TestReplicaSurvivesPrimaryRestart kills the primary's listener
// mid-stream; the replica must keep serving its last version, report
// itself unready only if it knows it lags, and resync once a primary
// is back on the same address.
func TestReplicaSurvivesPrimaryRestart(t *testing.T) {
	g := probe.MustGrid(2, 10)
	pfs := faultfs.New()
	db, err := probe.Open(g, probe.WithDurability("primary"), probe.WithFS(pfs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.InsertAll(points(0, 300)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	p1, err := NewPrimary(db, PrimaryConfig{Heartbeat: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln1.Addr().String()
	go p1.Serve(ln1)

	r, err := NewReplica(ReplicaConfig{
		Primary: addr, Grid: g, PathA: "ra", PathB: "rb", FS: faultfs.New(),
		RetryInterval: 50 * time.Millisecond, StreamTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go r.Run(ctx)
	defer r.Close()
	waitSynced(t, r, db)

	// Primary dies. The replica keeps its database and keeps serving.
	p1.Close()
	time.Sleep(200 * time.Millisecond)
	if r.DB() == nil {
		t.Fatal("replica lost its database when the primary died")
	}
	if got := scanIDs(t, r.DB()); len(got) != 300 {
		t.Fatalf("replica serves %d points after primary death", len(got))
	}

	// Primary returns on the same address with more data.
	if err := db.InsertAll(points(5000, 40)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	p2, err := NewPrimary(db, PrimaryConfig{Heartbeat: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	go p2.Serve(ln2)
	defer p2.Close()
	waitSynced(t, r, db)
}

// TestReplicaConfigValidation pins the config contract.
func TestReplicaConfigValidation(t *testing.T) {
	for i, cfg := range []ReplicaConfig{
		{},
		{Primary: "x", PathA: "a", PathB: "a"},
		{Primary: "", PathA: "a", PathB: "b"},
	} {
		if _, err := NewReplica(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestPrimaryRequiresDurableDB pins the ErrNotDurable contract.
func TestPrimaryRequiresDurableDB(t *testing.T) {
	db, err := probe.Open(probe.MustGrid(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := NewPrimary(db, PrimaryConfig{}); err == nil {
		t.Fatal("NewPrimary accepted an in-memory database")
	} else if got := fmt.Sprint(err); got == "" {
		t.Fatal("empty error")
	}
}

package repl

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"probe"
	"probe/internal/disk"
	"probe/internal/obs"
	"probe/internal/wire"
)

// ReplicaConfig tunes the applying side. Zero values select the
// defaults in brackets.
type ReplicaConfig struct {
	// Primary is the primary's replication listen address (required).
	Primary string
	// Grid is the cluster grid; the opened databases must match it
	// (required).
	Grid probe.Grid
	// PathA and PathB are the ping-pong page file paths (required,
	// distinct). Segments apply to the idle one; the freshly promoted
	// one serves.
	PathA, PathB string
	// FS is the filesystem the page files live on [disk.OSFS{}].
	FS disk.FS
	// DialTimeout bounds each connection attempt [2s].
	DialTimeout time.Duration
	// RetryInterval is the reconnect backoff after a lost primary
	// [500ms].
	RetryInterval time.Duration
	// StreamTimeout is the per-frame read deadline on the stream; the
	// primary heartbeats every second, so several missed beats mean a
	// dead primary [5s].
	StreamTimeout time.Duration
	// Registry receives the replica's lag gauges and counters
	// (repl.caught_up, repl.lag_segments, repl.applied_lsn,
	// repl.primary_lsn, repl.segments_applied, repl.snapshots_received,
	// repl.promotions, repl.reconnects). Pass the query server's
	// registry so the router's health prober sees them through STATS
	// [new registry].
	Registry *obs.Registry
	// Logger receives structured replication logs; nil disables.
	Logger *slog.Logger
	// OpenOpts is appended to the options each promoted database opens
	// with (pool size etc.). WithDurability/WithFS are supplied by the
	// replica itself.
	OpenOpts []probe.Option
}

func (c *ReplicaConfig) fillDefaults() error {
	if c.Primary == "" || c.PathA == "" || c.PathB == "" || c.PathA == c.PathB {
		return fmt.Errorf("repl: replica config requires Primary and two distinct page file paths")
	}
	if c.FS == nil {
		c.FS = disk.OSFS{}
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 500 * time.Millisecond
	}
	if c.StreamTimeout <= 0 {
		c.StreamTimeout = 5 * time.Second
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return nil
}

// Replica maintains a read-only copy of a primary's database by
// applying its shipped checkpoint segments to a ping-pong pair of
// page files. Create with NewReplica, drive with Run (one goroutine),
// hand the serving side over with SetSwap, gate readiness with
// ReadyErr.
type Replica struct {
	cfg ReplicaConfig

	mu            sync.Mutex
	db            *probe.DB // current serving database (nil until first sync)
	swap          func(*probe.DB) *probe.DB
	active        int // index (0/1) of the file db serves from
	fileLSN       [2]uint64
	pending       []disk.Segment // received, not yet in both files
	primaryLatest uint64
	conn          net.Conn
	closed        bool

	ready chan struct{} // closed when db first becomes non-nil
}

func (r *Replica) path(i int) string {
	if i == 0 {
		return r.cfg.PathA
	}
	return r.cfg.PathB
}

// NewReplica validates cfg and, when both page files already exist
// (a restart), reopens the newer one immediately so serving can
// resume before the primary is reachable.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	r := &Replica{cfg: cfg, ready: make(chan struct{})}
	bothExist := true
	for i := 0; i < 2; i++ {
		_, exists, err := cfg.FS.Stat(r.path(i))
		if err != nil {
			return nil, fmt.Errorf("repl: stat %s: %w", r.path(i), err)
		}
		if !exists {
			bothExist = false
		}
	}
	if bothExist {
		for i := 0; i < 2; i++ {
			fs, err := disk.OpenFileStoreFS(cfg.FS, r.path(i))
			if err != nil {
				return nil, fmt.Errorf("repl: reopen %s: %w", r.path(i), err)
			}
			r.fileLSN[i] = fs.CheckpointLSN()
			fs.Close()
		}
		r.active = 0
		if r.fileLSN[1] > r.fileLSN[0] {
			r.active = 1
		}
		db, err := r.openFile(r.active)
		if err != nil {
			return nil, err
		}
		r.db = db
		close(r.ready)
	}
	r.updateGauges()
	return r, nil
}

func (r *Replica) openFile(i int) (*probe.DB, error) {
	opts := append([]probe.Option{
		probe.WithDurability(r.path(i)), probe.WithFS(r.cfg.FS),
	}, r.cfg.OpenOpts...)
	return probe.Open(r.cfg.Grid, opts...)
}

// DB returns the current serving database (nil before the first sync).
func (r *Replica) DB() *probe.DB {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.db
}

// WaitReady blocks until the replica has a database to serve.
func (r *Replica) WaitReady(ctx context.Context) (*probe.DB, error) {
	select {
	case <-r.ready:
		return r.DB(), nil
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
}

// SetSwap hands promotion over to the query server: fn (typically
// server.SwapDB) is called with each newly promoted database, and is
// called once immediately so the server is synced to the current
// version. The server then owns closing the database it serves.
func (r *Replica) SetSwap(fn func(*probe.DB) *probe.DB) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.swap = fn
	if fn != nil && r.db != nil {
		fn(r.db)
	}
}

// ReadyErr reports why the replica should not serve reads yet: no
// database, or lagging the primary's newest shipped segment. nil
// means caught up — the /readyz and router-probe contract.
func (r *Replica) ReadyErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.db == nil {
		return fmt.Errorf("replica has no database yet (initial sync pending)")
	}
	if applied := r.fileLSN[r.active]; applied < r.primaryLatest {
		return fmt.Errorf("replica lagging: applied LSN %d < primary LSN %d", applied, r.primaryLatest)
	}
	return nil
}

// updateGauges publishes the lag picture. Caller may hold r.mu (the
// registry has its own locking; no lock ordering cycle).
func (r *Replica) updateGauges() {
	caught := int64(1)
	applied := r.fileLSN[r.active]
	if r.db == nil || applied < r.primaryLatest {
		caught = 0
	}
	reg := r.cfg.Registry
	reg.Gauge("repl.caught_up").Set(caught)
	unapplied := 0
	for _, seg := range r.pending {
		if seg.MaxLSN > applied {
			unapplied++
		}
	}
	reg.Gauge("repl.lag_segments").Set(int64(unapplied))
	reg.Gauge("repl.applied_lsn").Set(int64(applied))
	reg.Gauge("repl.primary_lsn").Set(int64(r.primaryLatest))
}

// Run drives the replica until ctx ends or Close: connect, catch up
// (snapshot or incremental), apply the live stream, reconnect on
// loss. Run owns all page file and database mutation; it is the only
// goroutine that applies segments.
func (r *Replica) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil || r.isClosed() {
			return err
		}
		if err := r.session(ctx); err != nil && r.cfg.Logger != nil {
			r.cfg.Logger.Warn("repl session ended", "err", err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(r.cfg.RetryInterval):
		}
	}
}

func (r *Replica) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// session runs one connection to the primary to completion.
func (r *Replica) session(ctx context.Context) error {
	d := net.Dialer{Timeout: r.cfg.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", r.cfg.Primary)
	if err != nil {
		return err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		conn.Close()
		return nil
	}
	r.conn = conn
	haveLSN := min(r.fileLSN[0], r.fileLSN[1])
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.conn = nil
		r.mu.Unlock()
		conn.Close()
	}()
	// Sever the blocking read when ctx ends; Close does the same via
	// r.conn.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchDone:
		}
	}()

	if err := wire.WriteFrame(conn, msgHello, encodeHello(haveLSN)); err != nil {
		return err
	}
	r.cfg.Registry.Int("repl.reconnects").Add(1)

	var snap []byte // accumulating snapshot image, nil outside a transfer
	var snapLSN uint64
	for {
		conn.SetReadDeadline(time.Now().Add(r.cfg.StreamTimeout))
		typ, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return err
		}
		switch typ {
		case msgSnapBegin:
			lsn, total, err := decodeU64Pair(payload)
			if err != nil {
				return err
			}
			if total > 1<<32 {
				return fmt.Errorf("repl: implausible snapshot size %d", total)
			}
			snap, snapLSN = make([]byte, 0, total), lsn
		case msgSnapChunk:
			if snap == nil {
				return fmt.Errorf("repl: snapshot chunk outside a transfer")
			}
			snap = append(snap, payload...)
		case msgSnapEnd:
			if snap == nil {
				return fmt.Errorf("repl: snapshot end outside a transfer")
			}
			if err := r.installSnapshot(snap, snapLSN); err != nil {
				return err
			}
			snap = nil
		case msgSegment:
			seg, err := disk.DecodeSegment(payload)
			if err != nil {
				return err
			}
			if err := r.ingest(seg); err != nil {
				return err
			}
		case msgHeartbeat:
			lsn, err := decodeU64(payload)
			if err != nil {
				return err
			}
			r.mu.Lock()
			if lsn > r.primaryLatest {
				r.primaryLatest = lsn
			}
			r.updateGauges()
			r.mu.Unlock()
		case msgError:
			return fmt.Errorf("repl: primary: %s", payload)
		default:
			return fmt.Errorf("repl: unexpected frame 0x%02x", typ)
		}
	}
}

// installSnapshot writes the received image to BOTH page files and
// promotes a database over it — the bootstrap (and fallen-behind)
// path.
func (r *Replica) installSnapshot(img []byte, lsn uint64) error {
	for i := 0; i < 2; i++ {
		f, err := r.cfg.FS.Create(r.path(i))
		if err != nil {
			return fmt.Errorf("repl: create %s: %w", r.path(i), err)
		}
		if _, err := f.WriteAt(img, 0); err != nil {
			f.Close()
			return fmt.Errorf("repl: write %s: %w", r.path(i), err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		// A fresh image invalidates any WAL left by a database that
		// served the old file; truncate via create.
		if wf, err := r.cfg.FS.Create(r.path(i) + ".wal"); err == nil {
			wf.Close()
		}
	}
	db, err := r.openFile(0)
	if err != nil {
		return fmt.Errorf("repl: open snapshot: %w", err)
	}
	r.mu.Lock()
	old := r.db
	r.db = db
	r.active = 0
	r.fileLSN = [2]uint64{lsn, lsn}
	if lsn > r.primaryLatest {
		r.primaryLatest = lsn
	}
	kept := r.pending[:0]
	for _, seg := range r.pending {
		if seg.MaxLSN > lsn {
			kept = append(kept, seg)
		}
	}
	r.pending = kept
	if r.swap != nil {
		r.swap(db)
	}
	r.updateGauges()
	r.mu.Unlock()
	r.cfg.Registry.Int("repl.snapshots_received").Add(1)
	if old != nil {
		old.CloseReadOnly()
	}
	r.signalReady()
	if r.cfg.Logger != nil {
		r.cfg.Logger.Info("repl snapshot installed", "lsn", lsn, "bytes", len(img))
	}
	return nil
}

func (r *Replica) signalReady() {
	select {
	case <-r.ready:
	default:
		close(r.ready)
	}
}

// ingest queues one received segment and promotes: all segments the
// idle file is missing are applied to it, a database opens over it,
// the serving side swaps, and the previous database closes (blocking
// until its in-flight reads finish — the quiesce point).
func (r *Replica) ingest(seg disk.Segment) error {
	r.mu.Lock()
	if seg.MaxLSN > r.primaryLatest {
		r.primaryLatest = seg.MaxLSN
	}
	if seg.MaxLSN <= min(r.fileLSN[0], r.fileLSN[1]) {
		// Stale: both files already contain it (e.g. the segment the
		// snapshot checkpoint itself produced).
		r.updateGauges()
		r.mu.Unlock()
		return nil
	}
	r.pending = append(r.pending, seg)
	target := 1 - r.active
	var apply []disk.Segment
	for _, s := range r.pending {
		if s.MaxLSN > r.fileLSN[target] {
			apply = append(apply, s)
		}
	}
	r.mu.Unlock()

	for _, s := range apply {
		if err := disk.ApplyWALSegment(r.cfg.FS, r.path(target), s); err != nil {
			return fmt.Errorf("repl: apply segment (max LSN %d) to %s: %w", s.MaxLSN, r.path(target), err)
		}
		r.cfg.Registry.Int("repl.segments_applied").Add(1)
		r.mu.Lock()
		r.fileLSN[target] = s.MaxLSN
		r.mu.Unlock()
	}

	db, err := r.openFile(target)
	if err != nil {
		return fmt.Errorf("repl: open %s after apply: %w", r.path(target), err)
	}
	r.mu.Lock()
	old := r.db
	r.db = db
	r.active = target
	kept := r.pending[:0]
	floor := min(r.fileLSN[0], r.fileLSN[1])
	for _, s := range r.pending {
		if s.MaxLSN > floor {
			kept = append(kept, s)
		}
	}
	r.pending = kept
	if r.swap != nil {
		r.swap(db)
	}
	r.updateGauges()
	r.mu.Unlock()
	r.cfg.Registry.Int("repl.promotions").Add(1)
	if old != nil {
		old.CloseReadOnly()
	}
	r.signalReady()
	return nil
}

// Close stops the replica: the session (if any) is severed and Run
// returns. The serving database is closed only if no swap function
// was installed (otherwise the query server owns it).
func (r *Replica) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	conn := r.conn
	db, owned := r.db, r.swap == nil
	r.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	if owned && db != nil {
		return db.CloseReadOnly()
	}
	return nil
}

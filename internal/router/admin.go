package router

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
)

// AdminHandler returns the router's admin HTTP surface:
//
//	/metrics  Prometheus text format (probe_router_* namespace):
//	          per-shard fan-out latency histograms, fan-out call
//	          counters, shard/replica health gauges, merge overhead,
//	          front-side request counters
//	/healthz  liveness (200 while the process runs)
//	/readyz   readiness: 200 while the grid is learned, the router is
//	          not draining, and every shard has a live node; 503
//	          otherwise, with the first failing condition in the body
//	/debug/traces
//	          recent request traces, newest first (JSON; ?format=text
//	          for the rendered span trees): slow requests, sampled
//	          requests, and every FlagTrace request, each with its
//	          grafted fan-out span tree when traced
//	/debug/pprof, /debug/vars as on probed
//
// The handler stays valid during and after Shutdown (readiness is how
// a load balancer sees the drain), so the admin HTTP server should be
// closed after Shutdown returns, not before.
func (r *Router) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", r.serveMetrics)
	mux.HandleFunc("/debug/traces", r.serveTraces)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
		if err := r.Ready(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return mux
}

// serveTraces dumps the trace store, newest first: JSON by default,
// the rendered-text form with ?format=text.
func (r *Router) serveTraces(w http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.traces.WriteText(w)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	r.traces.WriteJSON(w)
}

func (r *Router) serveMetrics(w http.ResponseWriter, req *http.Request) {
	var buf bytes.Buffer
	if err := r.metrics.WritePrometheus(&buf, "probe_router"); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	name := "probe_router_go_goroutines"
	fmt.Fprintf(&buf, "# TYPE %s gauge\n%s %d\n", name, name, runtime.NumGoroutine())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

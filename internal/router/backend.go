package router

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"probe/client"
)

// endpoint is one dialable node (a shard's primary or one replica)
// with its small pool of idle client connections and its health state.
type endpoint struct {
	r       *Router
	shard   int
	addr    string
	replica bool

	mu      sync.Mutex
	idle    []*client.Conn
	down    bool
	ready   bool // replicas: caught up per last probe; primaries: always true
	dialErr error
}

const maxIdleConns = 8

func newEndpoint(r *Router, shard int, addr string, replica bool) *endpoint {
	return &endpoint{r: r, shard: shard, addr: addr, replica: replica, ready: !replica}
}

// healthGauge is the endpoint's exported health gauge (1 = reachable
// and, for replicas, caught up).
func (ep *endpoint) healthGauge() string {
	kind := "primary"
	if ep.replica {
		kind = "replica." + ep.addr
	}
	return fmt.Sprintf("router.shard%d.%s.up", ep.shard, kind)
}

func (ep *endpoint) setHealth(up bool) {
	v := int64(0)
	if up {
		v = 1
	}
	ep.r.metrics.Gauge(ep.healthGauge()).Set(v)
}

// get returns a pooled connection or dials a fresh one. The boolean
// reports whether the conn came from the pool (a pooled conn may be
// stale, which justifies one retry on poison).
func (ep *endpoint) get(ctx context.Context) (*client.Conn, bool, error) {
	ep.mu.Lock()
	for len(ep.idle) > 0 {
		c := ep.idle[len(ep.idle)-1]
		ep.idle = ep.idle[:len(ep.idle)-1]
		ep.mu.Unlock()
		if c.Broken() == nil {
			return c, true, nil
		}
		c.Close()
		ep.mu.Lock()
	}
	ep.mu.Unlock()
	c, err := ep.dial(ctx)
	if err != nil {
		return nil, false, err
	}
	return c, false, nil
}

// dial opens and handshakes one connection, verifying the shard serves
// the grid the router learned.
func (ep *endpoint) dial(ctx context.Context) (*client.Conn, error) {
	d := net.Dialer{Timeout: ep.r.cfg.DialTimeout}
	nc, err := d.DialContext(ctx, "tcp", ep.addr)
	if err != nil {
		return nil, err
	}
	// The handshake needs its own deadline: a hung node accepts the
	// TCP connection and then never answers the hello, which would
	// otherwise block this dial (and the prober behind it) forever.
	deadline := time.Now().Add(ep.r.cfg.DialTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	nc.SetDeadline(deadline)
	c, err := client.NewConn(nc)
	if err != nil {
		nc.Close()
		return nil, err
	}
	nc.SetDeadline(time.Time{})
	if want := ep.r.gridBits(); want != nil {
		got := c.GridBits()
		if !equalBits(got, want) {
			c.Close()
			return nil, fmt.Errorf("router: shard %d node %s serves grid %v, cluster grid is %v",
				ep.shard, ep.addr, got, want)
		}
	}
	return c, nil
}

func equalBits(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// put returns a connection to the pool; poisoned or surplus conns are
// closed.
func (ep *endpoint) put(c *client.Conn) {
	if c.Broken() != nil {
		c.Close()
		return
	}
	ep.mu.Lock()
	if ep.down || len(ep.idle) >= maxIdleConns {
		ep.mu.Unlock()
		c.Close()
		return
	}
	ep.idle = append(ep.idle, c)
	ep.mu.Unlock()
}

// closePool closes every idle pooled connection (shutdown).
func (ep *endpoint) closePool() {
	ep.mu.Lock()
	idle := ep.idle
	ep.idle = nil
	ep.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}

// markDown records a transport failure: the pool is flushed (any
// pooled conn shares the dead peer) and the prober takes over.
func (ep *endpoint) markDown(err error) {
	ep.mu.Lock()
	ep.down = true
	ep.dialErr = err
	idle := ep.idle
	ep.idle = nil
	ep.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
	ep.setHealth(false)
}

func (ep *endpoint) markUp() {
	ep.mu.Lock()
	ep.down = false
	ep.dialErr = nil
	ep.mu.Unlock()
	ep.setHealth(true)
}

func (ep *endpoint) isDown() bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.down
}

func (ep *endpoint) isReady() bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.ready && !ep.down
}

func (ep *endpoint) setReady(v bool) {
	ep.mu.Lock()
	ep.ready = v
	ep.mu.Unlock()
}

// probe re-checks the endpoint: dial + handshake, and for replicas the
// caught-up flag from the node's STATS counters ("server.repl.caught_up";
// a node without the key — a plain probed — counts as caught up).
func (ep *endpoint) probe(ctx context.Context) {
	c, _, err := ep.get(ctx)
	if err != nil {
		ep.markDown(err)
		return
	}
	if ep.replica {
		pctx, cancel := context.WithTimeout(ctx, ep.r.cfg.DialTimeout)
		stats, err := c.Stats(pctx)
		cancel()
		if err != nil {
			c.Close()
			ep.markDown(err)
			return
		}
		caught, present := stats["server.repl.caught_up"]
		ep.setReady(!present || caught != 0)
	}
	ep.markUp()
	ep.put(c)
}

// backend is one shard's set of endpoints: the primary plus replicas.
type backend struct {
	r        *Router
	id       int
	primary  *endpoint
	replicas []*endpoint
}

func newBackend(r *Router, id int, def ShardDef) *backend {
	b := &backend{r: r, id: id, primary: newEndpoint(r, id, def.Primary, false)}
	for _, addr := range def.Replicas {
		b.replicas = append(b.replicas, newEndpoint(r, id, addr, true))
	}
	return b
}

func (b *backend) endpoints() []*endpoint {
	eps := make([]*endpoint, 0, 1+len(b.replicas))
	eps = append(eps, b.primary)
	eps = append(eps, b.replicas...)
	return eps
}

// readCandidates orders the endpoints a read may use: the primary
// first when healthy, then caught-up replicas. When nothing looks
// healthy every endpoint is tried anyway — the prober may simply not
// have noticed a recovery yet, and a failed attempt only costs the
// dial timeout the request was going to spend on an unavailable error
// anyway.
func (b *backend) readCandidates() []*endpoint {
	var eps []*endpoint
	if !b.primary.isDown() {
		eps = append(eps, b.primary)
	}
	for _, rep := range b.replicas {
		if rep.isReady() {
			eps = append(eps, rep)
		}
	}
	if len(eps) == 0 {
		eps = b.endpoints()
	}
	return eps
}

// read runs fn against the first endpoint that can serve it, failing
// over from a dead primary to caught-up replicas. Transport failures
// (dial errors, poisoned connections, hung-call watchdog expiries)
// mark the endpoint down and move on; any other error — a real server
// answer or the client's own cancellation — returns as-is.
func (b *backend) read(ctx context.Context, fn func(context.Context, *client.Conn) error) error {
	return b.call(ctx, b.readCandidates(), fn)
}

// write runs fn against the shard's primary only: replicas are
// read-only, so a dead primary makes writes typed-unavailable.
func (b *backend) write(ctx context.Context, fn func(context.Context, *client.Conn) error) error {
	return b.call(ctx, []*endpoint{b.primary}, fn)
}

func (b *backend) call(ctx context.Context, eps []*endpoint, fn func(context.Context, *client.Conn) error) error {
	var lastErr error
	lastAddr := b.primary.addr
	for _, ep := range eps {
		err, transport := b.tryEndpoint(ctx, ep, fn)
		if err == nil {
			return nil
		}
		if !transport {
			return err
		}
		if ctx.Err() != nil {
			// The client's own context ended; don't burn failover
			// attempts on it.
			return ctx.Err()
		}
		ep.markDown(err)
		lastErr, lastAddr = err, ep.addr
	}
	b.r.metrics.Int("router.unavailable").Add(1)
	return &ShardError{Shard: b.id, Addr: lastAddr, Err: lastErr}
}

// tryEndpoint runs fn once against ep (with a single retry on a fresh
// connection when a pooled conn turns out poisoned), bounding the call
// with the backend watchdog so a hung shard cannot wedge the router.
// The bool reports whether the failure was transport-level (failover
// is warranted). When the request carries a traceCtx, the call runs
// traced — FlagTrace plus the request's trace ID propagate to the
// shard — and the shard's answer is grafted under the request span as
// a fanout.shard<N>.<primary|replica> subtree.
func (b *backend) tryEndpoint(ctx context.Context, ep *endpoint, fn func(context.Context, *client.Conn) error) (error, bool) {
	tc := traceFrom(ctx)
	for attempt := 0; ; attempt++ {
		c, pooled, err := ep.get(ctx)
		if err != nil {
			return err, true
		}
		if tc != nil {
			c.SetTrace(true)
			c.SetTraceID(tc.id)
		}
		t0 := time.Now()
		err = b.callOnce(ctx, c, fn)
		callDur := time.Since(t0)
		b.r.metrics.Histogram(fmt.Sprintf("router.fanout.shard%d.ns", b.id)).Observe(int64(callDur))
		b.r.metrics.Int(fmt.Sprintf("router.fanout.shard%d.calls", b.id)).Add(1)
		broken := c.Broken() != nil
		if tc != nil {
			tc.graft(b.id, ep.replica, callDur, c)
			// Pooled connections are shared across requests: strip the
			// trace state before returning the conn so an untraced
			// request picking it up next does not run traced.
			c.SetTrace(false)
			c.SetTraceID(0)
		}
		if !broken {
			ep.put(c)
		} else {
			c.Close()
		}
		if err == nil {
			return nil, false
		}
		if transportErr(err) || broken {
			// A pooled conn may have died while idle; one retry on a
			// freshly dialed conn distinguishes a stale pool entry from
			// a dead node.
			if pooled && attempt == 0 {
				continue
			}
			return err, true
		}
		return err, false
	}
}

// callOnce bounds one backend call with the watchdog: if the shard
// hangs past BackendTimeout (plus a grace period for the client's
// graceful CANCEL path), the connection is torn down so the blocked
// read unblocks with a poisoned-connection error.
func (b *backend) callOnce(ctx context.Context, c *client.Conn, fn func(context.Context, *client.Conn) error) error {
	bctx := ctx
	var cancel context.CancelFunc
	if d := b.r.cfg.BackendTimeout; d > 0 {
		bctx, cancel = context.WithTimeoutCause(ctx, d, errBackendTimeout)
		defer cancel()
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-bctx.Done():
			// Give the client's CANCEL round trip a grace window; a live
			// server answers it quickly and the conn survives. A hung one
			// doesn't — sever so the blocked read returns.
			t := time.NewTimer(b.r.cfg.CancelGrace)
			defer t.Stop()
			select {
			case <-t.C:
				c.Close()
			case <-done:
			}
		case <-done:
		}
	}()
	err := fn(bctx, c)
	if err != nil && context.Cause(bctx) == errBackendTimeout {
		return fmt.Errorf("%w after %s: %v", errBackendTimeout, b.r.cfg.BackendTimeout, err)
	}
	return err
}

// transportErr classifies failures that justify failover: the node is
// unreachable or the conversation died, as opposed to the node
// answering with a real (even if unhappy) result.
func transportErr(err error) bool {
	if errors.Is(err, client.ErrPoisoned) || errors.Is(err, errBackendTimeout) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	// Dial-level failures (connection refused etc.) surface as
	// *net.OpError which is a net.Error; handshake short-reads as io
	// errors wrapped by the client are poisoned. Anything else is a
	// protocol-level answer.
	return false
}

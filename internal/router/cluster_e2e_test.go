package router

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"probe"
	"probe/client"
	"probe/internal/battery"
	"probe/internal/disk/faultfs"
	"probe/internal/obs"
	"probe/internal/repl"
	"probe/internal/server"
)

func clusterGrid() probe.Grid { return probe.MustGrid(2, 10) }

func clusterPoints(rng *rand.Rand, n int, idBase uint64) []probe.Point {
	pts := make([]probe.Point, n)
	for i := range pts {
		pts[i] = probe.Pt2(idBase+uint64(i), uint32(rng.Intn(1024)), uint32(rng.Intn(1024)))
	}
	return pts
}

// startShard serves db on a loopback listener and returns its address.
func startShard(t *testing.T, db *probe.DB, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv := server.New(db, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Shutdown(context.Background()) })
	return srv, ln.Addr().String()
}

// startRouter builds, starts and serves a router over m.
func startRouter(t *testing.T, m *Map, cfg Config) (*Router, string) {
	t.Helper()
	cfg.Map = m
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Start(ctx); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve(ln)
	t.Cleanup(func() { r.Shutdown(context.Background()) })
	return r, ln.Addr().String()
}

func dialRouter(t *testing.T, addr string) *client.Conn {
	t.Helper()
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// insertThrough pushes pts through the router in batches, scattering
// them onto their owner shards.
func insertThrough(t *testing.T, cl *client.Conn, pts []probe.Point) {
	t.Helper()
	ctx := context.Background()
	for off := 0; off < len(pts); off += 500 {
		end := min(off+500, len(pts))
		if _, err := cl.Insert(ctx, pts[off:end]); err != nil {
			t.Fatalf("insert through router: %v", err)
		}
	}
}

func samePoints(a, b []probe.Point) string {
	if len(a) != len(b) {
		return fmt.Sprintf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return fmt.Sprintf("row %d: id %d vs %d", i, a[i].ID, b[i].ID)
		}
		for d := range a[i].Coords {
			if a[i].Coords[d] != b[i].Coords[d] {
				return fmt.Sprintf("row %d dim %d: %d vs %d", i, d, a[i].Coords[d], b[i].Coords[d])
			}
		}
	}
	return ""
}

func randBox(rng *rand.Rand) (lo, hi []uint32) {
	xlo, ylo := uint32(rng.Intn(1024)), uint32(rng.Intn(1024))
	return []uint32{xlo, ylo},
		[]uint32{xlo + uint32(rng.Intn(int(1024-xlo))), ylo + uint32(rng.Intn(int(1024-ylo)))}
}

// TestClusterQueryDifferential is the cluster acceptance battery: the
// same data lives once in a single in-process database and once
// sharded across three servers behind a router; RANGE streams must be
// byte-identical (z-order preserved through the merge), NNEAREST
// results identical, and 220 generated spatial SQL statements must
// return identical schemas and row sets.
func TestClusterQueryDifferential(t *testing.T) {
	g := clusterGrid()
	shardDBs := make([]*probe.DB, 3)
	addrs := make([]string, 3)
	for i := range shardDBs {
		db, err := probe.Open(g)
		if err != nil {
			t.Fatal(err)
		}
		shardDBs[i] = db
		_, addrs[i] = startShard(t, db, server.Config{BatchSize: 32})
	}
	m, err := BuildEvenMap(DefaultPrefixBits(3), addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, raddr := startRouter(t, m, Config{BatchSize: 32})
	cl := dialRouter(t, raddr)

	pts := clusterPoints(rand.New(rand.NewSource(1986)), 4000, 1)
	insertThrough(t, cl, pts)
	single, err := probe.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if err := single.InsertAll(pts); err != nil {
		t.Fatal(err)
	}

	// The scatter must actually have scattered: no shard owns
	// everything, none is empty (4000 uniform points over an even map).
	for i, db := range shardDBs {
		if db.Len() == 0 || db.Len() == len(pts) {
			t.Fatalf("shard %d holds %d of %d points: not sharded", i, db.Len(), len(pts))
		}
	}

	ctx := context.Background()

	// RANGE: byte-identical streams, including z-order.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		lo, hi := randBox(rng)
		box, err := probe.NewBox(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := single.RangeSearch(box)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := cl.Range(ctx, lo, hi)
		if err != nil {
			t.Fatalf("router range: %v", err)
		}
		if d := samePoints(want, got); d != "" {
			t.Fatalf("range %v..%v: cluster stream differs from single node: %s", lo, hi, d)
		}
	}

	// NNEAREST: identical neighbor lists.
	for i := 0; i < 20; i++ {
		q := []uint32{uint32(rng.Intn(1024)), uint32(rng.Intn(1024))}
		want, _, err := single.Nearest(q, 8, probe.Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := cl.Nearest(ctx, q, 8, probe.Euclidean)
		if err != nil {
			t.Fatalf("router nearest: %v", err)
		}
		if len(want) != len(got) {
			t.Fatalf("nearest %v: %d vs %d neighbors", q, len(want), len(got))
		}
		for j := range want {
			if want[j].Point.ID != got[j].Point.ID || want[j].Dist != got[j].Dist {
				t.Fatalf("nearest %v neighbor %d: %+v vs %+v", q, j, want[j], got[j])
			}
		}
	}

	// The full statement battery, single node vs cluster.
	const n = 220
	for i := 0; i < n; i++ {
		qseed := int64(1000 + i)
		sql, ordered := battery.GenQuery(rand.New(rand.NewSource(qseed)))
		local, lerr := single.Query(ctx, sql)
		remote, rerr := cl.Query(ctx, sql)
		if lerr != nil || rerr != nil {
			t.Errorf("seed %d: errors differ or non-nil: single=%v cluster=%v\n  query: %s", qseed, lerr, rerr, sql)
			continue
		}
		if d := battery.Diff(
			battery.Result{Columns: local.Columns, Rows: local.Rows},
			battery.Result{Columns: remote.Columns, Rows: remote.Rows},
			ordered,
		); d != "" {
			t.Errorf("seed %d: single vs cluster %s\n  query: %s", qseed, d, sql)
		}
	}
}

// ---- chaos proxy ----

const (
	proxyPass int32 = iota
	proxySever
	proxyHang
)

// chaosProxy sits between the router and one shard. In pass mode it
// forwards bytes; sever kills existing connections and refuses new
// ones; hang accepts and keeps connections but stops forwarding —
// the "node wedged mid-request" failure the backend watchdog exists
// for.
type chaosProxy struct {
	ln     net.Listener
	target string
	mode   atomic.Int32

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

func newChaosProxy(t *testing.T, target string) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	t.Cleanup(p.close)
	go p.accept()
	return p
}

func (p *chaosProxy) addr() string { return p.ln.Addr().String() }

func (p *chaosProxy) setMode(m int32) {
	p.mode.Store(m)
	if m == proxySever {
		p.mu.Lock()
		for c := range p.conns {
			c.Close()
		}
		p.mu.Unlock()
	}
}

func (p *chaosProxy) close() {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.ln.Close()
}

func (p *chaosProxy) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

func (p *chaosProxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *chaosProxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close()
}

func (p *chaosProxy) accept() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.mode.Load() == proxySever {
			conn.Close()
			continue
		}
		up, err := net.DialTimeout("tcp", p.target, time.Second)
		if err != nil {
			conn.Close()
			continue
		}
		if !p.track(conn) || !p.track(up) {
			conn.Close()
			up.Close()
			continue
		}
		go p.pipe(up, conn)
		go p.pipe(conn, up)
	}
}

// pipe copies src to dst, stalling (not dropping) bytes while the
// proxy is hung.
func (p *chaosProxy) pipe(dst, src net.Conn) {
	defer p.untrack(src)
	defer p.untrack(dst)
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			for p.mode.Load() == proxyHang {
				if p.isClosed() {
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// TestClusterShardKillSchedules is the fault-injection acceptance
// harness: three shards behind chaos proxies (shard 0 with a
// WAL-shipped read replica), and 104 seeded schedules that sever or
// hang one shard and then drive reads through the router. Every
// request must end in one of exactly three states — correct result
// (served by a healthy primary or by the replica), or the typed
// shard-unavailable error — within a bounded time; a deadlock, a
// transport-level failure surfacing to the client, or a silently
// partial result fails the harness.
func TestClusterShardKillSchedules(t *testing.T) {
	g := clusterGrid()

	// Shard 0: durable primary shipping its WAL to a replica that
	// serves read-only behind the same registry its lag gauges live in,
	// exactly the zrouted/probed production wiring.
	primFS := faultfs.New()
	shard0, err := probe.Open(g, probe.WithDurability("shard0"), probe.WithFS(primFS))
	if err != nil {
		t.Fatal(err)
	}
	_, shard0Addr := startShard(t, shard0, server.Config{})
	prim, err := repl.NewPrimary(shard0, repl.PrimaryConfig{Heartbeat: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go prim.Serve(pln)
	t.Cleanup(func() { prim.Close() })

	reg := obs.NewRegistry()
	rep, err := repl.NewReplica(repl.ReplicaConfig{
		Primary: pln.Addr().String(), Grid: g,
		PathA: "rep.a", PathB: "rep.b", FS: faultfs.New(),
		RetryInterval: 50 * time.Millisecond,
		Registry:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	repCtx, repCancel := context.WithCancel(context.Background())
	t.Cleanup(repCancel)
	go rep.Run(repCtx)
	t.Cleanup(func() { rep.Close() })
	wctx, wcancel := context.WithTimeout(repCtx, 10*time.Second)
	repDB, err := rep.WaitReady(wctx)
	wcancel()
	if err != nil {
		t.Fatal(err)
	}
	repSrv, repAddr := startShard(t, repDB, server.Config{ReadOnly: true, Metrics: reg})
	rep.SetSwap(repSrv.SwapDB)

	// Shards 1 and 2: plain in-memory servers.
	shardDBs := []*probe.DB{shard0}
	shardAddrs := []string{shard0Addr}
	for i := 1; i < 3; i++ {
		db, err := probe.Open(g)
		if err != nil {
			t.Fatal(err)
		}
		shardDBs = append(shardDBs, db)
		_, addr := startShard(t, db, server.Config{})
		shardAddrs = append(shardAddrs, addr)
	}

	// Chaos proxies in front of every primary; the replica is reached
	// directly (its failure mode is covered by lag gating).
	proxies := make([]*chaosProxy, 3)
	proxied := make([]string, 3)
	for i := range proxies {
		proxies[i] = newChaosProxy(t, shardAddrs[i])
		proxied[i] = proxies[i].addr()
	}

	m, err := BuildEvenMap(DefaultPrefixBits(3), proxied, [][]string{{repAddr}, nil, nil})
	if err != nil {
		t.Fatal(err)
	}
	r, raddr := startRouter(t, m, Config{
		DialTimeout:    300 * time.Millisecond,
		BackendTimeout: 200 * time.Millisecond,
		CancelGrace:    50 * time.Millisecond,
		ProbeInterval:  25 * time.Millisecond,
	})
	cl := dialRouter(t, raddr)
	ctx := context.Background()

	// Seed through the router, checkpoint (ships shard 0's segment),
	// and wait until the replica serves exactly the primary's rows.
	pts := clusterPoints(rand.New(rand.NewSource(404)), 1500, 1)
	insertThrough(t, cl, pts)
	if _, err := cl.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	reference, err := probe.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	defer reference.Close()
	if err := reference.InsertAll(pts); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() error {
		if err := rep.ReadyErr(); err != nil {
			return err
		}
		if got, want := repSrv.DB().Len(), shard0.Len(); got != want {
			return fmt.Errorf("replica has %d points, primary %d", got, want)
		}
		return nil
	})

	// One read through the router, classified. A bounded context is the
	// deadlock detector: nothing in the cluster may sit on a request
	// past the watchdog budget.
	readOnce := func(lo, hi []uint32) (outcome string) {
		rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		got, _, err := cl.Range(rctx, lo, hi)
		switch {
		case err == nil:
			box, berr := probe.NewBox(lo, hi)
			if berr != nil {
				t.Fatal(berr)
			}
			want, _, rerr := reference.RangeSearch(box)
			if rerr != nil {
				t.Fatal(rerr)
			}
			if d := samePoints(want, got); d != "" {
				t.Fatalf("degraded read differs from reference for %v..%v: %s", lo, hi, d)
			}
			return "ok"
		case errors.Is(err, client.ErrUnavailable):
			return "unavailable"
		default:
			t.Fatalf("read ended in a non-typed state: %v", err)
			return ""
		}
	}

	zlo := func(lo []uint32) uint64 { return r.Grid().ShuffleKey(lo) }

	const schedules = 104
	var okCount, degraded, replicaServed int
	for i := 0; i < schedules; i++ {
		rng := rand.New(rand.NewSource(int64(5000 + i)))
		victim := rng.Intn(3)
		mode := []int32{proxySever, proxyHang}[rng.Intn(2)]
		proxies[victim].setMode(mode)

		for op := 0; op < 2; op++ {
			lo, hi := randBox(rng)
			// The box's lower corner landing on the victim makes a
			// success against a killed shard 0 attributable to the
			// replica.
			needsVictim := m.OwnerOf(zlo(lo)) == victim
			switch readOnce(lo, hi) {
			case "ok":
				okCount++
				if victim == 0 && needsVictim {
					replicaServed++
				}
			case "unavailable":
				degraded++
			}
		}

		proxies[victim].setMode(proxyPass)
		// Every 8th schedule, require full recovery before moving on:
		// the prober must bring the severed/hung node back.
		if i%8 == 7 {
			waitFor(t, 5*time.Second, func() error {
				r.ProbeNow()
				rctx, cancel := context.WithTimeout(ctx, 2*time.Second)
				defer cancel()
				_, _, err := cl.Range(rctx, []uint32{0, 0}, []uint32{1023, 1023})
				return err
			})
		}
	}

	if okCount == 0 || degraded == 0 {
		t.Fatalf("schedules did not exercise both outcomes: ok=%d degraded=%d", okCount, degraded)
	}
	t.Logf("schedules=%d ok=%d degraded=%d (replica-attributable successes=%d)",
		schedules, okCount, degraded, replicaServed)

	// Full recovery: every shard healthy again, a full-region read is
	// exact, and the router reports ready.
	waitFor(t, 10*time.Second, func() error {
		r.ProbeNow()
		if err := r.Ready(); err != nil {
			return err
		}
		rctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		defer cancel()
		got, _, err := cl.Range(rctx, []uint32{0, 0}, []uint32{1023, 1023})
		if err != nil {
			return err
		}
		box, _ := probe.NewBox([]uint32{0, 0}, []uint32{1023, 1023})
		want, _, err := reference.RangeSearch(box)
		if err != nil {
			return err
		}
		if d := samePoints(want, got); d != "" {
			return fmt.Errorf("post-recovery read differs: %s", d)
		}
		return nil
	})
}

// TestClusterReadOnlyReplicaRejectsWrites pins the replica's
// front-door contract through real wiring: writes to a ReadOnly
// server come back as the typed read-only error.
func TestClusterReadOnlyReplicaRejectsWrites(t *testing.T) {
	db, err := probe.Open(clusterGrid())
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startShard(t, db, server.Config{ReadOnly: true})
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Insert(context.Background(), []probe.Point{probe.Pt2(1, 2, 3)}); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("insert on replica: got %v, want ErrReadOnly", err)
	}
	if _, _, err := cl.Range(context.Background(), []uint32{0, 0}, []uint32{10, 10}); err != nil {
		t.Fatalf("read on replica: %v", err)
	}
}

// waitFor polls fn until it returns nil or the deadline passes.
func waitFor(t *testing.T, d time.Duration, fn func() error) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		err := fn()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached in %s: %v", d, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

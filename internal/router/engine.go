package router

import (
	"context"

	"probe"
	"probe/internal/core"
	"probe/internal/geom"
	"probe/internal/planner"
	"probe/internal/query"
	"probe/internal/zorder"
)

// clusterEngine adapts the router's scatter-gather primitives to
// query.Engine, so parsed statements compile and run router-side
// exactly as they do on a single node: the plan's operators
// (projection, predicates, aggregates, DISTINCT, GROUP BY, LIMIT)
// execute over the merged global streams, which arrive in the same
// (z, id) order a single node produces. Table() is nil — the planner
// has no cluster-wide cost model, so plans use the fixed strategies,
// the same degradation transaction views take.
type clusterEngine struct {
	r     *Router
	stats probe.QueryStats
}

var _ query.Engine = (*clusterEngine)(nil)

func (e *clusterEngine) Grid() zorder.Grid      { return e.r.Grid() }
func (e *clusterEngine) Table() *planner.Table  { return nil }

func (e *clusterEngine) RangeFunc(ctx context.Context, box geom.Box, fn func(geom.Point) bool) error {
	qs, err := e.r.RangeFunc(ctx, box.Lo, box.Hi, 0, func(p probe.Point) bool {
		return fn(geom.Point{ID: p.ID, Coords: p.Coords})
	})
	e.stats = addStats(e.stats, qs)
	return err
}

func (e *clusterEngine) Nearest(ctx context.Context, q []uint32, k int) ([]core.Neighbor, error) {
	nbs, qs, err := e.r.Nearest(ctx, q, k, probe.Euclidean)
	e.stats = addStats(e.stats, qs)
	if err != nil {
		return nil, err
	}
	out := make([]core.Neighbor, len(nbs))
	for i, n := range nbs {
		out[i] = core.Neighbor{Point: geom.Point{ID: n.Point.ID, Coords: n.Point.Coords}, Dist: n.Dist}
	}
	return out, nil
}

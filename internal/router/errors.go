package router

import (
	"errors"
	"fmt"
)

// ErrShardUnavailable is the typed partial-degradation sentinel: a
// shard the request needs has no reachable, caught-up node. The
// concrete error is a *ShardError naming the shard; on the wire it
// becomes wire.CodeUnavailable, which the client surfaces as
// client.ErrUnavailable. The router returns it rather than a silently
// partial result: a scatter answer is all-or-typed-error.
var ErrShardUnavailable = errors.New("router: shard unavailable")

// ShardError reports which shard degraded a request and why. It
// errors.Is-matches ErrShardUnavailable.
type ShardError struct {
	Shard int
	Addr  string // last address tried
	Err   error  // underlying transport/timeout failure
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("router: shard %d (%s) unavailable: %v", e.Shard, e.Addr, e.Err)
}

// Unwrap exposes the underlying failure.
func (e *ShardError) Unwrap() error { return e.Err }

// Is matches the ErrShardUnavailable sentinel.
func (e *ShardError) Is(target error) bool { return target == ErrShardUnavailable }

// errBackendTimeout is the cancel cause marking a per-backend-call
// watchdog expiry (a hung shard), distinguishing it from the client's
// own deadline.
var errBackendTimeout = errors.New("router: backend call timed out")

// errScatterStop is the cancel cause when the front-side consumer
// stopped a scatter early (emit returned false): not a failure.
var errScatterStop = errors.New("router: consumer stopped")

// errDraining is the cancel cause for router shutdown.
var errDraining = errors.New("router: draining")

// Package router is the cluster coordination layer: zrouted's scatter-
// gather core. A Router owns a z-range shard map — contiguous z-prefix
// intervals assigned to probed shards — speaks the ordinary wire
// protocol on its front side, and fans requests out to per-shard
// client.Conn pools on its back side: point ops go to the owning
// shard, range/join work is clipped to intersecting shards, and the
// shards' z-sorted result streams are merged back into one, so a
// client cannot distinguish the cluster from a single node. Reads fail
// over to caught-up replicas (internal/repl) when a primary dies;
// docs/cluster.md is the operator reference.
package router

import (
	"bytes"
	"encoding/json"
	"fmt"

	"probe/internal/core"
)

// MapVersion is the shard-map format version this build writes and
// accepts.
const MapVersion = 1

// ShardDef is one shard's slice of the key space and its addresses.
// Slots is the inclusive interval [first, last] of z-prefix slots
// (2^PrefixBits equal slots, core.PrefixRange arithmetic) the shard
// owns; Primary serves reads and writes, Replicas serve reads when
// caught up.
type ShardDef struct {
	Slots    [2]uint64 `json:"slots"`
	Primary  string    `json:"primary"`
	Replicas []string  `json:"replicas,omitempty"`
}

// Map is the cluster's routing table: who owns which contiguous
// z-prefix interval. The JSON encoding is the on-disk/on-flag format
// zrouted consumes, stable field-for-field so maps round-trip
// byte-identically.
type Map struct {
	Version    int        `json:"version"`
	PrefixBits int        `json:"prefix_bits"`
	Shards     []ShardDef `json:"shards"`
}

// BuildEvenMap assigns 2^prefixBits prefix slots to the primaries in
// contiguous near-equal runs, in order: the canonical starting map for
// a fresh cluster. replicas[i] (when the slice is non-nil) lists shard
// i's replicas.
func BuildEvenMap(prefixBits int, primaries []string, replicas [][]string) (*Map, error) {
	if len(primaries) == 0 {
		return nil, fmt.Errorf("router: no shard addresses")
	}
	if err := checkPrefix(prefixBits); err != nil {
		return nil, err
	}
	slots := core.PrefixSlots(prefixBits)
	n := uint64(len(primaries))
	if slots < n {
		return nil, fmt.Errorf("router: %d prefix slots cannot cover %d shards", slots, n)
	}
	m := &Map{Version: MapVersion, PrefixBits: prefixBits}
	var next uint64
	for i, addr := range primaries {
		// Distribute the remainder one slot at a time so shard sizes
		// differ by at most one slot.
		count := slots / n
		if uint64(i) < slots%n {
			count++
		}
		def := ShardDef{Slots: [2]uint64{next, next + count - 1}, Primary: addr}
		if replicas != nil && i < len(replicas) {
			def.Replicas = replicas[i]
		}
		m.Shards = append(m.Shards, def)
		next += count
	}
	return m, m.Validate()
}

func checkPrefix(prefixBits int) error {
	if prefixBits < 1 || prefixBits > core.MaxPrefixBits {
		return fmt.Errorf("router: prefix %d bits outside [1,%d]", prefixBits, core.MaxPrefixBits)
	}
	return nil
}

// DefaultPrefixBits picks a prefix length for n shards: enough slots
// that an even split leaves at most ~12%% imbalance, capped at the
// partition bound.
func DefaultPrefixBits(n int) int {
	bits := 1
	for (1 << bits) < 4*n {
		bits++
	}
	if bits > core.MaxPrefixBits {
		bits = core.MaxPrefixBits
	}
	return bits
}

// Validate checks the structural invariants routing relies on: a known
// version, a legal prefix length, and shards whose slot intervals
// tile [0, 2^PrefixBits) exactly — no gaps, no overlaps — each with a
// primary address.
func (m *Map) Validate() error {
	if m.Version != MapVersion {
		return fmt.Errorf("router: shard map version %d, want %d", m.Version, MapVersion)
	}
	if err := checkPrefix(m.PrefixBits); err != nil {
		return err
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("router: shard map has no shards")
	}
	var next uint64
	for i, s := range m.Shards {
		if s.Primary == "" {
			return fmt.Errorf("router: shard %d has no primary address", i)
		}
		if s.Slots[0] != next {
			return fmt.Errorf("router: shard %d starts at slot %d, want %d (gap or overlap)", i, s.Slots[0], next)
		}
		if s.Slots[1] < s.Slots[0] {
			return fmt.Errorf("router: shard %d has inverted slots %v", i, s.Slots)
		}
		next = s.Slots[1] + 1
	}
	if next != core.PrefixSlots(m.PrefixBits) {
		return fmt.Errorf("router: shards cover %d slots, want %d", next, core.PrefixSlots(m.PrefixBits))
	}
	return nil
}

// Range returns the contiguous z-key interval shard i owns, derived
// from the same core.PrefixRange arithmetic PartitionZ shards the
// parallel join with.
func (m *Map) Range(i int) (core.ZRange, error) {
	s := m.Shards[i]
	lo, err := core.PrefixRange(s.Slots[0], m.PrefixBits)
	if err != nil {
		return core.ZRange{}, err
	}
	hi, err := core.PrefixRange(s.Slots[1], m.PrefixBits)
	if err != nil {
		return core.ZRange{}, err
	}
	return core.ZRange{Lo: lo.Lo, Hi: hi.Hi}, nil
}

// OwnerOf returns the index of the shard owning the left-justified
// z-key.
func (m *Map) OwnerOf(z uint64) int {
	slot := core.SlotOfKey(z, m.PrefixBits)
	for i, s := range m.Shards {
		if slot >= s.Slots[0] && slot <= s.Slots[1] {
			return i
		}
	}
	// Validate guarantees full coverage; unreachable on a validated map.
	return len(m.Shards) - 1
}

// Intersecting returns the indices of every shard whose z-interval
// overlaps [lo, hi], in shard order.
func (m *Map) Intersecting(lo, hi uint64) []int {
	if hi < lo {
		lo, hi = hi, lo
	}
	first := m.OwnerOf(lo)
	last := m.OwnerOf(hi)
	out := make([]int, 0, last-first+1)
	for i := first; i <= last; i++ {
		out = append(out, i)
	}
	return out
}

// Encode renders the map as indented JSON — the stable interchange
// format: decode∘encode is the identity on bytes.
func (m *Map) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeMap parses and validates a shard map.
func DecodeMap(data []byte) (*Map, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m Map
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("router: decoding shard map: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

package router

import (
	"bytes"
	"math/rand"
	"testing"

	"probe/internal/core"
)

// TestMapEncodeDecodeRoundTrip pins the stable shard-map encoding:
// decode∘encode is the identity on bytes, for maps with and without
// replicas.
func TestMapEncodeDecodeRoundTrip(t *testing.T) {
	m, err := BuildEvenMap(4, []string{"a:1", "b:1", "c:1"},
		[][]string{{"a:2"}, nil, {"c:2", "c:3"}})
	if err != nil {
		t.Fatal(err)
	}
	enc1, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeMap(enc1)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := m2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("encoding not byte-stable:\n%s\nvs\n%s", enc1, enc2)
	}
	if m2.PrefixBits != m.PrefixBits || len(m2.Shards) != len(m.Shards) {
		t.Fatal("decoded map differs structurally")
	}
	for i := range m.Shards {
		if m2.Shards[i].Slots != m.Shards[i].Slots || m2.Shards[i].Primary != m.Shards[i].Primary {
			t.Fatalf("shard %d differs after round trip", i)
		}
	}
}

// TestDecodeMapRejects pins Validate's rejections: gaps, overlaps,
// missing primaries, bad versions, unknown fields.
func TestDecodeMapRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"unknown field", `{"version":1,"prefix_bits":2,"bogus":1,"shards":[{"slots":[0,3],"primary":"a"}]}`},
		{"bad version", `{"version":9,"prefix_bits":2,"shards":[{"slots":[0,3],"primary":"a"}]}`},
		{"gap", `{"version":1,"prefix_bits":2,"shards":[{"slots":[0,1],"primary":"a"},{"slots":[3,3],"primary":"b"}]}`},
		{"overlap", `{"version":1,"prefix_bits":2,"shards":[{"slots":[0,2],"primary":"a"},{"slots":[2,3],"primary":"b"}]}`},
		{"short coverage", `{"version":1,"prefix_bits":2,"shards":[{"slots":[0,2],"primary":"a"}]}`},
		{"no primary", `{"version":1,"prefix_bits":2,"shards":[{"slots":[0,3],"primary":""}]}`},
		{"no shards", `{"version":1,"prefix_bits":2,"shards":[]}`},
		{"prefix too long", `{"version":1,"prefix_bits":63,"shards":[{"slots":[0,0],"primary":"a"}]}`},
	}
	for _, tc := range cases {
		if _, err := DecodeMap([]byte(tc.json)); err == nil {
			t.Errorf("%s: DecodeMap accepted invalid map", tc.name)
		}
	}
}

// TestBuildEvenMapCoverage checks even maps for many (bits, shards)
// combinations: slots tile exactly and sizes differ by at most one.
func TestBuildEvenMapCoverage(t *testing.T) {
	for bits := 1; bits <= core.MaxPrefixBits; bits += 3 {
		slots := core.PrefixSlots(bits)
		for n := 1; uint64(n) <= slots && n <= 9; n++ {
			addrs := make([]string, n)
			for i := range addrs {
				addrs[i] = "h:" + string(rune('a'+i))
			}
			m, err := BuildEvenMap(bits, addrs, nil)
			if err != nil {
				t.Fatalf("bits=%d n=%d: %v", bits, n, err)
			}
			var minSz, maxSz uint64
			for i, s := range m.Shards {
				sz := s.Slots[1] - s.Slots[0] + 1
				if i == 0 {
					minSz, maxSz = sz, sz
				} else {
					minSz, maxSz = min(minSz, sz), max(maxSz, sz)
				}
			}
			if maxSz-minSz > 1 {
				t.Fatalf("bits=%d n=%d: shard sizes differ by %d slots", bits, n, maxSz-minSz)
			}
		}
	}
}

// TestOwnerOfMatchesPrefixArithmetic cross-checks the map's routing
// against core's prefix arithmetic: for random z-keys, the owning
// shard's ZRange contains the key, and Intersecting agrees with a
// brute-force overlap scan.
func TestOwnerOfMatchesPrefixArithmetic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m, err := BuildEvenMap(6, []string{"a", "b", "c", "d", "e"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ranges := make([]core.ZRange, len(m.Shards))
	for i := range m.Shards {
		ranges[i], err = m.Range(i)
		if err != nil {
			t.Fatal(err)
		}
	}
	if ranges[0].Lo != 0 || ranges[len(ranges)-1].Hi != ^uint64(0) {
		t.Fatalf("shard ranges do not span the key space: first %+v last %+v", ranges[0], ranges[len(ranges)-1])
	}
	for trial := 0; trial < 2000; trial++ {
		z := rng.Uint64()
		own := m.OwnerOf(z)
		if !ranges[own].Contains(z) {
			t.Fatalf("OwnerOf(%#x) = shard %d whose range %+v excludes it", z, own, ranges[own])
		}
		if slot := core.SlotOfKey(z, m.PrefixBits); slot < m.Shards[own].Slots[0] || slot > m.Shards[own].Slots[1] {
			t.Fatalf("slot %d of key %#x outside shard %d's slots %v", slot, z, own, m.Shards[own].Slots)
		}

		lo, hi := rng.Uint64(), rng.Uint64()
		if hi < lo {
			lo, hi = hi, lo
		}
		got := m.Intersecting(lo, hi)
		var want []int
		for i, r := range ranges {
			if r.Overlaps(lo, hi) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("Intersecting(%#x,%#x) = %v, brute force %v", lo, hi, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Intersecting(%#x,%#x) = %v, brute force %v", lo, hi, got, want)
			}
		}
	}
}

// TestDefaultPrefixBits pins the sizing rule: enough slots for at
// least 4 per shard, capped at the partition bound.
func TestDefaultPrefixBits(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{1, 2}, {2, 3}, {3, 4}, {4, 4}, {8, 5}, {100, 9}, {1000, core.MaxPrefixBits},
	} {
		if got := DefaultPrefixBits(tc.n); got != tc.want {
			t.Errorf("DefaultPrefixBits(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

package router

import (
	"container/heap"

	"probe"
)

// This file is the gather half of scatter-gather: k shards each
// stream their slice of a range result already sorted by (z-key, id) —
// exactly the order a single node produces — and the router interleaves
// them back into one globally sorted stream. The merge is a k-way heap
// merge over pull cursors, so it holds one point per shard in memory
// regardless of result size, and ties (equal z-keys across shards,
// which replication of short elements can produce) break by id and
// then by stream index, making the output deterministic.

// ZPoint is one streamed point tagged with its left-justified z-key.
type ZPoint struct {
	Z uint64
	P probe.Point
}

// zLess orders merge output: by z-key, then id, then source stream.
func zLess(a, b ZPoint, ai, bi int) bool {
	if a.Z != b.Z {
		return a.Z < b.Z
	}
	if a.P.ID != b.P.ID {
		return a.P.ID < b.P.ID
	}
	return ai < bi
}

// zCursor pulls one (ZPoint, ok, err) at a time from a shard stream.
// After it reports ok=false it is never pulled again; a non-nil err
// aborts the whole merge.
type zCursor func() (ZPoint, bool, error)

type zHeapItem struct {
	cur ZPoint
	idx int // source stream, the final tiebreak
	c   zCursor
}

type zHeap []zHeapItem

func (h zHeap) Len() int { return len(h) }
func (h zHeap) Less(i, j int) bool {
	return zLess(h[i].cur, h[j].cur, h[i].idx, h[j].idx)
}
func (h zHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *zHeap) Push(x any)        { *h = append(*h, x.(zHeapItem)) }
func (h *zHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// mergeZ interleaves k pre-sorted cursors into one (z, id)-ordered
// stream, calling emit per point. emit returning false stops the merge
// early (stopped=true, nil error). Empty streams are legal and cost
// one pull.
func mergeZ(cursors []zCursor, emit func(ZPoint) bool) (stopped bool, err error) {
	h := make(zHeap, 0, len(cursors))
	for i, c := range cursors {
		p, ok, err := c()
		if err != nil {
			return false, err
		}
		if ok {
			h = append(h, zHeapItem{cur: p, idx: i, c: c})
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		it := h[0]
		if !emit(it.cur) {
			return true, nil
		}
		p, ok, err := it.c()
		if err != nil {
			return false, err
		}
		if ok {
			h[0].cur = p
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return false, nil
}

// sliceCursor adapts a materialized stream to a zCursor (tests and
// small gathers).
func sliceCursor(pts []ZPoint) zCursor {
	i := 0
	return func() (ZPoint, bool, error) {
		if i >= len(pts) {
			return ZPoint{}, false, nil
		}
		p := pts[i]
		i++
		return p, true, nil
	}
}

// MergeZSlices merges materialized pre-sorted streams; the exported
// entry point the property tests drive and small gathers reuse.
func MergeZSlices(streams [][]ZPoint, emit func(ZPoint) bool) {
	cursors := make([]zCursor, len(streams))
	for i, s := range streams {
		cursors[i] = sliceCursor(s)
	}
	mergeZ(cursors, emit) // slice cursors cannot error
}

// mergeNeighbors folds per-shard nearest-neighbor lists (each sorted
// by (dist, id), at most m long) into the global top m in the same
// order. Shard counts are tiny (≤ m each), so this sorts by k-way
// merge over slices for determinism rather than resorting.
func mergeNeighbors(lists [][]probe.Neighbor, m int) []probe.Neighbor {
	idx := make([]int, len(lists))
	out := make([]probe.Neighbor, 0, m)
	for len(out) < m {
		best := -1
		for i, l := range lists {
			if idx[i] >= len(l) {
				continue
			}
			if best == -1 || neighborLess(l[idx[i]], lists[best][idx[best]]) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		out = append(out, lists[best][idx[best]])
		idx[best]++
	}
	return out
}

func neighborLess(a, b probe.Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.Point.ID < b.Point.ID
}

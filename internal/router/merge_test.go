package router

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"probe"
)

// oracle sorts the concatenation of all streams by the merge's full
// key (z, id, stream index) — the "sort everything" reference the
// streaming merge must match exactly.
func oracle(streams [][]ZPoint) []ZPoint {
	type tagged struct {
		p ZPoint
		s int
	}
	var all []tagged
	for si, s := range streams {
		for _, p := range s {
			all = append(all, tagged{p, si})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		return zLess(all[i].p, all[j].p, all[i].s, all[j].s)
	})
	out := make([]ZPoint, len(all))
	for i, t := range all {
		out[i] = t.p
	}
	return out
}

func sortStream(s []ZPoint) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Z != s[j].Z {
			return s[i].Z < s[j].Z
		}
		return s[i].P.ID < s[j].P.ID
	})
}

// randStreams builds k pre-sorted streams. Z values are drawn from a
// deliberately small space so duplicates across streams (the
// replication case: a short element's points living on several
// shards) occur constantly.
func randStreams(rng *rand.Rand, k, maxLen int) [][]ZPoint {
	streams := make([][]ZPoint, k)
	var id uint64
	for i := range streams {
		n := rng.Intn(maxLen + 1) // 0 is legal: empty shard
		s := make([]ZPoint, n)
		for j := range s {
			id++
			s[j] = ZPoint{
				Z: uint64(rng.Intn(64)) << 58, // small z-space → many collisions
				P: probe.Point{ID: id, Coords: []uint32{uint32(rng.Intn(1024)), uint32(rng.Intn(1024))}},
			}
		}
		sortStream(s)
		streams[i] = s
	}
	return streams
}

// TestMergeZProperty drives MergeZSlices against the
// sort-the-concatenation oracle across many random stream
// configurations: varying shard counts, empty shards, heavy z-value
// duplication across shards.
func TestMergeZProperty(t *testing.T) {
	for trial := 0; trial < 300; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		k := 1 + rng.Intn(6)
		streams := randStreams(rng, k, 40)

		var got []ZPoint
		MergeZSlices(streams, func(p ZPoint) bool {
			got = append(got, p)
			return true
		})
		want := oracle(streams)
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d points, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Z != want[i].Z || got[i].P.ID != want[i].P.ID {
				t.Fatalf("trial %d: position %d: got (z=%#x id=%d), want (z=%#x id=%d)",
					trial, i, got[i].Z, got[i].P.ID, want[i].Z, want[i].P.ID)
			}
		}
	}
}

// TestMergeZDuplicateZAcrossShards pins the tie-break order: equal z
// across shards orders by id, equal (z, id) by stream index.
func TestMergeZDuplicateZAcrossShards(t *testing.T) {
	const z = uint64(0x5a) << 56
	streams := [][]ZPoint{
		{{Z: z, P: probe.Point{ID: 30}}, {Z: z + 1, P: probe.Point{ID: 10}}},
		{{Z: z, P: probe.Point{ID: 20}}},
		{{Z: z, P: probe.Point{ID: 20}}}, // same (z, id) as stream 1
	}
	var ids []uint64
	MergeZSlices(streams, func(p ZPoint) bool {
		ids = append(ids, p.P.ID)
		return true
	})
	want := []uint64{20, 20, 30, 10}
	if len(ids) != len(want) {
		t.Fatalf("got %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("got %v, want %v", ids, want)
		}
	}
}

// TestMergeZAllEmpty checks the degenerate cases: no streams, all
// streams empty.
func TestMergeZAllEmpty(t *testing.T) {
	calls := 0
	MergeZSlices(nil, func(ZPoint) bool { calls++; return true })
	MergeZSlices([][]ZPoint{{}, {}, {}}, func(ZPoint) bool { calls++; return true })
	if calls != 0 {
		t.Fatalf("merge of empty streams emitted %d points", calls)
	}
}

// TestMergeZEarlyStop checks that emit returning false stops the merge
// with stopped=true and no error, after exactly the emitted prefix.
func TestMergeZEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	streams := randStreams(rng, 4, 50)
	want := oracle(streams)
	if len(want) < 10 {
		t.Fatal("test needs more points")
	}
	cursors := make([]zCursor, len(streams))
	for i, s := range streams {
		cursors[i] = sliceCursor(s)
	}
	var got []ZPoint
	stopped, err := mergeZ(cursors, func(p ZPoint) bool {
		got = append(got, p)
		return len(got) < 10
	})
	if err != nil {
		t.Fatalf("mergeZ: %v", err)
	}
	if !stopped {
		t.Fatal("merge did not report early stop")
	}
	if len(got) != 10 {
		t.Fatalf("emitted %d points after stop at 10", len(got))
	}
	for i := range got {
		if got[i].P.ID != want[i].P.ID {
			t.Fatalf("prefix diverges from oracle at %d", i)
		}
	}
}

// TestMergeZCursorError checks that a failing cursor aborts the merge
// with its error — the all-or-typed-error contract's merge half.
func TestMergeZCursorError(t *testing.T) {
	boom := errors.New("shard died")
	ok := sliceCursor([]ZPoint{{Z: 1, P: probe.Point{ID: 1}}, {Z: 2, P: probe.Point{ID: 2}}})
	n := 0
	failing := func() (ZPoint, bool, error) {
		n++
		if n == 1 {
			return ZPoint{Z: 0, P: probe.Point{ID: 9}}, true, nil
		}
		return ZPoint{}, false, boom
	}
	_, err := mergeZ([]zCursor{ok, failing}, func(ZPoint) bool { return true })
	if !errors.Is(err, boom) {
		t.Fatalf("merge error = %v, want %v", err, boom)
	}
}

// TestMergeNeighbors pins the nearest-gather fold: global top-m by
// (dist, id) from per-shard sorted lists.
func TestMergeNeighbors(t *testing.T) {
	lists := [][]probe.Neighbor{
		{{Point: probe.Point{ID: 1}, Dist: 1.0}, {Point: probe.Point{ID: 4}, Dist: 3.0}},
		{{Point: probe.Point{ID: 2}, Dist: 1.0}, {Point: probe.Point{ID: 3}, Dist: 2.0}},
		{},
	}
	got := mergeNeighbors(lists, 3)
	wantIDs := []uint64{1, 2, 3}
	if len(got) != len(wantIDs) {
		t.Fatalf("got %d neighbors, want %d", len(got), len(wantIDs))
	}
	for i, id := range wantIDs {
		if got[i].Point.ID != id {
			t.Fatalf("position %d: id %d, want %d", i, got[i].Point.ID, id)
		}
	}
	// m larger than the union returns everything.
	if all := mergeNeighbors(lists, 10); len(all) != 4 {
		t.Fatalf("unbounded merge returned %d, want 4", len(all))
	}
}

package router

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"probe"
	"probe/client"
	"probe/internal/obs"
	"probe/internal/zorder"
)

// Config tunes one Router. Zero values select the defaults in
// brackets.
type Config struct {
	// Map is the z-range shard map (required, validated).
	Map *Map
	// MaxInflight caps concurrently executing front-side requests [64].
	MaxInflight int
	// BatchSize is points/pairs/rows per streamed response frame [512].
	BatchSize int
	// DialTimeout bounds one backend dial [2s].
	DialTimeout time.Duration
	// BackendTimeout bounds one backend call: a shard that neither
	// answers nor fails within it counts as unavailable, so a hung node
	// cannot wedge the router [30s].
	BackendTimeout time.Duration
	// CancelGrace is how long after a backend-call cancellation the
	// router waits for the client's graceful CANCEL round trip before
	// severing the connection [500ms].
	CancelGrace time.Duration
	// ProbeInterval is the health re-probe cadence for down primaries
	// and replica catch-up state [1s].
	ProbeInterval time.Duration
	// DrainTimeout bounds graceful shutdown [5s].
	DrainTimeout time.Duration
	// WriteTimeout bounds one front-side response frame write [10s].
	WriteTimeout time.Duration
	// Logger, when non-nil, receives structured request/health logs.
	// Every logged request line carries its trace_id, so router lines
	// grep-correlate with the shard lines of the same request.
	Logger *slog.Logger

	// SlowQuery is the slow-request log threshold: a front-side request
	// whose total latency reaches it is logged at Warn with its rendered
	// fan-out span tree. Zero disables; negative logs every request that
	// way.
	SlowQuery time.Duration

	// LogEvery samples the per-request Info log: every Nth completed
	// request logs one line [1 — every request, the router's historical
	// behavior]. Negative disables the Info log entirely; slow-query
	// logging is independent of the sample.
	LogEvery int

	// TraceBuffer is the capacity of the in-memory trace store behind
	// the admin endpoint's /debug/traces: the last N interesting
	// requests (client-traced, slow, or sampled), each with its trace
	// ID, outcome, and — when traced — the full grafted fan-out span
	// tree [64].
	TraceBuffer int
}

func (c *Config) fillDefaults() {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 512
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.BackendTimeout <= 0 {
		c.BackendTimeout = 30 * time.Second
	}
	if c.CancelGrace <= 0 {
		c.CancelGrace = 500 * time.Millisecond
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.LogEvery == 0 {
		c.LogEvery = 1
	}
}

// Router is the scatter-gather coordinator: the wire protocol in
// front, per-shard connection pools behind, the shard map in between.
type Router struct {
	cfg      Config
	m        *Map
	backends []*backend
	metrics  *obs.Registry

	// traces is the ring buffer of recent interesting requests served
	// at /debug/traces; reqSeq numbers completed requests for the
	// sampled Info log.
	traces *obs.TraceStore
	reqSeq atomic.Uint64

	// grid is learned from the first reachable shard's handshake and
	// immutable afterwards (gridMu guards the learning window).
	gridMu sync.Mutex
	grid   zorder.Grid
	bits   []int

	baseCtx    context.Context
	cancelBase context.CancelCauseFunc

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	draining  bool
	wg        sync.WaitGroup // sessions
	probeWG   sync.WaitGroup
	probeStop chan struct{}
	sem       chan struct{} // front-side admission
}

// New builds a Router over a validated shard map. Call Start to learn
// the cluster grid and begin health probing, then Serve.
func New(cfg Config) (*Router, error) {
	if cfg.Map == nil {
		return nil, errors.New("router: no shard map")
	}
	if err := cfg.Map.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	baseCtx, cancel := context.WithCancelCause(context.Background())
	r := &Router{
		cfg:        cfg,
		m:          cfg.Map,
		metrics:    obs.NewRegistry(),
		traces:     obs.NewTraceStore(cfg.TraceBuffer),
		baseCtx:    baseCtx,
		cancelBase: cancel,
		listeners:  make(map[net.Listener]struct{}),
		conns:      make(map[net.Conn]struct{}),
		probeStop:  make(chan struct{}),
		sem:        make(chan struct{}, cfg.MaxInflight),
	}
	for i, def := range cfg.Map.Shards {
		r.backends = append(r.backends, newBackend(r, i, def))
	}
	return r, nil
}

// Metrics exposes the router's registry (fan-out latency histograms,
// shard/replica health gauges, request counters) for /metrics.
func (r *Router) Metrics() *obs.Registry { return r.metrics }

// Map returns the routing table the router was built over.
func (r *Router) Map() *Map { return r.m }

// Traces returns the router's trace store: the ring of recent
// interesting requests (traced, slow, sampled) behind /debug/traces.
func (r *Router) Traces() *obs.TraceStore { return r.traces }

// gridBits returns the cluster grid's bits per dimension, nil until
// learned.
func (r *Router) gridBits() []int {
	r.gridMu.Lock()
	defer r.gridMu.Unlock()
	return r.bits
}

// Grid returns the cluster grid (zero Grid until Start succeeds).
func (r *Router) Grid() zorder.Grid {
	r.gridMu.Lock()
	defer r.gridMu.Unlock()
	return r.grid
}

// Start learns the cluster grid from the first reachable shard,
// verifies every reachable node agrees, and begins background health
// probing. It retries until ctx expires; a cluster with no reachable
// shard cannot route anything, so refusing to start is the safe
// answer.
func (r *Router) Start(ctx context.Context) error {
	var lastErr error
	for {
		for _, b := range r.backends {
			for _, ep := range b.endpoints() {
				c, _, err := ep.get(ctx)
				if err != nil {
					lastErr = fmt.Errorf("shard %d node %s: %w", b.id, ep.addr, err)
					continue
				}
				bits := c.GridBits()
				g, err := zorder.NewGridAsym(bits)
				if err != nil {
					c.Close()
					return fmt.Errorf("router: shard %d grid: %w", b.id, err)
				}
				r.gridMu.Lock()
				r.grid, r.bits = g, bits
				r.gridMu.Unlock()
				ep.markUp()
				ep.put(c)
				r.startProber()
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("router: no shard reachable: %w (last: %v)", ctx.Err(), lastErr)
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// startProber launches the background health loop: down endpoints are
// re-dialed, replica catch-up state refreshed.
func (r *Router) startProber() {
	r.probeWG.Add(1)
	go func() {
		defer r.probeWG.Done()
		t := time.NewTicker(r.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-r.probeStop:
				return
			case <-t.C:
				r.ProbeNow()
			}
		}
	}()
}

// ProbeNow runs one synchronous health sweep over every endpoint:
// down nodes are re-dialed, replica catch-up refreshed. The prober
// calls it on a ticker; tests call it directly to converge health
// state without waiting.
func (r *Router) ProbeNow() {
	ctx, cancel := context.WithTimeout(r.baseCtx, r.cfg.DialTimeout+r.cfg.ProbeInterval)
	defer cancel()
	var wg sync.WaitGroup
	for _, b := range r.backends {
		for _, ep := range b.endpoints() {
			if !ep.isDown() && !ep.replica {
				ep.setHealth(true)
				continue
			}
			wg.Add(1)
			go func(ep *endpoint) {
				defer wg.Done()
				ep.probe(ctx)
			}(ep)
		}
	}
	wg.Wait()
}

// Ready reports whether the router can serve: the grid is learned and
// every shard has at least one endpoint not known-down.
func (r *Router) Ready() error {
	if r.gridBits() == nil {
		return errors.New("router: cluster grid not learned")
	}
	if r.isDraining() {
		return errors.New("router: draining")
	}
	for _, b := range r.backends {
		ok := !b.primary.isDown()
		for _, rep := range b.replicas {
			ok = ok || rep.isReady()
		}
		if !ok {
			return fmt.Errorf("router: shard %d has no live node", b.id)
		}
	}
	return nil
}

func (r *Router) isDraining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.draining
}

// ---- Scatter-gather data operations ----

// shardsFor returns the backends whose z-intervals the box
// [lo, hi] intersects.
func (r *Router) shardsFor(lo, hi []uint32) ([]*backend, error) {
	g := r.Grid()
	if len(lo) != g.Dims() || len(hi) != g.Dims() {
		return nil, fmt.Errorf("router: box dims %d/%d, grid has %d", len(lo), len(hi), g.Dims())
	}
	if !g.Valid(lo) || !g.Valid(hi) {
		return nil, fmt.Errorf("router: box corner outside grid")
	}
	zlo, zhi := g.ShuffleKey(lo), g.ShuffleKey(hi)
	idxs := r.m.Intersecting(zlo, zhi)
	out := make([]*backend, len(idxs))
	for i, s := range idxs {
		out[i] = r.backends[s]
	}
	return out, nil
}

// RangeFunc streams every point in the box to fn in global (z, id)
// order, exactly as a single node would; fn returning false stops the
// scatter early without error. Shard streams are merged by z-key; a
// shard that cannot answer fails the whole request with a typed
// *ShardError — never a silently partial stream.
func (r *Router) RangeFunc(ctx context.Context, lo, hi []uint32, strategy uint8, fn func(probe.Point) bool) (probe.QueryStats, error) {
	shards, err := r.shardsFor(lo, hi)
	if err != nil {
		return probe.QueryStats{}, err
	}
	r.observeFanout("range", len(shards))
	if len(shards) == 1 {
		var qs probe.QueryStats
		err := shards[0].read(ctx, func(bctx context.Context, c *client.Conn) error {
			s, err := c.RangeFunc(bctx, lo, hi, strategy, fn)
			qs = s
			return err
		})
		return qs, err
	}

	g := r.Grid()
	sctx, cancel := context.WithCancelCause(ctx)
	defer cancel(context.Canceled)

	type shardStream struct {
		ch  chan []ZPoint
		err error
	}
	streams := make([]*shardStream, len(shards))
	var qsMu sync.Mutex
	var total probe.QueryStats
	var wg sync.WaitGroup
	for i, b := range shards {
		st := &shardStream{ch: make(chan []ZPoint, 4)}
		streams[i] = st
		wg.Add(1)
		go func(b *backend, st *shardStream) {
			defer wg.Done()
			err := b.read(sctx, func(bctx context.Context, c *client.Conn) error {
				buf := make([]ZPoint, 0, r.cfg.BatchSize)
				flush := func() bool {
					if len(buf) == 0 {
						return true
					}
					select {
					case st.ch <- buf:
						buf = make([]ZPoint, 0, r.cfg.BatchSize)
						return true
					case <-sctx.Done():
						return false
					}
				}
				qs, err := c.RangeFunc(bctx, lo, hi, strategy, func(p probe.Point) bool {
					buf = append(buf, ZPoint{Z: g.ShuffleKey(p.Coords), P: p})
					if len(buf) >= r.cfg.BatchSize {
						return flush()
					}
					return true
				})
				if err == nil && !flush() {
					err = sctx.Err()
				}
				qsMu.Lock()
				total = addStats(total, qs)
				qsMu.Unlock()
				return err
			})
			st.err = err
			close(st.ch)
		}(b, st)
	}

	cursors := make([]zCursor, len(streams))
	for i, st := range streams {
		st := st
		var cur []ZPoint
		pos := 0
		cursors[i] = func() (ZPoint, bool, error) {
			for pos >= len(cur) {
				var ok bool
				cur, ok = <-st.ch
				pos = 0
				if !ok {
					// Channel closed: st.err is settled (written before
					// close) and safe to read.
					return ZPoint{}, false, st.err
				}
			}
			p := cur[pos]
			pos++
			return p, true, nil
		}
	}

	t0 := time.Now()
	stopped, err := mergeZ(cursors, func(zp ZPoint) bool { return fn(zp.P) })
	mergeDur := time.Since(t0)
	r.metrics.Histogram("router.merge.ns").Observe(int64(mergeDur))
	if tc := traceFrom(ctx); tc != nil {
		// Attribute the router's own gather overhead: the z-merge loop
		// (which includes delivering rows to the client) as a sibling of
		// the per-shard fan-out subtrees.
		tc.span.Attach(probe.NewSealedTrace("merge", mergeDur))
	}
	if stopped {
		cancel(errScatterStop)
	} else if err != nil {
		cancel(err)
	}
	// Unblock any worker still sending, then wait them out so their
	// conns are back in the pools before we return.
	wg.Wait()
	if err != nil {
		return total, err
	}
	if !stopped {
		// The merge drained every stream; surface any error the merge
		// didn't see (a shard that failed after its last batch).
		for _, st := range streams {
			if st.err != nil {
				return total, st.err
			}
		}
	}
	return total, nil
}

// Range materializes RangeFunc.
func (r *Router) Range(ctx context.Context, lo, hi []uint32) ([]probe.Point, probe.QueryStats, error) {
	var pts []probe.Point
	qs, err := r.RangeFunc(ctx, lo, hi, 0, func(p probe.Point) bool {
		pts = append(pts, p)
		return true
	})
	if err != nil {
		return nil, qs, err
	}
	qs.Results = len(pts)
	return pts, qs, nil
}

// Nearest fans the m-nearest query to every shard (the true neighbors
// can live anywhere) and folds the per-shard lists into the global
// top m, ordered by (distance, id) like a single node.
func (r *Router) Nearest(ctx context.Context, q []uint32, m int, metric probe.Metric) ([]probe.Neighbor, probe.QueryStats, error) {
	g := r.Grid()
	if len(q) != g.Dims() || !g.Valid(q) {
		return nil, probe.QueryStats{}, fmt.Errorf("router: query point invalid for grid")
	}
	if m <= 0 {
		return nil, probe.QueryStats{}, fmt.Errorf("router: m must be positive")
	}
	r.observeFanout("nearest", len(r.backends))
	lists := make([][]probe.Neighbor, len(r.backends))
	statsList := make([]probe.QueryStats, len(r.backends))
	errs := make([]error, len(r.backends))
	var wg sync.WaitGroup
	for i, b := range r.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			errs[i] = b.read(ctx, func(bctx context.Context, c *client.Conn) error {
				nbs, qs, err := c.Nearest(bctx, q, m, metric)
				if err != nil {
					return err
				}
				lists[i], statsList[i] = nbs, qs
				return nil
			})
		}(i, b)
	}
	wg.Wait()
	var total probe.QueryStats
	for i := range r.backends {
		if errs[i] != nil {
			return nil, total, errs[i]
		}
		total = addStats(total, statsList[i])
	}
	out := mergeNeighbors(lists, m)
	total.Results = len(out)
	return out, total, nil
}

// Join ships each item to every shard whose z-interval its box
// intersects and unions the per-shard joins. A joining pair shares at
// least one grid pixel; that pixel lives in exactly one shard, which
// both items were shipped to — so the union over shards is exactly
// the single-node join, and DedupPairs-order (sorted (A,B), distinct)
// is restored after the union.
func (r *Router) Join(ctx context.Context, a, b []client.BoxItem, workers int) ([]probe.Pair, probe.QueryStats, error) {
	aParts, err := r.scatterItems(a)
	if err != nil {
		return nil, probe.QueryStats{}, fmt.Errorf("router: left relation: %w", err)
	}
	bParts, err := r.scatterItems(b)
	if err != nil {
		return nil, probe.QueryStats{}, fmt.Errorf("router: right relation: %w", err)
	}
	type result struct {
		pairs []probe.Pair
		qs    probe.QueryStats
		err   error
	}
	results := make([]result, len(r.backends))
	var wg sync.WaitGroup
	fanout := 0
	for i, bk := range r.backends {
		if len(aParts[i]) == 0 || len(bParts[i]) == 0 {
			continue
		}
		fanout++
		wg.Add(1)
		go func(i int, bk *backend) {
			defer wg.Done()
			results[i].err = bk.read(ctx, func(bctx context.Context, c *client.Conn) error {
				pairs, qs, err := c.Join(bctx, aParts[i], bParts[i], workers)
				if err != nil {
					return err
				}
				results[i].pairs, results[i].qs = pairs, qs
				return nil
			})
		}(i, bk)
	}
	wg.Wait()
	r.observeFanout("join", fanout)
	var total probe.QueryStats
	seen := make(map[probe.Pair]struct{})
	var pairs []probe.Pair
	for i := range results {
		if results[i].err != nil {
			return nil, total, results[i].err
		}
		total = addStats(total, results[i].qs)
		for _, p := range results[i].pairs {
			if _, dup := seen[p]; !dup {
				seen[p] = struct{}{}
				pairs = append(pairs, p)
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	total.Results = len(pairs)
	total.DistinctPairs = len(pairs)
	return pairs, total, nil
}

// scatterItems clips a join relation to the shards: item i goes to
// every shard whose z-interval intersects its box's z-span.
func (r *Router) scatterItems(items []client.BoxItem) ([][]client.BoxItem, error) {
	g := r.Grid()
	out := make([][]client.BoxItem, len(r.backends))
	for _, it := range items {
		if len(it.Lo) != g.Dims() || len(it.Hi) != g.Dims() || !g.Valid(it.Lo) || !g.Valid(it.Hi) {
			return nil, fmt.Errorf("router: item %d box invalid for grid", it.ID)
		}
		for _, s := range r.m.Intersecting(g.ShuffleKey(it.Lo), g.ShuffleKey(it.Hi)) {
			out[s] = append(out[s], it)
		}
	}
	return out, nil
}

// Insert routes each point to the shard owning its z-key and applies
// the per-shard batches in parallel. Any shard failure fails the
// call; shards that already applied stay applied (inserts are
// idempotent re-sends), and the partial outcome is counted in
// router.partial_writes.
func (r *Router) Insert(ctx context.Context, pts []probe.Point) (probe.QueryStats, error) {
	return r.applyWrite(ctx, pts, func(c *client.Conn, bctx context.Context, batch []probe.Point) (probe.QueryStats, error) {
		return c.Insert(bctx, batch)
	})
}

// Delete routes each point to its owning shard and applies the
// per-shard deletions in parallel; absent points are skipped by the
// shards as usual.
func (r *Router) Delete(ctx context.Context, pts []probe.Point) (probe.QueryStats, error) {
	return r.applyWrite(ctx, pts, func(c *client.Conn, bctx context.Context, batch []probe.Point) (probe.QueryStats, error) {
		return c.Delete(bctx, batch)
	})
}

func (r *Router) applyWrite(ctx context.Context, pts []probe.Point,
	op func(*client.Conn, context.Context, []probe.Point) (probe.QueryStats, error)) (probe.QueryStats, error) {

	g := r.Grid()
	byShard := make([][]probe.Point, len(r.backends))
	for _, p := range pts {
		if len(p.Coords) != g.Dims() || !g.Valid(p.Coords) {
			return probe.QueryStats{}, fmt.Errorf("router: point %d invalid for grid", p.ID)
		}
		s := r.m.OwnerOf(g.ShuffleKey(p.Coords))
		byShard[s] = append(byShard[s], p)
	}
	statsList := make([]probe.QueryStats, len(r.backends))
	errs := make([]error, len(r.backends))
	var wg sync.WaitGroup
	fanout := 0
	for i, batch := range byShard {
		if len(batch) == 0 {
			continue
		}
		fanout++
		wg.Add(1)
		go func(i int, batch []probe.Point) {
			defer wg.Done()
			errs[i] = r.backends[i].write(ctx, func(bctx context.Context, c *client.Conn) error {
				qs, err := op(c, bctx, batch)
				if err != nil {
					return err
				}
				statsList[i] = qs
				return nil
			})
		}(i, batch)
	}
	wg.Wait()
	r.observeFanout("write", fanout)
	var total probe.QueryStats
	var firstErr error
	okShards := 0
	for i := range r.backends {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		if len(byShard[i]) > 0 {
			okShards++
		}
		total = addStats(total, statsList[i])
		total.Results += statsList[i].Results
	}
	if firstErr != nil {
		if okShards > 0 {
			r.metrics.Int("router.partial_writes").Add(1)
		}
		return total, firstErr
	}
	return total, nil
}

// Checkpoint forces a durability checkpoint on every shard primary.
func (r *Router) Checkpoint(ctx context.Context) (probe.QueryStats, error) {
	var total probe.QueryStats
	statsList := make([]probe.QueryStats, len(r.backends))
	errs := make([]error, len(r.backends))
	var wg sync.WaitGroup
	for i, b := range r.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			errs[i] = b.write(ctx, func(bctx context.Context, c *client.Conn) error {
				qs, err := c.Checkpoint(bctx)
				if err != nil {
					return err
				}
				statsList[i] = qs
				return nil
			})
		}(i, b)
	}
	wg.Wait()
	for i := range r.backends {
		if errs[i] != nil {
			return total, errs[i]
		}
		total = addStats(total, statsList[i])
	}
	return total, nil
}

// Explain gathers each intersecting shard's plan for the box and
// composes them under a routing header.
func (r *Router) Explain(ctx context.Context, lo, hi []uint32) (string, error) {
	shards, err := r.shardsFor(lo, hi)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cluster scatter: %d/%d shards intersect\n", len(shards), len(r.backends))
	for _, bk := range shards {
		var text string
		err := bk.read(ctx, func(bctx context.Context, c *client.Conn) error {
			t, err := c.Explain(bctx, lo, hi)
			text = t
			return err
		})
		if err != nil {
			return "", err
		}
		rg, _ := r.m.Range(bk.id)
		fmt.Fprintf(&b, "shard %d [z %#016x..%#016x] %s:\n", bk.id, rg.Lo, rg.Hi, r.m.Shards[bk.id].Primary)
		for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
			b.WriteString("  " + line + "\n")
		}
	}
	return b.String(), nil
}

// StatsMap snapshots the router's counters, gauges and flattened
// histograms with a "router." namespace, the shape STATS serves.
func (r *Router) StatsMap() map[string]int64 {
	out := make(map[string]int64)
	r.metrics.DoNumeric(func(name string, v int64) {
		out[name] = v
	})
	return out
}

// observeFanout records one scatter's breadth.
func (r *Router) observeFanout(op string, shards int) {
	r.metrics.Int("router.requests." + op).Add(1)
	r.metrics.Histogram("router.fanout.shards").Observe(int64(shards))
}

// addStats sums the per-shard execution stats (Results excluded: the
// merge decides what the client actually received).
func addStats(a, b probe.QueryStats) probe.QueryStats {
	a.DataPages += b.DataPages
	a.Seeks += b.Seeks
	a.Elements += b.Elements
	a.LeftItems += b.LeftItems
	a.RightItems += b.RightItems
	a.RawPairs += b.RawPairs
	a.DistinctPairs += b.DistinctPairs
	a.Shards += b.Shards
	a.ReplicatedItems += b.ReplicatedItems
	a.PoolGets += b.PoolGets
	a.PoolHits += b.PoolHits
	a.PoolMisses += b.PoolMisses
	a.PhysReads += b.PhysReads
	a.PhysWrites += b.PhysWrites
	a.WALAppends += b.WALAppends
	a.WALSyncs += b.WALSyncs
	return a
}

package router

import (
	"context"
	"fmt"
	"net"
	"time"
)

// Serve accepts front-side connections on ln until Shutdown closes it
// (or ln fails). It blocks; run it in a goroutine.
func (r *Router) Serve(ln net.Listener) error {
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		ln.Close()
		return fmt.Errorf("router: Serve after Shutdown")
	}
	r.listeners[ln] = struct{}{}
	r.mu.Unlock()

	defer func() {
		r.mu.Lock()
		delete(r.listeners, ln)
		r.mu.Unlock()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if r.isDraining() {
				return nil
			}
			return err
		}
		r.mu.Lock()
		if r.draining {
			r.mu.Unlock()
			conn.Close()
			continue
		}
		r.conns[conn] = struct{}{}
		r.wg.Add(1)
		r.mu.Unlock()
		r.metrics.Int("router.sessions").Add(1)
		r.metrics.Gauge("router.open_sessions").Inc()
		go func() {
			defer r.wg.Done()
			defer func() {
				r.mu.Lock()
				delete(r.conns, conn)
				r.mu.Unlock()
				conn.Close()
				r.metrics.Gauge("router.open_sessions").Dec()
			}()
			newSession(r, conn).run()
		}()
	}
}

// beginRequest claims a front-side admission slot; false means the
// router is at MaxInflight and the request must be rejected as
// overloaded.
func (r *Router) beginRequest() bool {
	select {
	case r.sem <- struct{}{}:
	default:
		r.metrics.Int("router.rejected").Add(1)
		return false
	}
	r.metrics.Gauge("router.inflight").Inc()
	return true
}

func (r *Router) endRequest() {
	<-r.sem
	r.metrics.Gauge("router.inflight").Dec()
}

// Shutdown drains the router: stop accepting connections and requests,
// give in-flight scatters up to DrainTimeout (bounded further by ctx)
// to finish, cancel the stragglers, close every connection and every
// backend pool, and stop the prober. Safe to call once; subsequent
// calls return nil immediately.
func (r *Router) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		return nil
	}
	r.draining = true
	for ln := range r.listeners {
		ln.Close()
	}
	r.mu.Unlock()

	// Grace window: in-flight scatters complete and release their
	// admission slots; poll rather than plumb an idle channel — drains
	// are rare and the granularity is fine.
	deadline := time.NewTimer(r.cfg.DrainTimeout)
	defer deadline.Stop()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
wait:
	for len(r.sem) > 0 {
		select {
		case <-tick.C:
		case <-deadline.C:
			break wait
		case <-ctx.Done():
			break wait
		}
	}

	// Cancel whatever is still running, then close every front-side
	// connection: idle sessions are blocked in ReadFrame and exit on the
	// close; busy ones finish their (now cancelled) request first.
	r.cancelBase(errDraining)
	r.mu.Lock()
	for conn := range r.conns {
		conn.Close()
	}
	r.mu.Unlock()
	r.wg.Wait()

	close(r.probeStop)
	r.probeWG.Wait()

	for _, b := range r.backends {
		for _, ep := range b.endpoints() {
			ep.closePool()
		}
	}
	return nil
}

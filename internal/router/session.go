package router

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"probe"
	"probe/client"
	"probe/internal/obs"
	"probe/internal/query"
	"probe/internal/relation"
	"probe/internal/wire"
)

// Cancellation causes on the front side, mirroring the server's:
// context.Cause distinguishes a client's CANCEL frame from the
// router's drain.
var errClientCancel = errors.New("router: cancelled by client")

// session is the router side of one front-side connection. It mirrors
// internal/server's session loop — a reader goroutine feeding frames,
// at most one request executing at a time in its own goroutine, CANCEL
// interrupting the in-flight request — so a wire client cannot tell it
// is talking to a cluster.
type session struct {
	r    *Router
	conn net.Conn

	// writeMu serializes response frames: the executor goroutine
	// streams batches while the session loop may emit protocol errors.
	writeMu sync.Mutex

	frames chan frameMsg
	minor  uint8

	// respDone flips true when the executor starts writing the
	// in-flight request's final frame. From that instant a conforming
	// client may already have the answer and send its next request
	// ahead of the executor's done signal — the session loop uses this
	// to wait out the bookkeeping gap instead of mis-reading the race
	// as a pipelining violation.
	respDone atomic.Bool
}

type frameMsg struct {
	typ     uint8
	payload []byte
}

func newSession(r *Router, conn net.Conn) *session {
	return &session{r: r, conn: conn, frames: make(chan frameMsg, 4)}
}

// send writes one response frame under the write mutex with the
// configured write deadline.
func (ss *session) send(typ uint8, payload []byte) error {
	ss.writeMu.Lock()
	defer ss.writeMu.Unlock()
	ss.conn.SetWriteDeadline(time.Now().Add(ss.r.cfg.WriteTimeout))
	return wire.WriteFrame(ss.conn, typ, payload)
}

func (ss *session) sendError(id uint32, code uint8, msg string) {
	ss.send(wire.MsgError, wire.ErrorMsg{ID: id, Code: code, Msg: msg}.Encode())
}

// peekID extracts the request id every request payload leads with.
func peekID(payload []byte) uint32 {
	if len(payload) < 4 {
		return 0
	}
	return binary.LittleEndian.Uint32(payload)
}

// run drives the session to completion; the caller closes the
// connection afterwards.
func (ss *session) run() {
	defer func() {
		ss.conn.Close()
		for range ss.frames {
			// Drain so the reader goroutine can exit.
		}
	}()

	go func() {
		defer close(ss.frames)
		for {
			typ, payload, err := wire.ReadFrame(ss.conn)
			if err != nil {
				return
			}
			ss.frames <- frameMsg{typ: typ, payload: payload}
		}
	}()

	if !ss.handshake() {
		return
	}

	var (
		reqDone   chan struct{}
		cancelReq context.CancelCauseFunc
		inflight  uint32
	)
	for {
		select {
		case f, ok := <-ss.frames:
			if !ok {
				if reqDone != nil {
					cancelReq(errClientCancel)
					<-reqDone
					cancelReq(context.Canceled)
				}
				return
			}
			switch f.typ {
			case wire.MsgCancel:
				c, err := wire.DecodeCancel(f.payload)
				if err != nil {
					ss.sendError(0, wire.CodeBadRequest, "malformed cancel")
					continue
				}
				if reqDone != nil && c.ID == inflight {
					ss.r.metrics.Int("router.cancelled").Add(1)
					cancelReq(errClientCancel)
				}
			case wire.MsgBegin, wire.MsgCommit, wire.MsgRollback:
				// Multi-statement transactions need a single snapshot and
				// write-set, which a scatter over independent shards does
				// not provide; reject loudly rather than fake it.
				ss.sendError(peekID(f.payload), wire.CodeBadRequest,
					"transactions are not supported through the router; connect to a shard directly")
			case wire.MsgRange, wire.MsgNearest, wire.MsgJoin, wire.MsgInsert,
				wire.MsgCheckpoint, wire.MsgExplain, wire.MsgStats,
				wire.MsgDelete, wire.MsgQuery:
				id := peekID(f.payload)
				if need := minorRequired(f.typ); need > 0 && ss.minor < need {
					ss.sendError(id, wire.CodeBadRequest,
						fmt.Sprintf("opcode 0x%02x requires protocol minor >= %d (client said %d)", f.typ, need, ss.minor))
					continue
				}
				if reqDone != nil && ss.respDone.Load() {
					// The previous request's final frame is already on the
					// wire — only executor bookkeeping separates us from its
					// done signal, and the client was entitled to send this
					// request the moment it read that frame. Wait the signal
					// out rather than mis-typing a conforming client as a
					// pipeliner.
					<-reqDone
					cancelReq(context.Canceled)
					reqDone, cancelReq = nil, nil
				}
				if reqDone != nil {
					ss.sendError(id, wire.CodeBadRequest,
						fmt.Sprintf("request %d is still in flight on this connection", inflight))
					continue
				}
				if ss.r.isDraining() {
					ss.sendError(id, wire.CodeShuttingDown, "router is shutting down")
					continue
				}
				if !ss.r.beginRequest() {
					ss.sendError(id, wire.CodeOverloaded,
						fmt.Sprintf("router at its in-flight limit (%d); retry later", ss.r.cfg.MaxInflight))
					continue
				}
				ctx, cancel := context.WithCancelCause(ss.r.baseCtx)
				done := make(chan struct{})
				ss.respDone.Store(false)
				reqDone, cancelReq, inflight = done, cancel, id
				typ, payload := f.typ, f.payload
				go func() {
					defer close(done)
					defer ss.r.endRequest()
					ss.execute(ctx, typ, payload)
				}()
			default:
				ss.sendError(0, wire.CodeBadRequest,
					fmt.Sprintf("unexpected frame type 0x%02x", f.typ))
			}
		case <-reqDone:
			cancelReq(context.Canceled)
			reqDone, cancelReq = nil, nil
		}
	}
}

// minorRequired mirrors the server's opcode gating.
func minorRequired(typ uint8) uint8 {
	switch typ {
	case wire.MsgDelete:
		return 2
	case wire.MsgQuery:
		return 3
	}
	return 0
}

// handshake answers the client's Hello with the cluster grid the
// router learned at Start.
func (ss *session) handshake() bool {
	f, ok := <-ss.frames
	if !ok {
		return false
	}
	if f.typ != wire.MsgHello {
		ss.sendError(0, wire.CodeBadRequest, "expected HELLO")
		return false
	}
	hello, err := wire.DecodeHello(f.payload)
	if err != nil {
		ss.sendError(0, wire.CodeBadRequest, err.Error())
		return false
	}
	if hello.Major != wire.VersionMajor {
		ss.sendError(0, wire.CodeVersion,
			fmt.Sprintf("protocol major version %d not supported (router speaks %d)", hello.Major, wire.VersionMajor))
		return false
	}
	ss.minor = hello.Minor
	g := ss.r.Grid()
	bits := make([]uint32, g.Dims())
	for i := range bits {
		bits[i] = uint32(g.BitsOf(i))
	}
	return ss.send(wire.MsgWelcome, wire.Welcome{
		Major: wire.VersionMajor, Minor: wire.VersionMinor, Bits: bits,
	}.Encode()) == nil
}

// request carries one request's identity and outcome through its
// executor goroutine. Traced requests additionally carry the
// distributed trace ID and the router-side request span the backend
// layer grafts shard subtrees under.
type request struct {
	id      uint32
	op      string
	start   time.Time
	errCode uint8

	flags uint8
	trace uint64
	span  *probe.Trace // non-nil iff traced
}

// traced reports whether the client set FlagTrace on this request.
func (rq *request) traced() bool { return rq.flags&wire.FlagTrace != 0 }

// setHeader records the decoded header's tracing tail. The router is
// the cluster's front door: a traced request arriving without a trace
// ID gets one minted here, and that single ID propagates to every
// backend call the request fans out to. For traced requests the
// router-side request span is created and planted in the returned
// context for the scatter-gather layer to graft under.
func (ss *session) setHeader(ctx context.Context, rq *request, h wire.Header) context.Context {
	rq.flags = h.Flags
	rq.trace = h.Trace
	if !rq.traced() {
		return ctx
	}
	if rq.trace == 0 {
		rq.trace = obs.NewTraceID()
	}
	rq.span = probe.NewTrace("router." + rq.op)
	return withTraceCtx(ctx, &traceCtx{id: rq.trace, span: rq.span})
}

func opName(typ uint8) string {
	switch typ {
	case wire.MsgRange:
		return "range"
	case wire.MsgNearest:
		return "nearest"
	case wire.MsgJoin:
		return "join"
	case wire.MsgInsert:
		return "insert"
	case wire.MsgCheckpoint:
		return "checkpoint"
	case wire.MsgExplain:
		return "explain"
	case wire.MsgStats:
		return "stats"
	case wire.MsgDelete:
		return "delete"
	case wire.MsgQuery:
		return "query"
	default:
		return "unknown"
	}
}

// execute runs one admitted request to completion, then records its
// telemetry: the latency histogram, the trace store entry for
// interesting requests (traced, slow, sampled), and the structured
// log line — every logged or stored request carries a trace ID, so
// router lines grep-correlate with the shard lines of the same
// request.
func (ss *session) execute(ctx context.Context, typ uint8, payload []byte) {
	ss.r.metrics.Int("router.requests").Add(1)
	rq := &request{id: peekID(payload), op: opName(typ), start: time.Now()}
	switch typ {
	case wire.MsgRange:
		ss.handleRange(ctx, rq, payload)
	case wire.MsgNearest:
		ss.handleNearest(ctx, rq, payload)
	case wire.MsgJoin:
		ss.handleJoin(ctx, rq, payload)
	case wire.MsgInsert:
		ss.handleInsert(ctx, rq, payload)
	case wire.MsgDelete:
		ss.handleDelete(ctx, rq, payload)
	case wire.MsgCheckpoint:
		ss.handleCheckpoint(ctx, rq, payload)
	case wire.MsgExplain:
		ss.handleExplain(ctx, rq, payload)
	case wire.MsgStats:
		ss.handleStats(ctx, rq, payload)
	case wire.MsgQuery:
		ss.handleQuery(ctx, rq, payload)
	}
	ss.finish(rq)
}

// finish records one completed request's telemetry.
func (ss *session) finish(rq *request) {
	rq.span.End()
	total := time.Since(rq.start)
	ss.r.metrics.Histogram("router.latency." + rq.op).Observe(int64(total))

	cfg := &ss.r.cfg
	status := "ok"
	if rq.errCode != 0 {
		status = wire.CodeString(rq.errCode)
	}
	seq := ss.r.reqSeq.Add(1)
	slow := cfg.SlowQuery < 0 || (cfg.SlowQuery > 0 && total >= cfg.SlowQuery)
	sampled := cfg.LogEvery > 0 && seq%uint64(cfg.LogEvery) == 0
	if rq.traced() || slow || sampled {
		if rq.trace == 0 {
			// Untraced but interesting (slow or sampled): mint an ID at
			// record time so the store entry and log line still carry a
			// grep-able trace ID.
			rq.trace = obs.NewTraceID()
		}
		kind := obs.TraceKindSampled
		switch {
		case slow:
			kind = obs.TraceKindSlow
		case rq.traced():
			kind = obs.TraceKindTraced
		}
		ss.r.traces.Add(obs.TraceRecord{
			TraceID: rq.trace, Op: rq.op, Start: rq.start, Dur: total,
			Status: status, Kind: kind, Root: rq.span,
		})
	}

	lg := cfg.Logger
	if lg == nil {
		return
	}
	args := []any{
		"op", rq.op,
		"id", rq.id,
		"remote", ss.conn.RemoteAddr().String(),
		"dur", total,
		"status", status,
	}
	if rq.trace != 0 {
		args = append(args, "trace_id", obs.TraceIDString(rq.trace))
	}
	if slow {
		lg.Warn("slow query", append(args, "trace", rq.span.Render(true))...)
		return
	}
	if sampled {
		lg.Info("request", args...)
	}
}

func withTimeout(ctx context.Context, ms uint32) (context.Context, context.CancelFunc) {
	if ms == 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
}

func (ss *session) reject(rq *request, msg string) {
	rq.errCode = wire.CodeBadRequest
	ss.respDone.Store(true)
	ss.sendError(rq.id, wire.CodeBadRequest, msg)
}

// codeOf maps an execution error to its typed wire code. A shard the
// request needed with no live node becomes the UNAVAILABLE code; a
// shard's own typed answer (bad request, conflict...) passes through
// with its original code.
func codeOf(ctx context.Context, err error) uint8 {
	var se *client.ServerError
	switch {
	case errors.Is(err, ErrShardUnavailable):
		return wire.CodeUnavailable
	case errors.As(err, &se):
		return se.Code
	case errors.Is(err, context.DeadlineExceeded):
		return wire.CodeDeadline
	case errors.Is(err, context.Canceled):
		if context.Cause(ctx) == errDraining {
			return wire.CodeShuttingDown
		}
		return wire.CodeCanceled
	}
	return wire.CodeInternal
}

func (ss *session) failReq(ctx context.Context, rq *request, err error) {
	rq.errCode = codeOf(ctx, err)
	ss.respDone.Store(true)
	ss.sendError(rq.id, rq.errCode, err.Error())
}

// sendDone ends a successful request. A traced data request first
// gets its grafted fan-out span tree — as a TRACE frame for a minor
// >= 4 client, the legacy rendered-TEXT form for older ones — then its
// DONE carries the router-side timing breakdown, mirroring the
// single-node server so a wire client cannot tell it is talking to a
// cluster.
func (ss *session) sendDone(rq *request, qs probe.QueryStats) {
	ss.respDone.Store(true)
	if rq.traced() && rq.op != "explain" && rq.op != "stats" {
		rq.span.End()
		if ss.minor >= 4 {
			tm := wire.TraceMsg{ID: rq.id, TraceID: rq.trace, Span: probe.EncodeTrace(rq.span)}
			if ss.send(wire.MsgTrace, tm.Encode()) != nil {
				return
			}
		} else if ss.send(wire.MsgText, wire.TextMsg{ID: rq.id, Text: rq.span.Render(true)}.Encode()) != nil {
			return
		}
	}
	dn := wire.Done{ID: rq.id, Stats: statsArray(qs)}
	if rq.traced() {
		// The router has no decode/plan phase worth separating; report
		// the whole residence time as exec (the grafted span tree holds
		// the real breakdown).
		total := uint64(time.Since(rq.start))
		t := make([]uint64, wire.NumTimings)
		t[wire.TimingExec] = total
		t[wire.TimingTotal] = total
		dn.Timings = t
	}
	ss.send(wire.MsgDone, dn.Encode())
}

// statsArray flattens QueryStats into the Done stats array, the same
// mapping the single-node server uses.
func statsArray(qs probe.QueryStats) []uint64 {
	a := make([]uint64, wire.NumStats)
	a[wire.StatDataPages] = uint64(qs.DataPages)
	a[wire.StatSeeks] = uint64(qs.Seeks)
	a[wire.StatElements] = uint64(qs.Elements)
	a[wire.StatResults] = uint64(qs.Results)
	a[wire.StatLeftItems] = uint64(qs.LeftItems)
	a[wire.StatRightItems] = uint64(qs.RightItems)
	a[wire.StatRawPairs] = uint64(qs.RawPairs)
	a[wire.StatDistinctPairs] = uint64(qs.DistinctPairs)
	a[wire.StatShards] = uint64(qs.Shards)
	a[wire.StatReplicatedItems] = uint64(qs.ReplicatedItems)
	a[wire.StatPoolGets] = qs.PoolGets
	a[wire.StatPoolHits] = qs.PoolHits
	a[wire.StatPoolMisses] = qs.PoolMisses
	a[wire.StatPhysReads] = qs.PhysReads
	a[wire.StatPhysWrites] = qs.PhysWrites
	a[wire.StatWALAppends] = qs.WALAppends
	a[wire.StatWALSyncs] = qs.WALSyncs
	return a
}

func (ss *session) handleRange(ctx context.Context, rq *request, payload []byte) {
	req, err := wire.DecodeRangeReq(payload)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	ctx = ss.setHeader(ctx, rq, req.Header)
	ctx, stop := withTimeout(ctx, req.TimeoutMS)
	defer stop()

	dims := uint32(ss.r.Grid().Dims())
	batch := make([]wire.Point, 0, ss.r.cfg.BatchSize)
	var writeErr error
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		writeErr = ss.send(wire.MsgBatch, wire.Batch{
			ID: req.ID, Kind: wire.KindPoints, Dims: dims, Points: batch,
		}.Encode())
		batch = batch[:0]
		return writeErr == nil
	}
	qs, err := ss.r.RangeFunc(ctx, req.Lo, req.Hi, req.Strategy, func(p probe.Point) bool {
		batch = append(batch, wire.Point{ID: p.ID, Coords: p.Coords})
		if len(batch) == cap(batch) {
			return flush()
		}
		return true
	})
	if writeErr != nil {
		return // connection is gone; nothing more to say
	}
	if err != nil {
		ss.failReq(ctx, rq, err)
		return
	}
	if !flush() {
		return
	}
	ss.sendDone(rq, qs)
}

func (ss *session) handleNearest(ctx context.Context, rq *request, payload []byte) {
	req, err := wire.DecodeNearestReq(payload)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	ctx = ss.setHeader(ctx, rq, req.Header)
	var metric probe.Metric
	switch req.Metric {
	case 0:
		metric = probe.Chebyshev
	case 1:
		metric = probe.Euclidean
	default:
		ss.reject(rq, fmt.Sprintf("unknown metric %d", req.Metric))
		return
	}
	ctx, stop := withTimeout(ctx, req.TimeoutMS)
	defer stop()
	nbs, qs, err := ss.r.Nearest(ctx, req.Q, int(req.M), metric)
	if err != nil {
		ss.failReq(ctx, rq, err)
		return
	}
	dims := uint32(ss.r.Grid().Dims())
	for off := 0; off < len(nbs); off += ss.r.cfg.BatchSize {
		end := min(off+ss.r.cfg.BatchSize, len(nbs))
		out := make([]wire.Neighbor, 0, end-off)
		for _, n := range nbs[off:end] {
			out = append(out, wire.Neighbor{
				Point: wire.Point{ID: n.Point.ID, Coords: n.Point.Coords},
				Dist:  n.Dist,
			})
		}
		if ss.send(wire.MsgBatch, wire.Batch{
			ID: req.ID, Kind: wire.KindNeighbors, Dims: dims, Neighbors: out,
		}.Encode()) != nil {
			return
		}
	}
	ss.sendDone(rq, qs)
}

func (ss *session) handleJoin(ctx context.Context, rq *request, payload []byte) {
	req, err := wire.DecodeJoinReq(payload)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	ctx = ss.setHeader(ctx, rq, req.Header)
	ctx, stop := withTimeout(ctx, req.TimeoutMS)
	defer stop()
	conv := func(items []wire.JoinItem) []client.BoxItem {
		out := make([]client.BoxItem, len(items))
		for i, it := range items {
			out[i] = client.BoxItem{ID: it.ID, Lo: it.Lo, Hi: it.Hi}
		}
		return out
	}
	pairs, qs, err := ss.r.Join(ctx, conv(req.A), conv(req.B), int(req.Workers))
	if err != nil {
		ss.failReq(ctx, rq, err)
		return
	}
	for off := 0; off < len(pairs); off += ss.r.cfg.BatchSize {
		end := min(off+ss.r.cfg.BatchSize, len(pairs))
		out := make([][2]uint64, 0, end-off)
		for _, p := range pairs[off:end] {
			out = append(out, [2]uint64{p.A, p.B})
		}
		if ss.send(wire.MsgBatch, wire.Batch{
			ID: req.ID, Kind: wire.KindPairs, Pairs: out,
		}.Encode()) != nil {
			return
		}
	}
	ss.sendDone(rq, qs)
}

func (ss *session) handleInsert(ctx context.Context, rq *request, payload []byte) {
	req, err := wire.DecodeInsertReq(payload)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	ctx = ss.setHeader(ctx, rq, req.Header)
	if int(req.Dims) != ss.r.Grid().Dims() {
		ss.reject(rq, fmt.Sprintf("points have %d dimensions, cluster has %d", req.Dims, ss.r.Grid().Dims()))
		return
	}
	pts := make([]probe.Point, len(req.Points))
	for i, p := range req.Points {
		pts[i] = probe.Point{ID: p.ID, Coords: p.Coords}
	}
	qs, err := ss.r.Insert(ctx, pts)
	if err != nil {
		ss.failReq(ctx, rq, err)
		return
	}
	qs.Results = len(pts)
	ss.sendDone(rq, qs)
}

func (ss *session) handleDelete(ctx context.Context, rq *request, payload []byte) {
	req, err := wire.DecodeDeleteReq(payload)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	ctx = ss.setHeader(ctx, rq, req.Header)
	if int(req.Dims) != ss.r.Grid().Dims() {
		ss.reject(rq, fmt.Sprintf("points have %d dimensions, cluster has %d", req.Dims, ss.r.Grid().Dims()))
		return
	}
	pts := make([]probe.Point, len(req.Points))
	for i, p := range req.Points {
		pts[i] = probe.Point{ID: p.ID, Coords: p.Coords}
	}
	qs, err := ss.r.Delete(ctx, pts)
	if err != nil {
		ss.failReq(ctx, rq, err)
		return
	}
	ss.sendDone(rq, qs)
}

func (ss *session) handleCheckpoint(ctx context.Context, rq *request, payload []byte) {
	req, err := wire.DecodeSimpleReq(payload)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	ctx = ss.setHeader(ctx, rq, req.Header)
	qs, err := ss.r.Checkpoint(ctx)
	if err != nil {
		ss.failReq(ctx, rq, err)
		return
	}
	ss.sendDone(rq, qs)
}

func (ss *session) handleExplain(ctx context.Context, rq *request, payload []byte) {
	req, err := wire.DecodeRangeReq(payload)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	ctx = ss.setHeader(ctx, rq, req.Header)
	text, err := ss.r.Explain(ctx, req.Lo, req.Hi)
	if err != nil {
		ss.failReq(ctx, rq, err)
		return
	}
	if ss.send(wire.MsgText, wire.TextMsg{ID: req.ID, Text: text}.Encode()) != nil {
		return
	}
	ss.sendDone(rq, probe.QueryStats{})
}

// handleStats snapshots the router's registry: fan-out histograms,
// shard/replica health gauges, request counters — "router." prefixed,
// sorted by name like the single-node server's STATS.
func (ss *session) handleStats(ctx context.Context, rq *request, payload []byte) {
	req, err := wire.DecodeSimpleReq(payload)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	ctx = ss.setHeader(ctx, rq, req.Header)
	_ = ctx
	if ss.minor >= 1 {
		m := ss.r.StatsMap()
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		kvs := make([]wire.KV, 0, len(names))
		for _, name := range names {
			kvs = append(kvs, wire.KV{Name: name, Value: m[name]})
		}
		if ss.send(wire.MsgStatsKV, wire.StatsKV{ID: req.ID, KVs: kvs}.Encode()) != nil {
			return
		}
	} else {
		if ss.send(wire.MsgText, wire.TextMsg{ID: req.ID, Text: ss.r.metrics.String()}.Encode()) != nil {
			return
		}
	}
	ss.sendDone(rq, probe.QueryStats{})
}

// handleQuery parses and compiles the statement router-side, then runs
// the plan over the cluster engine: base rows arrive through the
// z-merged scatter in single-node order, so every plan shape —
// streaming scans, aggregates, DISTINCT, GROUP BY, ORDER, LIMIT —
// produces exactly the rows a single node would.
func (ss *session) handleQuery(ctx context.Context, rq *request, payload []byte) {
	req, err := wire.DecodeQueryReq(payload)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	ctx = ss.setHeader(ctx, rq, req.Header)
	ctx, stop := withTimeout(ctx, req.TimeoutMS)
	defer stop()

	stmt, err := query.Parse(req.Text)
	if err != nil {
		rq.errCode = wire.CodeParse
		ss.respDone.Store(true)
		ss.sendError(rq.id, wire.CodeParse, err.Error())
		return
	}
	plan, err := query.Compile(ss.r.Grid(), stmt.Select)
	if err != nil {
		code := uint8(wire.CodePlan)
		var qe *query.Error
		if errors.As(err, &qe) && qe.Kind == query.KindParse {
			code = wire.CodeParse
		}
		rq.errCode = code
		ss.respDone.Store(true)
		ss.sendError(rq.id, code, err.Error())
		return
	}
	eng := &clusterEngine{r: ss.r}

	if stmt.Explain {
		text := plan.ExplainText(eng)
		if ss.send(wire.MsgText, wire.TextMsg{ID: req.ID, Text: text}.Encode()) != nil {
			return
		}
		ss.sendDone(rq, probe.QueryStats{})
		return
	}

	cols := plan.Columns()
	wcols := make([]wire.SchemaCol, len(cols))
	types := make([]uint8, len(cols))
	for i, c := range cols {
		wcols[i] = wire.SchemaCol{Name: c.Name, Type: uint8(c.Type)}
		types[i] = uint8(c.Type)
	}
	if ss.send(wire.MsgSchema, wire.SchemaMsg{ID: req.ID, Cols: wcols}.Encode()) != nil {
		return
	}
	var writeErr, encodeErr error
	batch := make([][]wire.RowValue, 0, ss.r.cfg.BatchSize)
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		p, err := wire.RowsMsg{ID: req.ID, Types: types, Rows: batch}.Encode()
		if err != nil {
			encodeErr = err
			return false
		}
		if err := ss.send(wire.MsgRows, p); err != nil {
			writeErr = err
			return false
		}
		batch = batch[:0]
		return true
	}
	err = plan.Run(ctx, eng, func(row relation.Tuple) bool {
		vals := make([]wire.RowValue, len(row))
		for i, v := range row {
			vals[i] = wire.RowValue(v)
		}
		batch = append(batch, vals)
		if len(batch) == cap(batch) {
			return flush()
		}
		return true
	})
	switch {
	case encodeErr != nil:
		ss.failReq(ctx, rq, encodeErr)
		return
	case writeErr != nil:
		return
	case err != nil:
		ss.failReq(ctx, rq, err)
		return
	}
	if !flush() {
		return
	}
	ss.sendDone(rq, eng.stats)
}

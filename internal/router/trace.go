package router

// Distributed tracing on the scatter-gather path. The session mints
// (or adopts) a trace ID for each traced front-side request and plants
// a traceCtx in the request's context; the backend layer picks it up
// at the call boundary, propagates FlagTrace plus the trace ID to the
// shard over the wire, and grafts each shard's returned span tree
// under a fanout.shard<N>.<kind> node — so one rendered tree shows the
// router's own overhead (merge), every backend call's wall time with
// primary/replica attribution, the shard-reported phase breakdown, and
// the shard's full server-side span tree, exec and page counters
// intact.

import (
	"context"
	"fmt"
	"time"

	"probe"
	"probe/client"
)

// traceCtx is one traced request's tracing state, carried through the
// scatter-gather layer by context so Router method signatures stay
// untouched. Untraced requests carry none; their only cost is a nil
// context-value lookup per backend call.
type traceCtx struct {
	id   uint64
	span *probe.Trace // the router-side request span grafts attach to
}

type traceCtxKey struct{}

func withTraceCtx(ctx context.Context, tc *traceCtx) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

func traceFrom(ctx context.Context) *traceCtx {
	tc, _ := ctx.Value(traceCtxKey{}).(*traceCtx)
	return tc
}

// graft attaches one backend call's subtree to the request span:
// a sealed fanout.shard<N>.<primary|replica> node whose duration is
// the call's wall time as the router saw it, with the shard-reported
// phase breakdown (queue/plan/exec/stream) and the shard's own span
// tree as children. Attach serializes internally, so concurrent
// scatter goroutines graft safely.
func (tc *traceCtx) graft(shard int, replica bool, callDur time.Duration, c *client.Conn) {
	kind := "primary"
	if replica {
		kind = "replica"
	}
	node := probe.NewSealedTrace(fmt.Sprintf("fanout.shard%d.%s", shard, kind), callDur)
	t := c.LastTiming()
	for _, ph := range []struct {
		name string
		d    time.Duration
	}{
		{"server.queue", t.Queue},
		{"server.plan", t.Plan},
		{"server.exec", t.Exec},
		{"server.stream", t.Stream},
	} {
		if ph.d > 0 {
			node.Attach(probe.NewSealedTrace(ph.name, ph.d))
		}
	}
	if sub := c.LastTraceTree(); sub != nil {
		node.Attach(sub)
	}
	tc.span.Attach(node)
}

package router

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"probe"
	"probe/internal/obs"
	"probe/internal/server"
)

// syncBuf is an io.Writer safe for the concurrent slog handlers of
// several nodes.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (w *syncBuf) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncBuf) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestDistributedTrace is the tentpole acceptance test: one traced
// range query through a three-shard cluster must come back with ONE
// span tree — the router's request span with every intersecting
// shard's server-side subtree grafted under its fanout span plus the
// router's own merge overhead — and the same trace ID must appear in
// the router's and the shards' structured logs and in the router's
// /debug/traces store.
func TestDistributedTrace(t *testing.T) {
	g := clusterGrid()
	var shardLog, routerLog syncBuf
	addrs := make([]string, 3)
	for i := range addrs {
		db, err := probe.Open(g)
		if err != nil {
			t.Fatal(err)
		}
		_, addrs[i] = startShard(t, db, server.Config{
			BatchSize: 32,
			Logger:    slog.New(slog.NewTextHandler(&shardLog, nil)),
			LogEvery:  1,
		})
	}
	m, err := BuildEvenMap(DefaultPrefixBits(3), addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, raddr := startRouter(t, m, Config{
		BatchSize: 32,
		Logger:    slog.New(slog.NewTextHandler(&routerLog, nil)),
	})
	cl := dialRouter(t, raddr)
	insertThrough(t, cl, clusterPoints(rand.New(rand.NewSource(42)), 3000, 1))

	ctx := context.Background()
	cl.SetTrace(true)
	pts, _, err := cl.Range(ctx, []uint32{0, 0}, []uint32{1023, 1023})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3000 {
		t.Fatalf("full-grid range through router: %d points, want 3000", len(pts))
	}

	// One tree, assembled at the router: its own request span on top,
	// every shard's fanout span with the server-side subtree grafted
	// under it, and the merge overhead as a sibling.
	id := cl.LastTraceID()
	if id == 0 {
		t.Fatal("traced request came back without a trace ID")
	}
	root := cl.LastTraceTree()
	if root == nil {
		t.Fatal("traced request came back without a span tree")
	}
	if root.Name() != "router.range" {
		t.Fatalf("tree root = %q, want router.range", root.Name())
	}
	rendered := cl.LastTrace()
	for _, want := range []string{
		"fanout.shard0.primary", "fanout.shard1.primary", "fanout.shard2.primary",
		"merge",
		"server.exec",  // shard-reported phase breakdown
		"range-search", // the shard's own server-side span tree, counters intact
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, rendered)
		}
	}
	if tm := cl.LastTiming(); tm.Total == 0 {
		t.Error("traced DONE through the router carried no timing tail")
	}

	// The same trace ID on every node's structured log: grep-correlate
	// the router line with the three shard lines.
	idStr := obs.TraceIDString(id)
	if got := strings.Count(routerLog.String(), "trace_id="+idStr); got != 1 {
		t.Errorf("router log has %d lines with trace_id=%s, want 1:\n%s", got, idStr, routerLog.String())
	}
	if got := strings.Count(shardLog.String(), "trace_id="+idStr); got != 3 {
		t.Errorf("shard logs have %d lines with trace_id=%s, want 3:\n%s", got, idStr, shardLog.String())
	}

	// The router's /debug/traces store serves the request: JSON with
	// the trace ID and kind, text form with the rendered tree.
	mux := r.AdminHandler()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var doc struct {
		Total  int `json:"total"`
		Traces []struct {
			TraceID string `json:"trace_id"`
			Op      string `json:"op"`
			Kind    string `json:"kind"`
			Trace   string `json:"trace"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/debug/traces JSON: %v\n%s", err, rec.Body.String())
	}
	if doc.Total == 0 {
		t.Fatal("/debug/traces empty after a traced request")
	}
	found := false
	for _, tr := range doc.Traces {
		if tr.TraceID == idStr {
			found = true
			if tr.Op != "range" || tr.Kind != "traced" {
				t.Errorf("stored trace %s: op=%q kind=%q, want range/traced", idStr, tr.Op, tr.Kind)
			}
			if !strings.Contains(tr.Trace, "fanout.shard0") {
				t.Errorf("stored trace %s lacks the grafted fan-out tree:\n%s", idStr, tr.Trace)
			}
		}
	}
	if !found {
		t.Fatalf("trace %s not in /debug/traces:\n%s", idStr, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?format=text", nil))
	if !strings.Contains(rec.Body.String(), "trace_id="+idStr) {
		t.Errorf("/debug/traces?format=text missing trace_id=%s:\n%s", idStr, rec.Body.String())
	}

	// An untraced request must not leak trace state from the pooled
	// conns the traced one used.
	cl.SetTrace(false)
	if _, _, err := cl.Range(ctx, []uint32{0, 0}, []uint32{1023, 1023}); err != nil {
		t.Fatal(err)
	}
	if cl.LastTraceID() != 0 || cl.LastTraceTree() != nil {
		t.Error("untraced request carried trace state")
	}
}

// TestDistributedTraceAdoptsClientID proves propagation end to end
// with a caller-supplied trace ID: the front door adopts it instead
// of minting, and the same ID reaches the shard logs.
func TestDistributedTraceAdoptsClientID(t *testing.T) {
	g := clusterGrid()
	var shardLog syncBuf
	addrs := make([]string, 2)
	for i := range addrs {
		db, err := probe.Open(g)
		if err != nil {
			t.Fatal(err)
		}
		_, addrs[i] = startShard(t, db, server.Config{
			Logger:   slog.New(slog.NewTextHandler(&shardLog, nil)),
			LogEvery: 1,
		})
	}
	m, err := BuildEvenMap(DefaultPrefixBits(2), addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, raddr := startRouter(t, m, Config{})
	cl := dialRouter(t, raddr)
	insertThrough(t, cl, clusterPoints(rand.New(rand.NewSource(7)), 500, 1))

	const want = uint64(0xdeadbeefcafef00d)
	cl.SetTrace(true)
	cl.SetTraceID(want)
	if _, _, err := cl.Range(context.Background(), []uint32{0, 0}, []uint32{1023, 1023}); err != nil {
		t.Fatal(err)
	}
	if got := cl.LastTraceID(); got != want {
		t.Fatalf("router answered trace ID %016x, want the adopted %016x", got, want)
	}
	if !strings.Contains(shardLog.String(), "trace_id="+obs.TraceIDString(want)) {
		t.Errorf("adopted trace ID %016x never reached a shard log:\n%s", want, shardLog.String())
	}
}

// Package rtree implements Guttman's R-tree (SIGMOD 1984) with
// quadratic splitting — the era's other dynamic spatial index and the
// structure that later systems standardized on. The paper's approach
// deliberately avoids purpose-built spatial structures ("existing
// DBMS facilities provide what is needed"); this package exists as a
// baseline so Table S8 can put the zkd B+-tree next to both the kd
// tree and an R-tree on identical workloads.
//
// The tree stores k-dimensional points; leaves hold up to M entries
// and model disk pages, so leaf accesses compare directly with zkd
// B+-tree data-page accesses.
package rtree

import (
	"fmt"

	"probe/internal/geom"
)

// Tree is an R-tree over points.
type Tree struct {
	k      int
	maxE   int // M: max entries per node
	minE   int // m: min entries per non-root node
	root   *node
	size   int
	leaves int
}

// rect is an axis-parallel rectangle with inclusive integer bounds.
type rect struct {
	lo, hi []uint32
}

func pointRect(p []uint32) rect {
	return rect{lo: append([]uint32(nil), p...), hi: append([]uint32(nil), p...)}
}

func (r rect) clone() rect {
	return rect{lo: append([]uint32(nil), r.lo...), hi: append([]uint32(nil), r.hi...)}
}

func (r *rect) expand(o rect) {
	for i := range r.lo {
		if o.lo[i] < r.lo[i] {
			r.lo[i] = o.lo[i]
		}
		if o.hi[i] > r.hi[i] {
			r.hi[i] = o.hi[i]
		}
	}
}

// area returns the rectangle's volume in pixels (float to avoid
// overflow in enlargement arithmetic).
func (r rect) area() float64 {
	a := 1.0
	for i := range r.lo {
		a *= float64(r.hi[i]) - float64(r.lo[i]) + 1
	}
	return a
}

// enlargedArea returns the area of r grown to include o.
func (r rect) enlargedArea(o rect) float64 {
	a := 1.0
	for i := range r.lo {
		lo, hi := r.lo[i], r.hi[i]
		if o.lo[i] < lo {
			lo = o.lo[i]
		}
		if o.hi[i] > hi {
			hi = o.hi[i]
		}
		a *= float64(hi) - float64(lo) + 1
	}
	return a
}

func (r rect) intersectsBox(b geom.Box) bool {
	for i := range r.lo {
		if r.hi[i] < b.Lo[i] || r.lo[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

func (r rect) containsRect(o rect) bool {
	for i := range r.lo {
		if o.lo[i] < r.lo[i] || o.hi[i] > r.hi[i] {
			return false
		}
	}
	return true
}

// entry is a node slot: a bounding rectangle plus either a child node
// (internal) or a point (leaf).
type entry struct {
	mbr   rect
	child *node
	point geom.Point
}

type node struct {
	leaf    bool
	entries []entry
	parent  *node
}

// New creates an empty R-tree for k-dimensional points with the given
// node capacity M (>= 4; minimum occupancy is M/2).
func New(k, maxEntries int) (*Tree, error) {
	if k < 1 {
		return nil, fmt.Errorf("rtree: dimensionality %d < 1", k)
	}
	if maxEntries < 4 {
		return nil, fmt.Errorf("rtree: node capacity %d < 4", maxEntries)
	}
	return &Tree{
		k:      k,
		maxE:   maxEntries,
		minE:   maxEntries / 2,
		root:   &node{leaf: true},
		leaves: 1,
	}, nil
}

// Len returns the number of stored points.
func (t *Tree) Len() int { return t.size }

// Leaves returns the number of leaf nodes (data pages).
func (t *Tree) Leaves() int { return t.leaves }

// Insert adds a point.
func (t *Tree) Insert(p geom.Point) error {
	if len(p.Coords) != t.k {
		return fmt.Errorf("rtree: point %v has %d dims, want %d", p, len(p.Coords), t.k)
	}
	r := pointRect(p.Coords)
	leaf := t.chooseLeaf(t.root, r)
	leaf.entries = append(leaf.entries, entry{mbr: r, point: p})
	t.size++
	if len(leaf.entries) > t.maxE {
		t.splitNode(leaf)
	} else {
		t.adjustMBRs(leaf)
	}
	return nil
}

// chooseLeaf descends to the leaf whose MBR needs the least
// enlargement (ties: smallest area).
func (t *Tree) chooseLeaf(n *node, r rect) *node {
	for !n.leaf {
		best := -1
		bestEnl, bestArea := 0.0, 0.0
		for i := range n.entries {
			e := &n.entries[i]
			area := e.mbr.area()
			enl := e.mbr.enlargedArea(r) - area
			if best < 0 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		n = n.entries[best].child
	}
	return n
}

// adjustMBRs recomputes bounding rectangles from n up to the root.
func (t *Tree) adjustMBRs(n *node) {
	for p := n.parent; p != nil; p = p.parent {
		for i := range p.entries {
			if p.entries[i].child == n {
				p.entries[i].mbr = nodeMBR(n)
				break
			}
		}
		n = p
	}
}

func nodeMBR(n *node) rect {
	r := n.entries[0].mbr.clone()
	for _, e := range n.entries[1:] {
		r.expand(e.mbr)
	}
	return r
}

// splitNode splits an overfull node with Guttman's quadratic method
// and propagates upward.
func (t *Tree) splitNode(n *node) {
	entries := n.entries
	// PickSeeds: the pair wasting the most area together.
	s1, s2 := 0, 1
	worst := -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].mbr.enlargedArea(entries[j].mbr) -
				entries[i].mbr.area() - entries[j].mbr.area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	groupA := []entry{entries[s1]}
	groupB := []entry{entries[s2]}
	mbrA := entries[s1].mbr.clone()
	mbrB := entries[s2].mbr.clone()
	rest := make([]entry, 0, len(entries)-2)
	for i := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, entries[i])
		}
	}
	// PickNext: assign the entry with the greatest preference.
	for len(rest) > 0 {
		// Force-assign when a group must take everything to reach m.
		if len(groupA)+len(rest) == t.minE {
			for _, e := range rest {
				groupA = append(groupA, e)
				mbrA.expand(e.mbr)
			}
			break
		}
		if len(groupB)+len(rest) == t.minE {
			for _, e := range rest {
				groupB = append(groupB, e)
				mbrB.expand(e.mbr)
			}
			break
		}
		bestIdx, bestDiff := -1, -1.0
		var bestToA bool
		for i, e := range rest {
			dA := mbrA.enlargedArea(e.mbr) - mbrA.area()
			dB := mbrB.enlargedArea(e.mbr) - mbrB.area()
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff = diff
				bestIdx = i
				bestToA = dA < dB || (dA == dB && mbrA.area() < mbrB.area())
			}
		}
		e := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		if bestToA {
			groupA = append(groupA, e)
			mbrA.expand(e.mbr)
		} else {
			groupB = append(groupB, e)
			mbrB.expand(e.mbr)
		}
	}

	sibling := &node{leaf: n.leaf, entries: groupB, parent: n.parent}
	n.entries = groupA
	if n.leaf {
		t.leaves++
	}
	for i := range sibling.entries {
		if sibling.entries[i].child != nil {
			sibling.entries[i].child.parent = sibling
		}
	}

	if n.parent == nil {
		// Grow a new root.
		newRoot := &node{leaf: false}
		newRoot.entries = []entry{
			{mbr: nodeMBR(n), child: n},
			{mbr: nodeMBR(sibling), child: sibling},
		}
		n.parent = newRoot
		sibling.parent = newRoot
		t.root = newRoot
		return
	}
	parent := n.parent
	for i := range parent.entries {
		if parent.entries[i].child == n {
			parent.entries[i].mbr = nodeMBR(n)
			break
		}
	}
	parent.entries = append(parent.entries, entry{mbr: nodeMBR(sibling), child: sibling})
	if len(parent.entries) > t.maxE {
		t.splitNode(parent)
	} else {
		t.adjustMBRs(parent)
	}
}

// RangeSearch returns all points inside the box, plus the node and
// leaf access counts.
func (t *Tree) RangeSearch(box geom.Box) (results []geom.Point, nodes, leafAccesses int) {
	var walk func(n *node)
	walk = func(n *node) {
		nodes++
		if n.leaf {
			leafAccesses++
			for _, e := range n.entries {
				if box.ContainsPoint(e.point.Coords) {
					results = append(results, e.point)
				}
			}
			return
		}
		for _, e := range n.entries {
			if e.mbr.intersectsBox(box) {
				walk(e.child)
			}
		}
	}
	walk(t.root)
	return results, nodes, leafAccesses
}

// CheckInvariants verifies the R-tree structure: entry counts within
// [m, M] (root exempt), every child MBR tight and contained in its
// parent slot, parent pointers consistent, and the size/leaf counters
// correct.
func (t *Tree) CheckInvariants() error {
	points, leaves := 0, 0
	var walk func(n *node, depth int) (int, error)
	walk = func(n *node, depth int) (int, error) {
		if n != t.root && (len(n.entries) < t.minE || len(n.entries) > t.maxE) {
			return 0, fmt.Errorf("node occupancy %d outside [%d,%d]", len(n.entries), t.minE, t.maxE)
		}
		if n.leaf {
			leaves++
			points += len(n.entries)
			for _, e := range n.entries {
				if !e.mbr.containsRect(pointRect(e.point.Coords)) {
					return 0, fmt.Errorf("leaf entry MBR does not cover its point")
				}
			}
			return depth, nil
		}
		if len(n.entries) == 0 {
			return 0, fmt.Errorf("empty internal node")
		}
		leafDepth := -1
		for _, e := range n.entries {
			if e.child == nil {
				return 0, fmt.Errorf("internal entry without child")
			}
			if e.child.parent != n {
				return 0, fmt.Errorf("parent pointer broken")
			}
			want := nodeMBR(e.child)
			if !e.mbr.containsRect(want) || !want.containsRect(e.mbr) {
				return 0, fmt.Errorf("slot MBR not tight")
			}
			d, err := walk(e.child, depth+1)
			if err != nil {
				return 0, err
			}
			if leafDepth < 0 {
				leafDepth = d
			} else if leafDepth != d {
				return 0, fmt.Errorf("leaves at different depths")
			}
		}
		return leafDepth, nil
	}
	if _, err := walk(t.root, 1); err != nil {
		return err
	}
	if points != t.size {
		return fmt.Errorf("tree holds %d points, counter says %d", points, t.size)
	}
	if leaves != t.leaves {
		return fmt.Errorf("tree has %d leaves, counter says %d", leaves, t.leaves)
	}
	return nil
}

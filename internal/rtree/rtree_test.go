package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"probe/internal/geom"
	"probe/internal/workload"
	"probe/internal/zorder"
)

func ids(pts []geom.Point) []uint64 {
	out := make([]uint64, len(pts))
	for i, p := range pts {
		out[i] = p.ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equal(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 8); err == nil {
		t.Errorf("zero dims accepted")
	}
	if _, err := New(2, 3); err == nil {
		t.Errorf("capacity 3 accepted")
	}
	tr, err := New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Leaves() != 1 {
		t.Errorf("fresh tree state wrong")
	}
	if err := tr.Insert(geom.Point{ID: 1, Coords: []uint32{1}}); err == nil {
		t.Errorf("wrong-arity point accepted")
	}
}

func TestInsertAndSearchSmall(t *testing.T) {
	tr, _ := New(2, 4)
	pts := []geom.Point{
		geom.Pt2(1, 5, 5), geom.Pt2(2, 50, 50), geom.Pt2(3, 10, 60),
		geom.Pt2(4, 60, 10), geom.Pt2(5, 30, 30), geom.Pt2(6, 31, 29),
		geom.Pt2(7, 30, 30), // duplicate coordinates allowed
	}
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after insert %d: %v", p.ID, err)
		}
	}
	got, nodes, leaves := tr.RangeSearch(geom.Box2(0, 35, 0, 35))
	if !equal(ids(got), []uint64{1, 5, 6, 7}) {
		t.Fatalf("search = %v", ids(got))
	}
	if nodes < 1 || leaves < 1 || leaves > tr.Leaves() {
		t.Errorf("access counts wrong: %d nodes, %d leaves", nodes, leaves)
	}
}

func TestRandomizedAgainstBruteForce(t *testing.T) {
	g := zorder.MustGrid(2, 8)
	datasets := map[string][]geom.Point{
		"uniform":   workload.Uniform(g, 1500, 131),
		"clustered": workload.Clustered(g, 12, 120, 4, 132),
		"diagonal":  workload.Diagonal(g, 1500, 2, 133),
	}
	rng := rand.New(rand.NewSource(134))
	for name, pts := range datasets {
		tr, _ := New(2, 20)
		for _, p := range pts {
			if err := tr.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		if tr.Len() != len(pts) {
			t.Fatalf("%s: Len = %d", name, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for trial := 0; trial < 40; trial++ {
			x1, x2 := uint32(rng.Intn(256)), uint32(rng.Intn(256))
			y1, y2 := uint32(rng.Intn(256)), uint32(rng.Intn(256))
			if x1 > x2 {
				x1, x2 = x2, x1
			}
			if y1 > y2 {
				y1, y2 = y2, y1
			}
			box := geom.Box2(x1, x2, y1, y2)
			got, _, _ := tr.RangeSearch(box)
			var want []uint64
			for _, p := range pts {
				if box.ContainsPoint(p.Coords) {
					want = append(want, p.ID)
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if !equal(ids(got), want) {
				t.Fatalf("%s: box %v: %d results, want %d", name, box, len(got), len(want))
			}
		}
	}
}

func Test3D(t *testing.T) {
	g := zorder.MustGrid(3, 5)
	pts := workload.Uniform(g, 600, 135)
	tr, _ := New(3, 10)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	box := geom.MustBox([]uint32{4, 4, 4}, []uint32{20, 20, 20})
	got, _, _ := tr.RangeSearch(box)
	var want []uint64
	for _, p := range pts {
		if box.ContainsPoint(p.Coords) {
			want = append(want, p.ID)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if !equal(ids(got), want) {
		t.Fatalf("3d search wrong")
	}
}

func TestOccupancyBounds(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	tr, _ := New(2, 20)
	pts := workload.Uniform(g, 5000, 136)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Quadratic-split R-trees keep leaves between m and M: 250-500
	// leaves for 5000 points at M=20.
	if tr.Leaves() < 250 || tr.Leaves() > 510 {
		t.Errorf("leaves = %d, outside [250,510]", tr.Leaves())
	}
}

func TestLeafAccessesScaleWithVolume(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	tr, _ := New(2, 20)
	for _, p := range workload.Uniform(g, 5000, 137) {
		tr.Insert(p)
	}
	avg := func(vol float64) float64 {
		boxes, err := workload.Queries(g, workload.QuerySpec{Volume: vol, Aspect: 1}, 20, 138)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, b := range boxes {
			_, _, leaves := tr.RangeSearch(b)
			total += leaves
		}
		return float64(total) / float64(len(boxes))
	}
	if small, large := avg(0.01), avg(0.16); large <= small {
		t.Errorf("leaf accesses should grow with volume: %.1f vs %.1f", small, large)
	}
}

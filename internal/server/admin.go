package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
)

// AdminHandler returns the HTTP handler for the server's admin
// endpoint — the observability side-channel probed serves on a
// separate listener (-admin) so operational traffic never competes
// with query traffic:
//
//	/metrics          Prometheus text exposition of every server,
//	                  database, and transaction (probe_tx_*) metric
//	                  plus scrape-time pool and MVCC gauges (retained
//	                  versions/pages, pinned snapshots)
//	/debug/vars       expvar-style JSON snapshot of both registries
//	/debug/traces     the trace store: the last Config.TraceBuffer
//	                  interesting requests (traced, slow, sampled) as
//	                  JSON, or as indented text with ?format=text
//	/debug/pprof/     the standard Go profiling handlers
//	/healthz          liveness: 200 while the process runs
//	/readyz           readiness: 200 while accepting requests,
//	                  503 once Shutdown starts draining
//
// The handler stays valid during and after Shutdown (readiness is how
// a load balancer sees the drain), so the admin HTTP server should be
// closed after Shutdown returns, not before.
//
// pprof handlers are registered on the returned mux explicitly —
// importing net/http/pprof for its DefaultServeMux side effect would
// leak profiling onto any default-mux server the embedding process
// runs.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/debug/vars", s.serveVars)
	mux.HandleFunc("/debug/traces", s.serveTraces)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", s.serveReady)
	return mux
}

func (s *Server) serveReady(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if err := s.readyErr(); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// serveMetrics renders both registries in the Prometheus text format:
// the server's under probe_server_*, the database's under probe_db_*,
// plus point-in-time gauges (buffer-pool occupancy, goroutines) that
// are cheaper to read at scrape time than to maintain continuously.
func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := s.metrics.WritePrometheus(&buf, "probe_server"); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := s.database().Metrics().WritePrometheus(&buf, "probe_db"); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := s.database().TxMetrics().WritePrometheus(&buf, "probe_tx"); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	pi := s.database().PoolInfo()
	mv := s.database().MVCCStats()
	for _, g := range []struct {
		name string
		v    int
	}{
		{"probe_pool_pages_capacity", pi.Capacity},
		{"probe_pool_pages_resident", pi.Resident},
		{"probe_pool_pages_pinned", pi.Pinned},
		{"probe_mvcc_version_seq", int(mv.Seq)},
		{"probe_mvcc_pinned_snapshots", mv.PinnedSnapshots},
		{"probe_mvcc_retained_versions", mv.RetainedVersions},
		{"probe_mvcc_retained_pages", mv.RetainedPages},
		{"probe_mvcc_freed_pages", int(mv.FreedPages)},
		{"probe_go_goroutines", runtime.NumGoroutine()},
	} {
		fmt.Fprintf(&buf, "# TYPE %s gauge\n%s %d\n", g.name, g.name, g.v)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

// serveTraces dumps the trace store, newest first: JSON by default,
// the rendered-text form with ?format=text.
func (s *Server) serveTraces(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.traces.WriteText(w)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	s.traces.WriteJSON(w)
}

// serveVars is the expvar-shaped JSON view: one object with the
// server's and the database's registries nested under "server" and
// "db". Registries render themselves, so this does not import expvar
// or register anything globally.
func (s *Server) serveVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\"server\": %s, \"db\": %s, \"tx\": %s}\n",
		s.metrics.String(), s.database().Metrics().String(), s.database().TxMetrics().String())
}

package server

import (
	"context"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"probe/internal/wire"
)

// TestAdminEndpoint drives real traffic through the server and then
// scrapes the admin handler: /metrics must expose a counter, a gauge,
// and a latency histogram with observations in parseable Prometheus
// text; /healthz stays 200; /readyz flips to 503 the moment a drain
// starts and stays there.
func TestAdminEndpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	srv, addr, _ := startServer(t, Config{DrainTimeout: 5 * time.Second}, randPoints(rng, 2000, 0))
	cl := dial(t, addr)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, _, err := cl.Range(ctx, []uint32{0, 0}, []uint32{500, 500}); err != nil {
			t.Fatalf("range %d: %v", i, err)
		}
	}

	admin := httptest.NewServer(srv.AdminHandler())
	defer admin.Close()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(admin.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE probe_server_server_requests_total counter",
		"probe_server_server_requests_total 3",
		"# TYPE probe_server_server_open_sessions gauge",
		"# TYPE probe_server_server_latency_range histogram",
		"probe_server_server_latency_range_count 3",
		"probe_server_server_latency_range_bucket{le=\"+Inf\"} 3",
		"probe_db_range_search_count_total 3",
		"# TYPE probe_pool_pages_resident gauge",
		"# TYPE probe_go_goroutines gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\nbody:\n%s", want, body)
		}
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz status %d before drain", code)
	}
	if code, body := get("/debug/vars"); code != http.StatusOK ||
		!strings.Contains(body, "\"server\"") || !strings.Contains(body, "\"db\"") {
		t.Fatalf("/debug/vars status %d body %q", code, body)
	}

	// Pin an in-flight request so Shutdown sits in its grace period,
	// making the mid-drain readiness state observable.
	if !srv.beginRequest() {
		t.Fatal("could not claim a request slot")
	}
	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Shutdown(context.Background()) }()
	deadline := time.After(3 * time.Second)
	for {
		code, _ := get("/readyz")
		if code == http.StatusServiceUnavailable {
			break
		}
		select {
		case <-deadline:
			t.Fatal("/readyz never went 503 during drain")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatal("/healthz must stay 200 during drain")
	}
	srv.endRequest()
	if err := <-drainDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatal("/readyz must stay 503 after drain")
	}
}

// TestTraceRoundTrip: a traced request comes back with the server's
// per-phase timing breakdown on DONE and the rendered span tree on a
// preceding TEXT frame; an untraced request carries neither.
func TestTraceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	_, addr, _ := startServer(t, Config{}, randPoints(rng, 2000, 0))
	cl := dial(t, addr)
	ctx := context.Background()

	if _, _, err := cl.Range(ctx, []uint32{0, 0}, []uint32{800, 800}); err != nil {
		t.Fatal(err)
	}
	if tm := cl.LastTiming(); tm.Total != 0 {
		t.Fatalf("untraced request got a timing breakdown: %+v", tm)
	}

	cl.SetTrace(true)
	if _, _, err := cl.Range(ctx, []uint32{0, 0}, []uint32{800, 800}); err != nil {
		t.Fatal(err)
	}
	tm := cl.LastTiming()
	if tm.Total <= 0 {
		t.Fatalf("traced request timing: %+v, want Total > 0", tm)
	}
	if sum := tm.Queue + tm.Plan + tm.Exec + tm.Stream; sum > tm.Total {
		t.Fatalf("phases (%v) exceed total (%v)", sum, tm.Total)
	}
	tree := cl.LastTrace()
	if !strings.Contains(tree, "range") {
		t.Fatalf("trace tree %q does not name the operator", tree)
	}
	if !strings.Contains(tree, "pool-gets=") {
		t.Fatalf("trace tree %q carries no pool attribution", tree)
	}

	// Tracing follows the toggle off again.
	cl.SetTrace(false)
	if _, _, err := cl.Range(ctx, []uint32{0, 0}, []uint32{10, 10}); err != nil {
		t.Fatal(err)
	}
	if cl.LastTiming().Total != 0 || cl.LastTrace() != "" {
		t.Fatal("trace state leaked across SetTrace(false)")
	}
}

// syncBuf is a goroutine-safe log sink: sessions log from their own
// goroutines while the test polls the contents.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitFor polls until the log sink contains want.
func waitFor(t *testing.T, buf *syncBuf, want string) string {
	t.Helper()
	deadline := time.After(3 * time.Second)
	for {
		if out := buf.String(); strings.Contains(out, want) {
			return out
		}
		select {
		case <-deadline:
			t.Fatalf("log never contained %q; log:\n%s", want, buf.String())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestSlowQueryLog: with the log-everything threshold every request
// emits a structured warn line carrying the rendered span tree.
func TestSlowQueryLog(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var buf syncBuf
	cfg := Config{
		SlowQuery: -1, // log every request as slow
		Logger:    slog.New(slog.NewTextHandler(&buf, nil)),
	}
	_, addr, _ := startServer(t, cfg, randPoints(rng, 2000, 0))
	cl := dial(t, addr)
	if _, _, err := cl.Range(context.Background(), []uint32{0, 0}, []uint32{600, 600}); err != nil {
		t.Fatal(err)
	}
	out := waitFor(t, &buf, "slow query")
	// An untraced request runs on the snapshot read path, so its span
	// carries the logical merge counters (data-pages, not pool-gets —
	// physical attribution requires the trace flag).
	for _, want := range []string{"level=WARN", "op=range", "status=ok", "trace=", "data-pages="} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-query log missing %q:\n%s", want, out)
		}
	}
}

// TestSampledRequestLog: LogEvery=1 logs each request at info; a
// request that fails validation logs its typed status.
func TestSampledRequestLog(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var buf syncBuf
	cfg := Config{
		LogEvery: 1,
		Logger:   slog.New(slog.NewTextHandler(&buf, nil)),
	}
	_, addr, _ := startServer(t, cfg, randPoints(rng, 500, 0))
	cl := dial(t, addr)
	if _, _, err := cl.Range(context.Background(), []uint32{0, 0}, []uint32{100, 100}); err != nil {
		t.Fatal(err)
	}
	out := waitFor(t, &buf, "msg=request")
	for _, want := range []string{"level=INFO", "op=range", "status=ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("request log missing %q:\n%s", want, out)
		}
	}

	// A dimension mismatch is a bad request; its log line says so.
	if _, _, err := cl.Nearest(context.Background(), []uint32{1, 2, 3}, 1, 0); err == nil {
		t.Fatal("3-dim nearest on a 2-dim database succeeded")
	}
	waitFor(t, &buf, "status=bad-request")
}

// TestStatsLegacyMinor0: a client that said minor 0 in its Hello gets
// the legacy TEXT stats blob, not the STATSKV frame.
func TestStatsLegacyMinor0(t *testing.T) {
	_, addr, _ := startServer(t, Config{}, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.MsgHello, wire.Hello{Major: wire.VersionMajor, Minor: 0}.Encode()); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wire.ReadFrame(conn); err != nil || typ != wire.MsgWelcome {
		t.Fatalf("handshake: type 0x%02x err %v", typ, err)
	}
	req := wire.SimpleReq{Header: wire.Header{ID: 1}}
	if err := wire.WriteFrame(conn, wire.MsgStats, req.Encode()); err != nil {
		t.Fatal(err)
	}
	sawText := false
	for {
		typ, payload, err := wire.ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		switch typ {
		case wire.MsgText:
			tm, err := wire.DecodeTextMsg(payload)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(tm.Text, "\"server\"") {
				t.Fatalf("legacy stats text %q", tm.Text)
			}
			sawText = true
		case wire.MsgStatsKV:
			t.Fatal("server sent STATSKV to a minor-0 client")
		case wire.MsgDone:
			if !sawText {
				t.Fatal("no TEXT stats before DONE")
			}
			return
		default:
			t.Fatalf("unexpected frame 0x%02x", typ)
		}
	}
}

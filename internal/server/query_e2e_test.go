package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"strings"
	"testing"

	"probe"
	"probe/client"
	"probe/internal/wire"
)

// genQuery builds one random but always-valid statement from rng.
// ordered reports whether the query carries a total ORDER BY (unique
// key), in which case the differential compare is order-sensitive.
// Shapes that materialize through map iteration (GROUP BY) only get
// LIMIT together with a total order, so both executions select the
// same rows.
func genQuery(rng *rand.Rand) (sql string, ordered bool) {
	box := func() string {
		xlo := rng.Intn(1024)
		ylo := rng.Intn(1024)
		return fmt.Sprintf("BOX(%d, %d, %d, %d)",
			xlo, xlo+rng.Intn(1024-xlo), ylo, ylo+rng.Intn(1024-ylo))
	}
	pred := []string{"CONTAINS", "INTERSECTS"}[rng.Intn(2)]
	var b strings.Builder
	switch rng.Intn(7) {
	case 0: // star scan
		fmt.Fprintf(&b, "SELECT * FROM points WHERE %s(%s)", pred, box())
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&b, " AND x >= %d", rng.Intn(1024))
		}
		if rng.Intn(2) == 0 {
			b.WriteString(" ORDER BY id")
			ordered = true
		}
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&b, " LIMIT %d", 1+rng.Intn(50))
		}
	case 1: // projection with residual comparisons
		fmt.Fprintf(&b, "SELECT id, x, y FROM points WHERE %s(%s) AND y < %d AND id != %d",
			pred, box(), 1+rng.Intn(1024), 1+rng.Intn(4000))
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&b, " ORDER BY %s DESC, id", []string{"x", "y"}[rng.Intn(2)])
			ordered = true
		}
	case 2: // DISTINCT on one coordinate
		col := []string{"x", "y"}[rng.Intn(2)]
		fmt.Fprintf(&b, "SELECT DISTINCT %s FROM points WHERE %s(%s)", col, pred, box())
		if rng.Intn(2) == 0 {
			b.WriteString(" ORDER BY " + col)
			ordered = true
		}
	case 3: // global aggregates
		fmt.Fprintf(&b, "SELECT COUNT(*) AS n, MIN(x) AS mnx, MAX(y) AS mxy, SUM(x) AS sx FROM points WHERE %s(%s)", pred, box())
	case 4: // grouped, totally ordered by the group key
		col := []string{"x", "y"}[rng.Intn(2)]
		fmt.Fprintf(&b, "SELECT %s, COUNT(*) AS n FROM points WHERE %s(%s) GROUP BY %s ORDER BY %s",
			col, pred, box(), col, col)
		ordered = true
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&b, " LIMIT %d", 1+rng.Intn(20))
		}
	case 5: // nearest
		fmt.Fprintf(&b, "SELECT id, x, y, dist FROM points WHERE NEAREST(POINT(%d, %d), %d)",
			rng.Intn(1024), rng.Intn(1024), 1+rng.Intn(20))
	case 6: // region join
		n := 1 + rng.Intn(4)
		fmt.Fprintf(&b, "SELECT region, id FROM points JOIN REGIONS(")
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d %s", i+1, box())
		}
		b.WriteString(") ON INTERSECTS")
		if rng.Intn(2) == 0 {
			b.WriteString(" ORDER BY region, id")
			ordered = true
		}
	}
	return b.String(), ordered
}

// renderRows canonicalizes a result set for comparison, one string
// per row with value types spelled out.
func renderRows(rows []probe.QueryRow) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = fmt.Sprintf("%T:%v", v, v)
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

// TestQueryDifferential is the battery the wire path is proven by:
// 220 seeded random statements run both through DB.Query in process
// and over a real server via client.Conn.Query; columns and row sets
// must be identical (exact order when the statement carries a total
// ORDER BY, multiset otherwise). Failing seeds are appended to
// $QUERY_SEED_FILE when set, so CI archives reproducers.
func TestQueryDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1986))
	seed := randPoints(rng, 4000, 1)
	srv, addr, _ := startServer(t, Config{BatchSize: 32}, seed)
	cl := dial(t, addr)
	db := srv.DB()
	ctx := context.Background()

	var failures []string
	fail := func(seed int64, sql, msg string) {
		t.Errorf("seed %d: %s\n  query: %s", seed, msg, sql)
		failures = append(failures, fmt.Sprintf("%d\t%s\t%s", seed, sql, msg))
	}
	const n = 220
	for i := 0; i < n; i++ {
		qseed := int64(1000 + i)
		sql, ordered := genQuery(rand.New(rand.NewSource(qseed)))
		local, lerr := db.Query(ctx, sql)
		remote, rerr := cl.Query(ctx, sql)
		if lerr != nil || rerr != nil {
			fail(qseed, sql, fmt.Sprintf("errors differ or non-nil: local=%v remote=%v", lerr, rerr))
			continue
		}
		if len(local.Columns) != len(remote.Columns) {
			fail(qseed, sql, fmt.Sprintf("schema width: local %d, remote %d", len(local.Columns), len(remote.Columns)))
			continue
		}
		mismatch := false
		for j := range local.Columns {
			if local.Columns[j].Name != remote.Columns[j].Name || local.Columns[j].Type != remote.Columns[j].Type {
				fail(qseed, sql, fmt.Sprintf("column %d: local %v, remote %v", j, local.Columns[j], remote.Columns[j]))
				mismatch = true
				break
			}
		}
		if mismatch {
			continue
		}
		lr, rr := renderRows(local.Rows), renderRows(remote.Rows)
		if !ordered {
			sort.Strings(lr)
			sort.Strings(rr)
		}
		if len(lr) != len(rr) {
			fail(qseed, sql, fmt.Sprintf("row count: local %d, remote %d", len(lr), len(rr)))
			continue
		}
		for j := range lr {
			if lr[j] != rr[j] {
				fail(qseed, sql, fmt.Sprintf("row %d: local %s, remote %s", j, lr[j], rr[j]))
				break
			}
		}
	}
	if len(failures) > 0 {
		if path := os.Getenv("QUERY_SEED_FILE"); path != "" {
			f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				t.Logf("cannot record failing seeds: %v", err)
			} else {
				fmt.Fprintln(f, strings.Join(failures, "\n"))
				f.Close()
			}
		}
	}
}

// TestQueryInTxOverWire: a QUERY inside BEGIN observes the
// transaction's snapshot plus its own buffered writes — a concurrent
// committed insert stays invisible until after COMMIT.
func TestQueryInTxOverWire(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	_, addr, _ := startServer(t, Config{}, randPoints(rng, 500, 1))
	cl := dial(t, addr)
	other := dial(t, addr)
	ctx := context.Background()

	count := func(res *client.QueryResult, err error) int64 {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
			t.Fatalf("count query shape: %v", res.Rows)
		}
		return res.Rows[0][0].(int64)
	}
	const q = "SELECT COUNT(*) FROM points"
	base := count(cl.Query(ctx, q))

	tx, err := cl.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback(ctx)
	if _, err := tx.Insert(ctx, []probe.Point{probe.Pt2(900001, 7, 7), probe.Pt2(900002, 8, 8)}); err != nil {
		t.Fatal(err)
	}
	// Another connection commits while the transaction is open.
	if _, err := other.Insert(ctx, []probe.Point{probe.Pt2(900003, 9, 9)}); err != nil {
		t.Fatal(err)
	}
	if got := count(tx.Query(ctx, q)); got != base+2 {
		t.Fatalf("tx query: got %d rows, want snapshot+own writes = %d", got, base+2)
	}
	if got := count(tx.Query(ctx, "SELECT COUNT(*) FROM points WHERE CONTAINS(BOX(7, 8, 7, 8))")); got != 2 {
		t.Fatalf("tx box query: got %d, want its own 2 writes", got)
	}
	if _, err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if got := count(cl.Query(ctx, q)); got != base+3 {
		t.Fatalf("after commit: got %d, want %d", got, base+3)
	}
}

// TestQueryLimitStopsScan: a streamable QUERY with LIMIT must stop
// the server-side index scan within a page of satisfying it, not read
// the whole table and truncate.
func TestQueryLimitStopsScan(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	_, addr, _ := startServer(t, Config{BatchSize: 16}, randPoints(rng, 20000, 1))
	cl := dial(t, addr)
	ctx := context.Background()

	full, err := cl.Query(ctx, "SELECT id FROM points")
	if err != nil {
		t.Fatal(err)
	}
	limited, err := cl.Query(ctx, "SELECT id FROM points LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(limited.Rows) != 3 {
		t.Fatalf("LIMIT 3 returned %d rows", len(limited.Rows))
	}
	if limited.Stats.DataPages > 2 || limited.Stats.DataPages >= full.Stats.DataPages/4 {
		t.Fatalf("LIMIT 3 read %d data pages (full scan reads %d): scan not stopped early",
			limited.Stats.DataPages, full.Stats.DataPages)
	}
}

// TestQueryCancelMidStream: cancelling the context mid-stream stops a
// QUERY with a typed error and leaves the session usable, over an
// unbuffered net.Pipe so the CANCEL frame deterministically lands
// while the server is still streaming.
func TestQueryCancelMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	srv, _, _ := startServer(t, Config{BatchSize: 16}, randPoints(rng, 20000, 1))
	cs, ssConn := net.Pipe()
	t.Cleanup(func() { cs.Close(); ssConn.Close() })
	go newSession(srv, ssConn).run()
	cl, err := client.NewConn(cs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	_, err = cl.QueryFunc(ctx, "SELECT id, x, y FROM points", nil, func(probe.QueryRow) bool {
		n++
		if n == 5 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, client.ErrCanceled) && !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query: got %v, want canceled", err)
	}

	// The same connection serves the next statement completely.
	res, err := cl.Query(context.Background(), "SELECT COUNT(*) FROM points")
	if err != nil {
		t.Fatalf("query after cancel: %v", err)
	}
	if got := res.Rows[0][0].(int64); got != int64(srv.DB().Len()) {
		t.Fatalf("query after cancel: count %d, want %d", got, srv.DB().Len())
	}
}

// TestQueryConsumerStopMidStream: onRow returning false ends the
// stream without error and the connection keeps working.
func TestQueryConsumerStopMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	_, addr, _ := startServer(t, Config{BatchSize: 16}, randPoints(rng, 20000, 1))
	cl := dial(t, addr)

	n := 0
	_, err := cl.QueryFunc(context.Background(), "SELECT id FROM points", nil, func(probe.QueryRow) bool {
		n++
		return n < 10
	})
	if err != nil {
		t.Fatalf("early stop: %v", err)
	}
	if n != 10 {
		t.Fatalf("onRow called %d times, want 10", n)
	}
	if _, err := cl.Query(context.Background(), "SELECT COUNT(*) FROM points"); err != nil {
		t.Fatalf("query after early stop: %v", err)
	}
}

// TestQueryTypedErrors: parse and plan failures come back as typed
// wire codes the client maps onto ErrParse/ErrPlan sentinels — never
// a dropped connection.
func TestQueryTypedErrors(t *testing.T) {
	_, addr, _ := startServer(t, Config{}, randPoints(rand.New(rand.NewSource(15)), 100, 1))
	cl := dial(t, addr)
	ctx := context.Background()

	if _, err := cl.Query(ctx, "SELECT FROM points"); !errors.Is(err, client.ErrParse) {
		t.Fatalf("syntax error: got %v, want ErrParse", err)
	}
	if _, err := cl.Query(ctx, "SELECT nope FROM points"); !errors.Is(err, client.ErrPlan) {
		t.Fatalf("unknown column: got %v, want ErrPlan", err)
	}
	if _, err := cl.Query(ctx, "SELECT id FROM nowhere"); !errors.Is(err, client.ErrPlan) {
		t.Fatalf("unknown table: got %v, want ErrPlan", err)
	}
	// The connection survives every rejection.
	if _, err := cl.Query(ctx, "SELECT COUNT(*) FROM points"); err != nil {
		t.Fatalf("query after typed errors: %v", err)
	}
}

// TestQueryOldMinorRejected: a client that negotiated minor < 3 gets
// a typed bad-request rejection for the QUERY opcode before the
// server even decodes the payload (the payload here is deliberately
// garbage), and the connection stays open.
func TestQueryOldMinorRejected(t *testing.T) {
	_, addr, _ := startServer(t, Config{}, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := wire.Hello{Major: wire.VersionMajor, Minor: 2}
	if err := wire.WriteFrame(conn, wire.MsgHello, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wire.ReadFrame(conn); err != nil || typ != wire.MsgWelcome {
		t.Fatalf("handshake: type 0x%02x err %v", typ, err)
	}
	if err := wire.WriteFrame(conn, wire.MsgQuery, []byte{0xff, 0xfe}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.MsgError {
		t.Fatalf("got frame 0x%02x, want error", typ)
	}
	em, err := wire.DecodeErrorMsg(payload)
	if err != nil {
		t.Fatal(err)
	}
	if em.Code != wire.CodeBadRequest {
		t.Fatalf("got code %d, want bad-request", em.Code)
	}
	if !strings.Contains(em.Msg, "minor") {
		t.Fatalf("rejection does not mention the protocol minor: %q", em.Msg)
	}
}

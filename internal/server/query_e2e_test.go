package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"testing"

	"probe"
	"probe/client"
	"probe/internal/battery"
	"probe/internal/wire"
)

// TestQueryDifferential is the battery the wire path is proven by:
// 220 seeded random statements (internal/battery's generator) run
// both through DB.Query in process and over a real server via
// client.Conn.Query; columns and row sets must be identical (exact
// order when the statement carries a total ORDER BY, multiset
// otherwise). Failing seeds are appended to $QUERY_SEED_FILE when
// set, so CI archives reproducers.
func TestQueryDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1986))
	seed := randPoints(rng, 4000, 1)
	srv, addr, _ := startServer(t, Config{BatchSize: 32}, seed)
	cl := dial(t, addr)
	db := srv.DB()
	ctx := context.Background()

	var failures []string
	fail := func(seed int64, sql, msg string) {
		t.Errorf("seed %d: %s\n  query: %s", seed, msg, sql)
		failures = append(failures, fmt.Sprintf("%d\t%s\t%s", seed, sql, msg))
	}
	const n = 220
	for i := 0; i < n; i++ {
		qseed := int64(1000 + i)
		sql, ordered := battery.GenQuery(rand.New(rand.NewSource(qseed)))
		local, lerr := db.Query(ctx, sql)
		remote, rerr := cl.Query(ctx, sql)
		if lerr != nil || rerr != nil {
			fail(qseed, sql, fmt.Sprintf("errors differ or non-nil: local=%v remote=%v", lerr, rerr))
			continue
		}
		if d := battery.Diff(
			battery.Result{Columns: local.Columns, Rows: local.Rows},
			battery.Result{Columns: remote.Columns, Rows: remote.Rows},
			ordered,
		); d != "" {
			fail(qseed, sql, "local vs remote "+d)
		}
	}
	if len(failures) > 0 {
		if path := os.Getenv("QUERY_SEED_FILE"); path != "" {
			f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				t.Logf("cannot record failing seeds: %v", err)
			} else {
				fmt.Fprintln(f, strings.Join(failures, "\n"))
				f.Close()
			}
		}
	}
}

// TestQueryInTxOverWire: a QUERY inside BEGIN observes the
// transaction's snapshot plus its own buffered writes — a concurrent
// committed insert stays invisible until after COMMIT.
func TestQueryInTxOverWire(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	_, addr, _ := startServer(t, Config{}, randPoints(rng, 500, 1))
	cl := dial(t, addr)
	other := dial(t, addr)
	ctx := context.Background()

	count := func(res *client.QueryResult, err error) int64 {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
			t.Fatalf("count query shape: %v", res.Rows)
		}
		return res.Rows[0][0].(int64)
	}
	const q = "SELECT COUNT(*) FROM points"
	base := count(cl.Query(ctx, q))

	tx, err := cl.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback(ctx)
	if _, err := tx.Insert(ctx, []probe.Point{probe.Pt2(900001, 7, 7), probe.Pt2(900002, 8, 8)}); err != nil {
		t.Fatal(err)
	}
	// Another connection commits while the transaction is open.
	if _, err := other.Insert(ctx, []probe.Point{probe.Pt2(900003, 9, 9)}); err != nil {
		t.Fatal(err)
	}
	if got := count(tx.Query(ctx, q)); got != base+2 {
		t.Fatalf("tx query: got %d rows, want snapshot+own writes = %d", got, base+2)
	}
	if got := count(tx.Query(ctx, "SELECT COUNT(*) FROM points WHERE CONTAINS(BOX(7, 8, 7, 8))")); got != 2 {
		t.Fatalf("tx box query: got %d, want its own 2 writes", got)
	}
	if _, err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if got := count(cl.Query(ctx, q)); got != base+3 {
		t.Fatalf("after commit: got %d, want %d", got, base+3)
	}
}

// TestQueryLimitStopsScan: a streamable QUERY with LIMIT must stop
// the server-side index scan within a page of satisfying it, not read
// the whole table and truncate.
func TestQueryLimitStopsScan(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	_, addr, _ := startServer(t, Config{BatchSize: 16}, randPoints(rng, 20000, 1))
	cl := dial(t, addr)
	ctx := context.Background()

	full, err := cl.Query(ctx, "SELECT id FROM points")
	if err != nil {
		t.Fatal(err)
	}
	limited, err := cl.Query(ctx, "SELECT id FROM points LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(limited.Rows) != 3 {
		t.Fatalf("LIMIT 3 returned %d rows", len(limited.Rows))
	}
	if limited.Stats.DataPages > 2 || limited.Stats.DataPages >= full.Stats.DataPages/4 {
		t.Fatalf("LIMIT 3 read %d data pages (full scan reads %d): scan not stopped early",
			limited.Stats.DataPages, full.Stats.DataPages)
	}
}

// TestQueryCancelMidStream: cancelling the context mid-stream stops a
// QUERY with a typed error and leaves the session usable, over an
// unbuffered net.Pipe so the CANCEL frame deterministically lands
// while the server is still streaming.
func TestQueryCancelMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	srv, _, _ := startServer(t, Config{BatchSize: 16}, randPoints(rng, 20000, 1))
	cs, ssConn := net.Pipe()
	t.Cleanup(func() { cs.Close(); ssConn.Close() })
	go newSession(srv, ssConn).run()
	cl, err := client.NewConn(cs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	_, err = cl.QueryFunc(ctx, "SELECT id, x, y FROM points", nil, func(probe.QueryRow) bool {
		n++
		if n == 5 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, client.ErrCanceled) && !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query: got %v, want canceled", err)
	}

	// The same connection serves the next statement completely.
	res, err := cl.Query(context.Background(), "SELECT COUNT(*) FROM points")
	if err != nil {
		t.Fatalf("query after cancel: %v", err)
	}
	if got := res.Rows[0][0].(int64); got != int64(srv.DB().Len()) {
		t.Fatalf("query after cancel: count %d, want %d", got, srv.DB().Len())
	}
}

// TestQueryConsumerStopMidStream: onRow returning false ends the
// stream without error and the connection keeps working.
func TestQueryConsumerStopMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	_, addr, _ := startServer(t, Config{BatchSize: 16}, randPoints(rng, 20000, 1))
	cl := dial(t, addr)

	n := 0
	_, err := cl.QueryFunc(context.Background(), "SELECT id FROM points", nil, func(probe.QueryRow) bool {
		n++
		return n < 10
	})
	if err != nil {
		t.Fatalf("early stop: %v", err)
	}
	if n != 10 {
		t.Fatalf("onRow called %d times, want 10", n)
	}
	if _, err := cl.Query(context.Background(), "SELECT COUNT(*) FROM points"); err != nil {
		t.Fatalf("query after early stop: %v", err)
	}
}

// TestQueryTypedErrors: parse and plan failures come back as typed
// wire codes the client maps onto ErrParse/ErrPlan sentinels — never
// a dropped connection.
func TestQueryTypedErrors(t *testing.T) {
	_, addr, _ := startServer(t, Config{}, randPoints(rand.New(rand.NewSource(15)), 100, 1))
	cl := dial(t, addr)
	ctx := context.Background()

	if _, err := cl.Query(ctx, "SELECT FROM points"); !errors.Is(err, client.ErrParse) {
		t.Fatalf("syntax error: got %v, want ErrParse", err)
	}
	if _, err := cl.Query(ctx, "SELECT nope FROM points"); !errors.Is(err, client.ErrPlan) {
		t.Fatalf("unknown column: got %v, want ErrPlan", err)
	}
	if _, err := cl.Query(ctx, "SELECT id FROM nowhere"); !errors.Is(err, client.ErrPlan) {
		t.Fatalf("unknown table: got %v, want ErrPlan", err)
	}
	// The connection survives every rejection.
	if _, err := cl.Query(ctx, "SELECT COUNT(*) FROM points"); err != nil {
		t.Fatalf("query after typed errors: %v", err)
	}
}

// TestQueryOldMinorRejected: a client that negotiated minor < 3 gets
// a typed bad-request rejection for the QUERY opcode before the
// server even decodes the payload (the payload here is deliberately
// garbage), and the connection stays open.
func TestQueryOldMinorRejected(t *testing.T) {
	_, addr, _ := startServer(t, Config{}, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := wire.Hello{Major: wire.VersionMajor, Minor: 2}
	if err := wire.WriteFrame(conn, wire.MsgHello, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wire.ReadFrame(conn); err != nil || typ != wire.MsgWelcome {
		t.Fatalf("handshake: type 0x%02x err %v", typ, err)
	}
	if err := wire.WriteFrame(conn, wire.MsgQuery, []byte{0xff, 0xfe}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.MsgError {
		t.Fatalf("got frame 0x%02x, want error", typ)
	}
	em, err := wire.DecodeErrorMsg(payload)
	if err != nil {
		t.Fatal(err)
	}
	if em.Code != wire.CodeBadRequest {
		t.Fatalf("got code %d, want bad-request", em.Code)
	}
	if !strings.Contains(em.Msg, "minor") {
		t.Fatalf("rejection does not mention the protocol minor: %q", em.Msg)
	}
}

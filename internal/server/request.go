package server

import (
	"context"
	"errors"
	"time"

	"probe"
	"probe/internal/obs"
	"probe/internal/wire"
)

// request carries one request's identity and instrumentation through
// its executor goroutine: the phase timestamps behind the wire timing
// breakdown, the operator span all engine work is attributed to, and
// the outcome for metrics and the structured log. It is owned by the
// single executor goroutine; nothing in it is shared.
type request struct {
	id    uint32
	op    string
	flags uint8

	// trace is the request's distributed trace ID (wire header tail,
	// minor 4). Zero means the client did not send one; setHeader mints
	// an ID for traced requests so this server acts as the trace's
	// front door, and finish mints one lazily for untraced requests
	// that turn out slow or sampled so their log lines and trace-store
	// records are still grep-correlatable.
	trace uint64

	// span is the request's operator span, a child of the session
	// span; handlers pass it to the engine via WithTrace so page reads
	// and operator timings hang off this one node.
	span *probe.Trace

	recv    time.Time // frame dequeued by the session loop
	start   time.Time // executor goroutine began (queue phase ends)
	planned time.Time // decode + validation done (zero if rejected there)

	// streamNs accumulates time spent writing result frames, so the
	// exec phase can be reported net of client backpressure even for
	// handlers that stream from inside the engine callback.
	streamNs int64

	qs      probe.QueryStats
	errCode uint8 // 0 = success; otherwise the wire error code sent
}

// opName names a request opcode for metric names and log lines.
func opName(typ uint8) string {
	switch typ {
	case wire.MsgRange:
		return "range"
	case wire.MsgNearest:
		return "nearest"
	case wire.MsgJoin:
		return "join"
	case wire.MsgInsert:
		return "insert"
	case wire.MsgCheckpoint:
		return "checkpoint"
	case wire.MsgExplain:
		return "explain"
	case wire.MsgStats:
		return "stats"
	case wire.MsgDelete:
		return "delete"
	case wire.MsgBegin:
		return "begin"
	case wire.MsgCommit:
		return "commit"
	case wire.MsgRollback:
		return "rollback"
	case wire.MsgQuery:
		return "query"
	default:
		return "unknown"
	}
}

// setHeader records the decoded wire header's instrumentation fields:
// the flags byte and the trace ID. A traced request arriving without
// an ID (an old client, or a coordinator that has not minted one) gets
// a fresh ID here — this server is then the trace's front door — so
// every traced request is grep-able by trace ID end to end.
func (rq *request) setHeader(h wire.Header) {
	rq.flags = h.Flags
	rq.trace = h.Trace
	if rq.traced() && rq.trace == 0 {
		rq.trace = obs.NewTraceID()
	}
}

// markPlanned seals the plan phase: decoding and validation are done,
// the engine call is next.
func (rq *request) markPlanned() { rq.planned = time.Now() }

// traced reports whether the client set FlagTrace on this request.
func (rq *request) traced() bool { return rq.flags&wire.FlagTrace != 0 }

// queryOpts assembles the engine options for a data request: the
// request context always, plus trace attribution only when the client
// set FlagTrace. An untraced request therefore takes the engine's
// snapshot read path — it runs against one pinned committed tree
// version without serializing on the database mutex, so reads on one
// connection do not stall behind a writer on another. A traced
// request serializes on the database mutex so its page-access
// attribution stays exact.
func (rq *request) queryOpts(ctx context.Context, extra ...probe.QueryOption) []probe.QueryOption {
	opts := append([]probe.QueryOption{probe.WithContext(ctx)}, extra...)
	if rq.traced() {
		opts = append(opts, probe.WithTrace(rq.span))
	}
	return opts
}

// timings builds the Done timing array (nanoseconds, wire.Timing*
// indices). Exec is derived as the remainder so it stays correct for
// handlers that stream from inside the engine call.
func (rq *request) timings() []uint64 {
	total := time.Since(rq.recv)
	queue := rq.start.Sub(rq.recv)
	var plan time.Duration
	if !rq.planned.IsZero() {
		plan = rq.planned.Sub(rq.start)
	}
	stream := time.Duration(rq.streamNs)
	exec := total - queue - plan - stream
	if exec < 0 {
		exec = 0
	}
	t := make([]uint64, wire.NumTimings)
	t[wire.TimingQueue] = uint64(queue)
	t[wire.TimingPlan] = uint64(plan)
	t[wire.TimingExec] = uint64(exec)
	t[wire.TimingStream] = uint64(stream)
	t[wire.TimingTotal] = uint64(total)
	return t
}

// sendTimed is send with the elapsed write time accounted to the
// request's stream phase.
func (ss *session) sendTimed(rq *request, typ uint8, payload []byte) error {
	t0 := time.Now()
	err := ss.send(typ, payload)
	rq.streamNs += int64(time.Since(t0))
	return err
}

// reject ends a request at validation: bad-request error frame plus
// the recorded outcome.
func (ss *session) reject(rq *request, msg string) {
	rq.errCode = wire.CodeBadRequest
	ss.respDone.Store(true)
	ss.sendError(rq.id, wire.CodeBadRequest, msg)
}

// codeOf maps an execution error to its typed wire code.
// context.Cause distinguishes a client cancel from the server's
// drain.
func codeOf(ctx context.Context, err error) uint8 {
	switch {
	case errors.Is(err, probe.ErrTxConflict):
		return wire.CodeConflict
	case errors.Is(err, probe.ErrTxAborted):
		return wire.CodeBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return wire.CodeDeadline
	case errors.Is(err, context.Canceled):
		if context.Cause(ctx) == errDraining {
			return wire.CodeShuttingDown
		}
		return wire.CodeCanceled
	case errors.Is(err, probe.ErrClosed):
		return wire.CodeShuttingDown
	}
	return wire.CodeInternal
}

// failReq ends a request at execution: typed error frame plus the
// recorded outcome.
func (ss *session) failReq(ctx context.Context, rq *request, err error) {
	rq.errCode = codeOf(ctx, err)
	ss.respDone.Store(true)
	ss.sendError(rq.id, rq.errCode, err.Error())
}

// sendDone ends a successful request. A traced data request first
// gets its server-side span tree — as a TRACE frame (trace ID plus
// the canonical binary encoding) for a minor >= 4 client, or the
// legacy rendered-TEXT form for older ones; EXPLAIN and STATS keep
// their single TEXT body — then every traced request's DONE carries
// the per-phase timing breakdown.
func (ss *session) sendDone(rq *request, qs probe.QueryStats) {
	rq.qs = qs
	if !rq.traced() {
		// Untraced requests run on the snapshot path with no engine
		// span attribution; fold the logical merge counters back into
		// the request span so telemetry (slow-query traces, the span
		// tree folded into the metrics registry) still reports the
		// work performed. Physical attribution (pool-gets, phys-reads)
		// requires FlagTrace.
		rq.span.Add(probe.CounterSeeks, int64(qs.Seeks))
		rq.span.Add(probe.CounterDataPages, int64(qs.DataPages))
		rq.span.Add(probe.CounterElements, int64(qs.Elements))
		rq.span.Add(probe.CounterResults, int64(qs.Results))
	}
	rq.span.End()
	ss.respDone.Store(true)
	if rq.traced() && rq.op != "explain" && rq.op != "stats" {
		if ss.minor >= 4 {
			tm := wire.TraceMsg{ID: rq.id, TraceID: rq.trace, Span: obs.EncodeSpan(rq.span)}
			if ss.send(wire.MsgTrace, tm.Encode()) != nil {
				return
			}
		} else if ss.send(wire.MsgText, wire.TextMsg{ID: rq.id, Text: rq.span.Render(true)}.Encode()) != nil {
			return
		}
	}
	dn := wire.Done{ID: rq.id, Stats: statsArray(qs)}
	if rq.traced() {
		dn.Timings = rq.timings()
	}
	ss.send(wire.MsgDone, dn.Encode())
}

// finish runs once per executed request, after its handler returns:
// it seals the span, feeds the per-opcode latency and page-read
// histograms, records interesting requests (traced, slow, sampled)
// into the trace store behind /debug/traces, and emits the structured
// log line — a Warn with the rendered span tree for slow queries, or
// the sampled Info line. Every recorded or logged request carries a
// trace ID: the client's when it sent one, a freshly minted one
// otherwise, so store entries and log lines always grep-correlate.
func (ss *session) finish(rq *request) {
	rq.span.End()
	total := time.Since(rq.recv)
	pages := rq.span.Total(probe.CounterPoolGets)
	if pages == 0 {
		// Untraced requests run on the snapshot path with no span
		// attribution; the merge's logical data-page count is the
		// closest available measure for the histogram and log line.
		pages = int64(rq.qs.DataPages)
	}
	m := ss.srv.metrics
	m.Histogram("server.latency." + rq.op).Observe(int64(total))
	m.Histogram("server.pages." + rq.op).Observe(pages)

	cfg := &ss.srv.cfg
	status := "ok"
	if rq.errCode != 0 {
		status = wire.CodeString(rq.errCode)
	}
	seq := ss.srv.reqSeq.Add(1)
	slow := cfg.SlowQuery < 0 || (cfg.SlowQuery > 0 && total >= cfg.SlowQuery)
	sampled := cfg.LogEvery > 0 && seq%uint64(cfg.LogEvery) == 0
	if rq.traced() || slow || sampled {
		if rq.trace == 0 {
			rq.trace = obs.NewTraceID()
		}
		kind := obs.TraceKindSampled
		switch {
		case slow:
			kind = obs.TraceKindSlow
		case rq.traced():
			kind = obs.TraceKindTraced
		}
		var root *probe.Trace
		if rq.traced() {
			root = rq.span
		}
		ss.srv.traces.Add(obs.TraceRecord{
			TraceID: rq.trace, Op: rq.op, Start: rq.recv, Dur: total,
			Status: status, Kind: kind, Root: root,
		})
	}

	if cfg.Logger == nil {
		return
	}
	args := []any{
		"op", rq.op,
		"id", rq.id,
		"remote", ss.conn.RemoteAddr().String(),
		"dur", total,
		"results", rq.qs.Results,
		"pages", pages,
		"status", status,
	}
	if rq.trace != 0 {
		args = append(args, "trace_id", obs.TraceIDString(rq.trace))
	}
	if slow {
		cfg.Logger.Warn("slow query", append(args, "trace", rq.span.Render(true))...)
		return
	}
	if sampled {
		cfg.Logger.Info("request", args...)
	}
}

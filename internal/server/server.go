// Package server implements probed's network front end: a TCP query
// server over the wire protocol (internal/wire, specified in
// docs/server.md) that owns one probe.DB and executes RANGE, NNEAREST,
// JOIN, INSERT, CHECKPOINT, EXPLAIN and STATS requests on behalf of
// remote clients.
//
// Concurrency model. Each accepted connection gets one session
// goroutine; a session executes at most one request at a time, in its
// own goroutine, while the session loop keeps reading frames so a
// CANCEL can interrupt the running request. Every request runs under
// a context.Context derived from the server's base context plus the
// request's own timeout; the query engine checks it at page-load
// boundaries, so a cancel stops a long scan within one page read.
//
// Admission control. In-flight requests across all sessions are
// bounded by Config.MaxInflight. Admission is fail-fast: a request
// arriving with no free slot is rejected immediately with the typed
// "overloaded" error rather than queued, so clients see load as
// backpressure they can retry against, and a slow query cannot grow
// an unbounded queue inside the server.
//
// Transactions. A session may hold at most one open transaction
// (BEGIN … COMMIT/ROLLBACK, protocol minor 2); while it is open, the
// session's RANGE, NEAREST, INSERT and DELETE requests run inside it.
// The transaction is rolled back if the connection drops or if the
// session sends nothing for Config.TxIdleTimeout, so an abandoned
// client cannot pin an MVCC snapshot (and the garbage-collection
// horizon under it) forever.
//
// Drain. Shutdown stops accepting connections and requests (new ones
// get "shutting-down"), waits up to Config.DrainTimeout for in-flight
// requests to finish and open transactions to commit or roll back —
// sessions holding a transaction may keep issuing requests during the
// grace window — then cancels whatever remains, closes every
// connection (rolling back still-open transactions), checkpoints the
// database and closes it. After Shutdown returns the store is
// consistent and reopens without recovery work.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"probe"
	"probe/internal/obs"
)

// Config tunes a Server. Zero values select the defaults in brackets.
type Config struct {
	// MaxInflight bounds concurrently executing requests across all
	// sessions [16]. Requests beyond it are rejected with the typed
	// "overloaded" error, never queued.
	MaxInflight int
	// DrainTimeout is how long Shutdown waits for in-flight requests
	// to finish before cancelling them [5s].
	DrainTimeout time.Duration
	// WriteTimeout bounds each response frame write, so one stalled
	// client cannot pin a request (and the DB mutex under it)
	// indefinitely [10s].
	WriteTimeout time.Duration
	// BatchSize is the number of results per streamed batch frame
	// [512].
	BatchSize int
	// TxIdleTimeout bounds how long a session may hold a transaction
	// open without issuing any request before the server rolls it back
	// [30s]. An abandoned transaction pins an MVCC snapshot, which
	// stalls version garbage collection; the timeout caps that damage.
	TxIdleTimeout time.Duration

	// Logger receives structured request logs (log/slog). nil disables
	// request logging entirely; the server never logs on its own.
	Logger *slog.Logger

	// SlowQuery is the slow-query log threshold: a request whose total
	// latency reaches it is logged at Warn with its rendered trace-span
	// tree. Zero disables the slow-query log (the zero value stays
	// silent); negative logs every request that way — the firehose
	// setting for debugging.
	SlowQuery time.Duration

	// LogEvery samples the per-request Info log: every Nth completed
	// request logs one line (opcode, session, duration, results, pages
	// read). Zero disables sampling. Slow-query logging is independent
	// of the sample.
	LogEvery int

	// TraceBuffer is the capacity of the in-memory trace store behind
	// the admin endpoint's /debug/traces: the last N interesting
	// requests (client-traced, slow, or sampled), each with its trace
	// ID, outcome, and — when traced — full span tree [64].
	TraceBuffer int

	// ReadOnly rejects every mutating request (INSERT, DELETE,
	// CHECKPOINT, BEGIN) with the typed read-only error before
	// admission. Read replicas serve under this flag: their database is
	// maintained by the replication applier, never by clients.
	ReadOnly bool

	// Metrics, when non-nil, is used as the server's registry instead
	// of a fresh one. A replica passes the registry its lag gauges
	// live in, so "repl.caught_up" surfaces through STATS (as
	// "server.repl.caught_up") for the router's health prober.
	Metrics *obs.Registry
}

func (c *Config) fillDefaults() {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 16
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 512
	}
	if c.TxIdleTimeout <= 0 {
		c.TxIdleTimeout = 30 * time.Second
	}
}

// Cancellation causes: context.Cause distinguishes a client's CANCEL
// frame from the server's drain, so the error frame carries the right
// typed code.
var (
	errClientCancel = errors.New("server: cancelled by client")
	errDraining     = errors.New("server: draining")
)

// Server serves one probe.DB over the wire protocol. Create with New,
// start with Serve, stop with Shutdown. The server owns the database:
// Shutdown checkpoints and closes it.
type Server struct {
	// db is the served database, behind an atomic pointer so a
	// replication applier can swap in a freshly caught-up version
	// (SwapDB) without stopping the server. Each access loads it once
	// via database().
	db  atomic.Pointer[probe.DB]
	cfg Config

	// readyCheck, when set, gates /readyz beyond the drain flag: a
	// replica reports unready while it lags the primary.
	readyMu    sync.Mutex
	readyCheck func() error

	// metrics holds the server-side telemetry: counters
	// (server.accepted, server.active, server.rejected,
	// server.cancelled, server.requests, server.sessions), gauges
	// (server.inflight, server.open_sessions), and per-opcode
	// histograms (server.latency.<op> in nanoseconds,
	// server.pages.<op> in buffer-pool page reads).
	metrics *obs.Registry

	// reqSeq numbers completed requests for the sampled Info log.
	reqSeq atomic.Uint64

	// traces is the ring buffer of recent interesting requests served
	// at /debug/traces (capacity Config.TraceBuffer).
	traces *obs.TraceStore

	baseCtx    context.Context
	cancelBase context.CancelCauseFunc

	// sem is the admission semaphore; a slot is held for the duration
	// of one executing request.
	sem chan struct{}

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	draining  bool

	// active counts executing requests and openTxs counts sessions
	// holding an open transaction; idle is closed & re-made when both
	// drop to 0 (what Shutdown's grace window waits for).
	active  int
	openTxs int
	idle    chan struct{}

	wg sync.WaitGroup // session goroutines
}

// New returns a server over db. The server takes ownership: Shutdown
// checkpoints and closes db.
func New(db *probe.DB, cfg Config) *Server {
	cfg.fillDefaults()
	ctx, cancel := context.WithCancelCause(context.Background())
	metrics := cfg.Metrics
	if metrics == nil {
		metrics = obs.NewRegistry()
	}
	s := &Server{
		cfg:        cfg,
		metrics:    metrics,
		traces:     obs.NewTraceStore(cfg.TraceBuffer),
		baseCtx:    ctx,
		cancelBase: cancel,
		sem:        make(chan struct{}, cfg.MaxInflight),
		listeners:  make(map[net.Listener]struct{}),
		conns:      make(map[net.Conn]struct{}),
		idle:       make(chan struct{}),
	}
	s.db.Store(db)
	return s
}

// Metrics returns the server's counter registry (expvar-compatible).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Traces returns the server's trace store: the ring of recent
// interesting requests (traced, slow, sampled) behind /debug/traces.
func (s *Server) Traces() *obs.TraceStore { return s.traces }

// DB returns the database the server fronts.
func (s *Server) DB() *probe.DB { return s.database() }

// database loads the served DB. Call sites load once per use; a
// request racing a SwapDB may see either version, which is exactly a
// replica's consistency contract (reads lag by at most one applied
// segment).
func (s *Server) database() *probe.DB { return s.db.Load() }

// SwapDB atomically replaces the served database and returns the
// previous one. The replication applier uses it to promote a freshly
// caught-up store version; the caller owns closing the returned DB
// (probe.DB.Close blocks until in-flight operations on it finish, so
// close-after-swap is the quiesce point). New requests see the new
// database immediately.
func (s *Server) SwapDB(db *probe.DB) *probe.DB {
	s.metrics.Int("server.db_swaps").Add(1)
	return s.db.Swap(db)
}

// SetReadyCheck installs fn as an extra /readyz condition: the
// endpoint reports 503 with fn's error while fn returns non-nil. A
// replica's lag check plugs in here. nil removes the check.
func (s *Server) SetReadyCheck(fn func() error) {
	s.readyMu.Lock()
	s.readyCheck = fn
	s.readyMu.Unlock()
}

func (s *Server) readyErr() error {
	s.readyMu.Lock()
	fn := s.readyCheck
	s.readyMu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// Serve accepts connections on ln until Shutdown closes it (or ln
// fails). It blocks; run it in a goroutine. The listener is closed by
// Shutdown; Serve then returns nil.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("server: Serve after Shutdown")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isDraining() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.metrics.Int("server.sessions").Add(1)
		s.metrics.Gauge("server.open_sessions").Inc()
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
				s.metrics.Gauge("server.open_sessions").Dec()
			}()
			newSession(s, conn).run()
		}()
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// beginRequest claims an admission slot; false means the server is at
// MaxInflight and the request must be rejected as overloaded.
func (s *Server) beginRequest() bool {
	select {
	case s.sem <- struct{}{}:
	default:
		s.metrics.Int("server.rejected").Add(1)
		return false
	}
	s.mu.Lock()
	s.active++
	s.mu.Unlock()
	s.metrics.Int("server.accepted").Add(1)
	s.metrics.Int("server.active").Add(1)
	s.metrics.Gauge("server.inflight").Inc()
	return true
}

// endRequest releases the slot claimed by beginRequest.
func (s *Server) endRequest() {
	<-s.sem
	s.mu.Lock()
	s.active--
	s.signalIdleLocked()
	s.mu.Unlock()
	s.metrics.Int("server.active").Add(-1)
	s.metrics.Gauge("server.inflight").Dec()
}

// signalIdleLocked wakes Shutdown's grace-window wait once no request
// executes and no transaction is open. Caller holds s.mu.
func (s *Server) signalIdleLocked() {
	if s.active == 0 && s.openTxs == 0 {
		close(s.idle)
		s.idle = make(chan struct{})
	}
}

// txBegan and txEnded track sessions holding an open transaction, for
// the drain grace window and the server.open_txs gauge.
func (s *Server) txBegan() {
	s.mu.Lock()
	s.openTxs++
	s.mu.Unlock()
	s.metrics.Int("server.tx_begun").Add(1)
	s.metrics.Gauge("server.open_txs").Inc()
}

func (s *Server) txEnded() {
	s.mu.Lock()
	s.openTxs--
	s.signalIdleLocked()
	s.mu.Unlock()
	s.metrics.Gauge("server.open_txs").Dec()
}

// Shutdown drains the server: stop accepting connections and
// requests, wait up to Config.DrainTimeout (bounded further by ctx)
// for in-flight requests to finish, cancel the stragglers, close all
// connections, then checkpoint and close the database. It is safe to
// call once; subsequent calls return nil immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	for ln := range s.listeners {
		ln.Close()
	}
	idle := s.idle
	busy := s.active > 0 || s.openTxs > 0
	s.mu.Unlock()

	// Grace period: let in-flight requests finish and open
	// transactions commit or roll back naturally.
	if busy {
		timer := time.NewTimer(s.cfg.DrainTimeout)
		defer timer.Stop()
		select {
		case <-idle:
		case <-timer.C:
		case <-ctx.Done():
		}
	}

	// Cancel whatever is still running; the query engine unwinds
	// within a page read and the executor sends the shutting-down
	// error frame.
	s.cancelBase(errDraining)

	// Close every connection: idle sessions are blocked in ReadFrame
	// and exit on the close; busy ones finish their (now cancelled)
	// request first.
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()

	// All sessions are gone; the database is quiescent. Make the
	// state durable and release the store.
	db := s.database()
	if _, err := db.Checkpoint(); err != nil && !errors.Is(err, probe.ErrClosed) {
		db.Close()
		return err
	}
	return db.Close()
}

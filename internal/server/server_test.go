package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"probe"
	"probe/client"
	"probe/internal/wire"
)

// testGrid is the 1024x1024 space every server test runs on.
func testGrid() probe.Grid { return probe.MustGrid(2, 10) }

func randPoints(rng *rand.Rand, n int, idBase uint64) []probe.Point {
	pts := make([]probe.Point, n)
	for i := range pts {
		pts[i] = probe.Pt2(idBase+uint64(i), uint32(rng.Intn(1024)), uint32(rng.Intn(1024)))
	}
	return pts
}

// startServer opens a durable database at a temp path, seeds it,
// starts a server on a loopback listener, and returns everything a
// test needs. Shutdown is NOT registered as cleanup: tests own it.
func startServer(t *testing.T, cfg Config, seed []probe.Point) (*Server, string, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db")
	db, err := probe.Open(testGrid(), probe.WithDurability(path), probe.WithPoolPages(64))
	if err != nil {
		t.Fatal(err)
	}
	if len(seed) > 0 {
		if err := db.InsertAll(seed); err != nil {
			t.Fatal(err)
		}
	}
	srv := New(db, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Shutdown(context.Background()) })
	return srv, ln.Addr().String(), path
}

func dial(t *testing.T, addr string) *client.Conn {
	t.Helper()
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func sortPoints(pts []probe.Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].ID != pts[j].ID {
			return pts[i].ID < pts[j].ID
		}
		return false
	})
}

func samePoints(t *testing.T, what string, got, want []probe.Point) {
	t.Helper()
	sortPoints(got)
	sortPoints(want)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d points, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("%s: point %d: got id %d, want %d", what, i, got[i].ID, want[i].ID)
		}
	}
}

func sortPairs(ps []probe.Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
}

// boxesOverlap is the brute-force oracle for the shipped-relation
// join: element decomposition at full resolution makes the join
// exactly box intersection.
func boxesOverlap(a, b client.BoxItem) bool {
	for d := range a.Lo {
		if a.Hi[d] < b.Lo[d] || b.Hi[d] < a.Lo[d] {
			return false
		}
	}
	return true
}

// TestEndToEndMixedWorkload is the acceptance test: 8 concurrent
// client connections run mixed INSERT then RANGE/JOIN/NNEAREST
// against a durable store; every query result must equal the direct
// library call (or the brute-force oracle); the drain checkpoints and
// the store reopens clean.
func TestEndToEndMixedWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	seed := randPoints(rng, 4000, 0)
	srv, addr, path := startServer(t, Config{MaxInflight: 16, BatchSize: 64}, seed)
	db := srv.DB()

	const conns = 8

	// Phase 1: each connection inserts its own disjoint id block.
	var wg sync.WaitGroup
	insErr := make([]error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := client.Dial(addr)
			if err != nil {
				insErr[i] = err
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(100 + i)))
			pts := randPoints(rng, 100, uint64(10000+i*1000))
			if _, err := cl.Insert(context.Background(), pts); err != nil {
				insErr[i] = err
			}
		}(i)
	}
	wg.Wait()
	for i, err := range insErr {
		if err != nil {
			t.Fatalf("conn %d insert: %v", i, err)
		}
	}
	if got, want := db.Len(), 4000+conns*100; got != want {
		t.Fatalf("after inserts: Len = %d, want %d", got, want)
	}

	// Direct library answers, computed once on the now-stable state.
	type rangeCase struct {
		lo, hi []uint32
		want   []probe.Point
	}
	cases := make([]rangeCase, conns)
	for i := range cases {
		lo := []uint32{uint32(i * 100), uint32(i * 50)}
		hi := []uint32{lo[0] + 400, lo[1] + 500}
		box, err := probe.NewBox(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := db.RangeSearch(box)
		if err != nil {
			t.Fatal(err)
		}
		cases[i] = rangeCase{lo: lo, hi: hi, want: want}
	}
	q := []uint32{512, 512}
	wantNbs, _, err := db.Nearest(q, 10, probe.Euclidean)
	if err != nil {
		t.Fatal(err)
	}

	// A join relation pair and its brute-force oracle.
	jrng := rand.New(rand.NewSource(7))
	mkRel := func(n int, base uint64) []client.BoxItem {
		items := make([]client.BoxItem, n)
		for i := range items {
			x, y := uint32(jrng.Intn(900)), uint32(jrng.Intn(900))
			items[i] = client.BoxItem{
				ID: base + uint64(i),
				Lo: []uint32{x, y},
				Hi: []uint32{x + uint32(jrng.Intn(100)), y + uint32(jrng.Intn(100))},
			}
		}
		return items
	}
	relA, relB := mkRel(40, 0), mkRel(40, 1000)
	var wantPairs []probe.Pair
	for _, a := range relA {
		for _, b := range relB {
			if boxesOverlap(a, b) {
				wantPairs = append(wantPairs, probe.Pair{A: a.ID, B: b.ID})
			}
		}
	}
	sortPairs(wantPairs)

	// Phase 2: concurrent mixed queries, each checked against the
	// direct answer.
	qErr := make([]error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := client.Dial(addr)
			if err != nil {
				qErr[i] = err
				return
			}
			defer cl.Close()
			ctx := context.Background()
			for iter := 0; iter < 6; iter++ {
				c := cases[(i+iter)%len(cases)]
				got, _, err := cl.Range(ctx, c.lo, c.hi)
				if err != nil {
					qErr[i] = fmt.Errorf("range: %w", err)
					return
				}
				if len(got) != len(c.want) {
					qErr[i] = fmt.Errorf("range: got %d points, want %d", len(got), len(c.want))
					return
				}
				switch iter % 3 {
				case 0:
					workers := 0
					if i%2 == 1 {
						workers = 4
					}
					pairs, _, err := cl.Join(ctx, relA, relB, workers)
					if err != nil {
						qErr[i] = fmt.Errorf("join: %w", err)
						return
					}
					sortPairs(pairs)
					if len(pairs) != len(wantPairs) {
						qErr[i] = fmt.Errorf("join: got %d pairs, want %d", len(pairs), len(wantPairs))
						return
					}
					for j := range pairs {
						if pairs[j] != wantPairs[j] {
							qErr[i] = fmt.Errorf("join: pair %d: got %v, want %v", j, pairs[j], wantPairs[j])
							return
						}
					}
				case 1:
					nbs, _, err := cl.Nearest(ctx, q, 10, probe.Euclidean)
					if err != nil {
						qErr[i] = fmt.Errorf("nearest: %w", err)
						return
					}
					if len(nbs) != len(wantNbs) {
						qErr[i] = fmt.Errorf("nearest: got %d, want %d", len(nbs), len(wantNbs))
						return
					}
					for j := range nbs {
						if nbs[j].Point.ID != wantNbs[j].Point.ID {
							qErr[i] = fmt.Errorf("nearest: rank %d: got id %d, want %d",
								j, nbs[j].Point.ID, wantNbs[j].Point.ID)
							return
						}
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range qErr {
		if err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
	}

	// One checked full-result range via the client for exact identity.
	cl := dial(t, addr)
	got, _, err := cl.Range(context.Background(), cases[0].lo, cases[0].hi)
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, "final range", got, cases[0].want)

	// Drain, then reopen: the checkpointed store must carry everything.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	db2, err := probe.Open(testGrid(), probe.WithDurability(path))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if got, want := db2.Len(), 4000+conns*100; got != want {
		t.Fatalf("reopened Len = %d, want %d", got, want)
	}
	box, _ := probe.NewBox(cases[0].lo, cases[0].hi)
	reGot, _, err := db2.RangeSearch(box)
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, "reopened range", reGot, cases[0].want)
}

// TestOverloadFailFast pins admission control deterministically: with
// every slot held, a request is rejected immediately with the typed
// overloaded error; freeing a slot lets the retry through.
func TestOverloadFailFast(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	srv, addr, _ := startServer(t, Config{MaxInflight: 2}, randPoints(rng, 100, 0))
	cl := dial(t, addr)

	// Hold both slots the way executing requests would.
	if !srv.beginRequest() || !srv.beginRequest() {
		t.Fatal("could not claim admission slots")
	}
	_, _, err := cl.Range(context.Background(), []uint32{0, 0}, []uint32{1023, 1023})
	if !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("saturated server: got %v, want ErrOverloaded", err)
	}
	if got := srv.Metrics().Int("server.rejected").Value(); got == 0 {
		t.Fatal("server.rejected not bumped")
	}

	srv.endRequest()
	if _, _, err := cl.Range(context.Background(), []uint32{0, 0}, []uint32{1023, 1023}); err != nil {
		t.Fatalf("after freeing a slot: %v", err)
	}
	srv.endRequest()
}

// TestClientCancelMidStream: cancelling the context mid-stream stops
// the server-side query (typed canceled error), and the session stays
// fully usable for the next request. The session runs over an
// unbuffered net.Pipe so the server is deterministically still
// streaming when the CANCEL frame lands — no TCP buffering race.
func TestClientCancelMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seed := randPoints(rng, 20000, 0)
	srv, _, _ := startServer(t, Config{BatchSize: 16}, seed)
	cs, ssConn := net.Pipe()
	t.Cleanup(func() { cs.Close(); ssConn.Close() })
	go newSession(srv, ssConn).run()
	cl, err := client.NewConn(cs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	_, err = cl.RangeFunc(ctx, []uint32{0, 0}, []uint32{1023, 1023}, 0, func(probe.Point) bool {
		n++
		if n == 5 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, client.ErrCanceled) && !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query: got %v, want canceled", err)
	}

	// The same connection serves the next query completely.
	got, _, err := cl.Range(context.Background(), []uint32{0, 0}, []uint32{1023, 1023})
	if err != nil {
		t.Fatalf("query after cancel: %v", err)
	}
	if len(got) != srv.DB().Len() {
		t.Fatalf("query after cancel: got %d points, want %d", len(got), srv.DB().Len())
	}
	if srv.Metrics().Int("server.cancelled").Value() == 0 {
		t.Fatal("server.cancelled not bumped")
	}
}

// TestConsumerStopMidStream: the client-side fn returning false ends
// the stream without error, mirroring the library's RangeSearchFunc.
func TestConsumerStopMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	_, addr, _ := startServer(t, Config{BatchSize: 16}, randPoints(rng, 20000, 0))
	cl := dial(t, addr)

	n := 0
	_, err := cl.RangeFunc(context.Background(), []uint32{0, 0}, []uint32{1023, 1023}, 0, func(probe.Point) bool {
		n++
		return n < 10
	})
	if err != nil {
		t.Fatalf("early stop: %v", err)
	}
	if n != 10 {
		t.Fatalf("fn called %d times, want 10", n)
	}
	if _, _, err := cl.Range(context.Background(), []uint32{0, 0}, []uint32{50, 50}); err != nil {
		t.Fatalf("query after early stop: %v", err)
	}
}

// TestShutdownDrains: shutting down mid-traffic produces only typed
// or transport errors on clients, Shutdown itself returns clean, and
// the checkpointed store reopens with everything.
func TestShutdownDrains(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	seed := randPoints(rng, 5000, 0)
	srv, addr, path := startServer(t, Config{DrainTimeout: 2 * time.Second, BatchSize: 64}, seed)

	stop := make(chan error, 1)
	go func() {
		cl, err := client.Dial(addr)
		if err != nil {
			stop <- err
			return
		}
		defer cl.Close()
		for {
			if _, _, err := cl.Range(context.Background(), []uint32{0, 0}, []uint32{1023, 1023}); err != nil {
				stop <- err
				return
			}
		}
	}()

	time.Sleep(100 * time.Millisecond) // let a few queries through
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	err := <-stop
	if err == nil {
		t.Fatal("client loop ended without error")
	}
	if !errors.Is(err, client.ErrShuttingDown) && !errors.Is(err, client.ErrCanceled) &&
		!isTransport(err) {
		t.Fatalf("drain-time client error: %v (type %T)", err, err)
	}

	db2, err := probe.Open(testGrid(), probe.WithDurability(path))
	if err != nil {
		t.Fatalf("reopen after drain: %v", err)
	}
	defer db2.Close()
	if db2.Len() != 5000 {
		t.Fatalf("reopened Len = %d, want 5000", db2.Len())
	}
}

func isTransport(err error) bool {
	var ne net.Error
	return errors.Is(err, net.ErrClosed) || errors.As(err, &ne) ||
		strings.Contains(err.Error(), "EOF") || strings.Contains(err.Error(), "reset")
}

// TestExplainStatsCheckpoint exercises the three non-streaming verbs.
func TestExplainStatsCheckpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	_, addr, _ := startServer(t, Config{}, randPoints(rng, 500, 0))
	cl := dial(t, addr)
	ctx := context.Background()

	plan, err := cl.Explain(ctx, []uint32{0, 0}, []uint32{100, 100})
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if !strings.Contains(plan, "scan") {
		t.Fatalf("explain plan %q does not name an access path", plan)
	}

	if _, err := cl.Checkpoint(ctx); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	// The structured snapshot carries both registries: server-side
	// request counters and database operation counters, with the
	// latency histogram summaries the registry flattens in.
	if got := stats["server.server.requests"]; got < 2 {
		t.Fatalf("server.server.requests = %d, want >= 2 (explain + checkpoint ran)", got)
	}
	if _, ok := stats["db.checkpoint.count"]; !ok {
		t.Fatalf("stats %v missing db.checkpoint.count", stats)
	}
	if got := stats["server.server.latency.explain.count"]; got != 1 {
		t.Fatalf("explain latency histogram count = %d, want 1", got)
	}
}

// TestHandshakeVersionMismatch: a wrong major version is refused with
// the typed code before any request runs.
func TestHandshakeVersionMismatch(t *testing.T) {
	_, addr, _ := startServer(t, Config{}, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.MsgHello, wire.Hello{Major: 99}.Encode()); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.MsgError {
		t.Fatalf("got frame 0x%02x, want error", typ)
	}
	em, err := wire.DecodeErrorMsg(payload)
	if err != nil {
		t.Fatal(err)
	}
	if em.Code != wire.CodeVersion {
		t.Fatalf("got code %d, want version mismatch", em.Code)
	}
}

// TestPipeliningRejected: a second request while one is in flight is
// answered with a bad-request error carrying the new request's id,
// and the first request still completes.
func TestPipeliningRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	_, addr, _ := startServer(t, Config{BatchSize: 16}, randPoints(rng, 20000, 0))
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.MsgHello, wire.Hello{Major: wire.VersionMajor}.Encode()); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wire.ReadFrame(conn); err != nil || typ != wire.MsgWelcome {
		t.Fatalf("handshake: type 0x%02x err %v", typ, err)
	}
	big := wire.RangeReq{Header: wire.Header{ID: 1},
		Lo: []uint32{0, 0}, Hi: []uint32{1023, 1023}}
	if err := wire.WriteFrame(conn, wire.MsgRange, big.Encode()); err != nil {
		t.Fatal(err)
	}
	second := wire.RangeReq{Header: wire.Header{ID: 2},
		Lo: []uint32{0, 0}, Hi: []uint32{10, 10}}
	if err := wire.WriteFrame(conn, wire.MsgRange, second.Encode()); err != nil {
		t.Fatal(err)
	}
	var sawReject, sawDone bool
	for !sawDone {
		typ, payload, err := wire.ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		switch typ {
		case wire.MsgError:
			em, err := wire.DecodeErrorMsg(payload)
			if err != nil {
				t.Fatal(err)
			}
			if em.ID == 2 && em.Code == wire.CodeBadRequest {
				sawReject = true
			} else if em.ID == 1 {
				t.Fatalf("first request failed: %s", em.Msg)
			}
		case wire.MsgDone:
			dn, err := wire.DecodeDone(payload)
			if err != nil {
				t.Fatal(err)
			}
			if dn.ID == 1 {
				sawDone = true
			}
		}
	}
	if !sawReject {
		t.Fatal("pipelined request was not rejected")
	}
}

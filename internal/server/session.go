package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"probe"
	"probe/internal/core"
	"probe/internal/decompose"
	"probe/internal/geom"
	"probe/internal/wire"
)

// session is the server side of one connection: a reader goroutine
// feeding frames to the session loop, which executes at most one
// request at a time in its own goroutine while staying responsive to
// CANCEL frames.
type session struct {
	srv  *Server
	conn net.Conn

	// writeMu serializes response frames: the executor goroutine
	// streams batches while the session loop may emit protocol errors.
	writeMu sync.Mutex

	frames chan frameMsg

	// minor is the client's protocol minor from its Hello; it gates
	// the minor-1 response forms (STATSKV instead of TEXT) and the
	// minor-2 transaction opcodes.
	minor uint8

	// tx is the session's open transaction, nil outside BEGIN…COMMIT/
	// ROLLBACK. The executor goroutine uses it during a request; the
	// session loop rolls it back on idle timeout or disconnect, which
	// it only does while no request is in flight — txMu guards the
	// pointer itself so those handoffs are race-free.
	// txAborted latches when the server kills the transaction (idle
	// timeout) so later statements fail loudly instead of silently
	// running in auto-commit mode; BEGIN, COMMIT, and ROLLBACK clear
	// it.
	txMu      sync.Mutex
	tx        *probe.Tx
	txAborted bool

	// root is the session's span: every request's work is attributed
	// to a child operator span, so the session trace is the full
	// I/O-attributed history of the connection. Folded into the
	// server's metrics registry when the session ends.
	root *probe.Trace

	// respDone flips true when the executor starts writing the
	// in-flight request's final frame. From that instant a conforming
	// client may already have the answer and pipeline its next request
	// ahead of the executor's done signal — the session loop uses this
	// to wait out the bookkeeping gap instead of mis-reading the race
	// as a pipelining violation.
	respDone atomic.Bool
}

type frameMsg struct {
	typ     uint8
	payload []byte
}

func newSession(srv *Server, conn net.Conn) *session {
	return &session{
		srv:    srv,
		conn:   conn,
		frames: make(chan frameMsg, 4),
		root:   probe.NewTrace("session"),
	}
}

// currentTx returns the session's open transaction, nil if none.
func (ss *session) currentTx() *probe.Tx {
	ss.txMu.Lock()
	defer ss.txMu.Unlock()
	return ss.tx
}

// txState returns the open transaction and whether a previous one was
// aborted by the server without the client's acknowledgement.
func (ss *session) txState() (*probe.Tx, bool) {
	ss.txMu.Lock()
	defer ss.txMu.Unlock()
	return ss.tx, ss.txAborted
}

// setTx installs a freshly begun transaction, clearing any stale
// aborted latch.
func (ss *session) setTx(tx *probe.Tx) {
	ss.txMu.Lock()
	ss.tx = tx
	ss.txAborted = false
	ss.txMu.Unlock()
}

// latchAborted records a server-side abort the client has not seen.
func (ss *session) latchAborted() {
	ss.txMu.Lock()
	ss.txAborted = true
	ss.txMu.Unlock()
}

// ackAborted clears the aborted latch, reporting whether it was set —
// COMMIT and ROLLBACK acknowledge the abort.
func (ss *session) ackAborted() bool {
	ss.txMu.Lock()
	defer ss.txMu.Unlock()
	was := ss.txAborted
	ss.txAborted = false
	return was
}

// takeTx detaches the open transaction from the session, nil if none.
// The caller owns ending it (and calling srv.txEnded).
func (ss *session) takeTx() *probe.Tx {
	ss.txMu.Lock()
	defer ss.txMu.Unlock()
	tx := ss.tx
	ss.tx = nil
	return tx
}

// abortTx rolls back the open transaction, if any — the disconnect,
// idle-timeout, and session-exit path.
func (ss *session) abortTx() {
	if tx := ss.takeTx(); tx != nil {
		tx.Rollback()
		ss.srv.txEnded()
	}
}

// send writes one response frame under the write mutex with the
// configured write deadline.
func (ss *session) send(typ uint8, payload []byte) error {
	ss.writeMu.Lock()
	defer ss.writeMu.Unlock()
	ss.conn.SetWriteDeadline(time.Now().Add(ss.srv.cfg.WriteTimeout))
	return wire.WriteFrame(ss.conn, typ, payload)
}

func (ss *session) sendError(id uint32, code uint8, msg string) {
	ss.send(wire.MsgError, wire.ErrorMsg{ID: id, Code: code, Msg: msg}.Encode())
}

// peekID extracts the request id every request payload leads with, so
// even a request rejected before decoding gets a correctly-addressed
// error frame.
func peekID(payload []byte) uint32 {
	if len(payload) < 4 {
		return 0
	}
	return binary.LittleEndian.Uint32(payload)
}

// run drives the session to completion. The caller closes the
// connection afterwards; run additionally closes it on its own exit
// paths so the reader goroutine always unblocks.
func (ss *session) run() {
	defer func() {
		ss.abortTx() // a transaction never outlives its connection
		ss.conn.Close()
		for range ss.frames {
			// Drain so the reader goroutine can exit.
		}
		ss.root.End()
		ss.srv.metrics.AddSpan("session", ss.root)
	}()

	// Reader goroutine: frames in, closed on any read error.
	go func() {
		defer close(ss.frames)
		for {
			typ, payload, err := wire.ReadFrame(ss.conn)
			if err != nil {
				return
			}
			ss.frames <- frameMsg{typ: typ, payload: payload}
		}
	}()

	if !ss.handshake() {
		return
	}

	// txTimer enforces Config.TxIdleTimeout: it is (re-)armed whenever
	// a request finishes with a transaction open, and fires only while
	// no request is in flight — the executor goroutine owns the
	// transaction during a request, so the loop never ends it mid-use.
	txTimer := time.NewTimer(ss.srv.cfg.TxIdleTimeout)
	if !txTimer.Stop() {
		<-txTimer.C
	}
	defer txTimer.Stop()
	armTxTimer := func() {
		if !txTimer.Stop() {
			select {
			case <-txTimer.C:
			default:
			}
		}
		if ss.currentTx() != nil {
			txTimer.Reset(ss.srv.cfg.TxIdleTimeout)
		}
	}

	var (
		reqDone   chan struct{} // non-nil while a request executes
		cancelReq context.CancelCauseFunc
		inflight  uint32 // id of the executing request
	)
	for {
		select {
		case f, ok := <-ss.frames:
			if !ok {
				// Connection gone. Cancel any running request — its
				// results have nowhere to go — and wait it out so the
				// admission slot is released before the session ends.
				if reqDone != nil {
					cancelReq(errClientCancel)
					<-reqDone
					cancelReq(context.Canceled)
				}
				return
			}
			switch f.typ {
			case wire.MsgCancel:
				c, err := wire.DecodeCancel(f.payload)
				if err != nil {
					ss.sendError(0, wire.CodeBadRequest, "malformed cancel")
					continue
				}
				if reqDone != nil && c.ID == inflight {
					ss.srv.metrics.Int("server.cancelled").Add(1)
					cancelReq(errClientCancel)
				}
			case wire.MsgRange, wire.MsgNearest, wire.MsgJoin, wire.MsgInsert,
				wire.MsgCheckpoint, wire.MsgExplain, wire.MsgStats,
				wire.MsgDelete, wire.MsgBegin, wire.MsgCommit, wire.MsgRollback,
				wire.MsgQuery:
				recv := time.Now()
				id := peekID(f.payload)
				if need := minorRequired(f.typ); need > 0 && ss.minor < need {
					ss.sendError(id, wire.CodeBadRequest,
						fmt.Sprintf("opcode 0x%02x requires protocol minor >= %d (client said %d)", f.typ, need, ss.minor))
					continue
				}
				if ss.srv.cfg.ReadOnly && mutatingOp(f.typ) {
					ss.sendError(id, wire.CodeReadOnly,
						"server is read-only (replica); send writes to the primary")
					continue
				}
				if reqDone != nil && ss.respDone.Load() {
					// The previous request's final frame is already on the
					// wire — only executor bookkeeping separates us from its
					// done signal, and the client was entitled to send this
					// request the moment it read that frame. Wait the signal
					// out rather than mis-typing a conforming client as a
					// pipeliner.
					<-reqDone
					cancelReq(context.Canceled)
					reqDone, cancelReq = nil, nil
					armTxTimer()
				}
				if reqDone != nil {
					ss.sendError(id, wire.CodeBadRequest,
						fmt.Sprintf("request %d is still in flight on this connection", inflight))
					continue
				}
				// Drain: reject new work, but a session holding an open
				// transaction may keep going through the grace window so
				// it can finish and COMMIT (or ROLLBACK) cleanly.
				if ss.srv.isDraining() && ss.currentTx() == nil {
					ss.sendError(id, wire.CodeShuttingDown, "server is shutting down")
					continue
				}
				if !ss.srv.beginRequest() {
					ss.sendError(id, wire.CodeOverloaded,
						fmt.Sprintf("server at its in-flight limit (%d); retry later", ss.srv.cfg.MaxInflight))
					continue
				}
				ctx, cancel := context.WithCancelCause(ss.srv.baseCtx)
				done := make(chan struct{})
				ss.respDone.Store(false)
				reqDone, cancelReq, inflight = done, cancel, id
				typ, payload := f.typ, f.payload
				go func() {
					defer close(done)
					defer ss.srv.endRequest()
					ss.execute(ctx, typ, payload, recv)
				}()
			default:
				ss.sendError(0, wire.CodeBadRequest,
					fmt.Sprintf("unexpected frame type 0x%02x", f.typ))
			}
		case <-reqDone:
			cancelReq(context.Canceled) // release the context's resources
			reqDone, cancelReq = nil, nil
			armTxTimer()
		case <-txTimer.C:
			if reqDone != nil {
				// A request slipped in; re-check after it finishes.
				armTxTimer()
				continue
			}
			if tx := ss.takeTx(); tx != nil {
				tx.Rollback()
				ss.srv.txEnded()
				ss.latchAborted()
				ss.srv.metrics.Int("server.tx_idle_aborts").Add(1)
			}
		}
	}
}

// minorRequired returns the minimum protocol minor an opcode needs (0
// when every 1.x client may send it). Gated opcodes from an older
// client are rejected before their payload is decoded.
func minorRequired(typ uint8) uint8 {
	switch typ {
	case wire.MsgDelete, wire.MsgBegin, wire.MsgCommit, wire.MsgRollback:
		return 2
	case wire.MsgQuery:
		return 3
	}
	return 0
}

// mutatingOp reports opcodes a read-only (replica) server refuses:
// anything that writes the database or opens a transaction that
// could. QUERY is read-only by construction (SELECT only).
func mutatingOp(typ uint8) bool {
	switch typ {
	case wire.MsgInsert, wire.MsgDelete, wire.MsgCheckpoint, wire.MsgBegin:
		return true
	}
	return false
}

// handshake expects the client's Hello as the first frame and answers
// Welcome with the grid shape; a major-version mismatch gets a typed
// error and closes the session.
func (ss *session) handshake() bool {
	f, ok := <-ss.frames
	if !ok {
		return false
	}
	if f.typ != wire.MsgHello {
		ss.sendError(0, wire.CodeBadRequest, "expected HELLO")
		return false
	}
	hello, err := wire.DecodeHello(f.payload)
	if err != nil {
		ss.sendError(0, wire.CodeBadRequest, err.Error())
		return false
	}
	if hello.Major != wire.VersionMajor {
		ss.sendError(0, wire.CodeVersion,
			fmt.Sprintf("protocol major version %d not supported (server speaks %d)", hello.Major, wire.VersionMajor))
		return false
	}
	ss.minor = hello.Minor
	g := ss.srv.database().Grid()
	bits := make([]uint32, g.Dims())
	for i := range bits {
		bits[i] = uint32(g.BitsOf(i))
	}
	return ss.send(wire.MsgWelcome, wire.Welcome{
		Major: wire.VersionMajor, Minor: wire.VersionMinor, Bits: bits,
	}.Encode()) == nil
}

// execute runs one admitted request to completion, sending its Done
// or Error frame, then records its telemetry (histograms, log line).
// It runs in its own goroutine; recv is when the session loop
// dequeued the frame, the anchor of the timing breakdown.
func (ss *session) execute(ctx context.Context, typ uint8, payload []byte, recv time.Time) {
	ss.srv.metrics.Int("server.requests").Add(1)
	rq := &request{
		id:    peekID(payload),
		op:    opName(typ),
		recv:  recv,
		start: time.Now(),
		span:  ss.root.Child(opName(typ)),
	}
	switch typ {
	case wire.MsgRange:
		ss.handleRange(ctx, rq, payload)
	case wire.MsgNearest:
		ss.handleNearest(ctx, rq, payload)
	case wire.MsgJoin:
		ss.handleJoin(ctx, rq, payload)
	case wire.MsgInsert:
		ss.handleInsert(ctx, rq, payload)
	case wire.MsgCheckpoint:
		ss.handleCheckpoint(ctx, rq, payload)
	case wire.MsgExplain:
		ss.handleExplain(ctx, rq, payload)
	case wire.MsgStats:
		ss.handleStats(ctx, rq, payload)
	case wire.MsgDelete:
		ss.handleDelete(ctx, rq, payload)
	case wire.MsgBegin:
		ss.handleBegin(ctx, rq, payload)
	case wire.MsgCommit:
		ss.handleCommit(ctx, rq, payload)
	case wire.MsgRollback:
		ss.handleRollback(ctx, rq, payload)
	case wire.MsgQuery:
		ss.handleQuery(ctx, rq, payload)
	}
	ss.finish(rq)
}

// withTimeout applies a request's timeout_ms to its context.
func withTimeout(ctx context.Context, ms uint32) (context.Context, context.CancelFunc) {
	if ms == 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
}

// strategyOf maps the wire strategy byte (0 = server default) to a
// core strategy.
func strategyOf(b uint8) (probe.Strategy, error) {
	switch b {
	case 0:
		return probe.MergeLazy, nil
	case 1:
		return probe.MergeDecomposed, nil
	case 2:
		return probe.MergeLazy, nil
	case 3:
		return probe.SkipBigMin, nil
	default:
		return 0, fmt.Errorf("unknown strategy %d", b)
	}
}

// boxOf validates wire bounds against the server's grid.
func (ss *session) boxOf(lo, hi []uint32) (probe.Box, error) {
	if len(lo) != ss.srv.database().Grid().Dims() {
		return probe.Box{}, fmt.Errorf("box has %d dimensions, database has %d",
			len(lo), ss.srv.database().Grid().Dims())
	}
	return probe.NewBox(lo, hi)
}

// statsArray flattens QueryStats into the Done stats array (see the
// wire.Stat* indices).
func statsArray(qs probe.QueryStats) []uint64 {
	a := make([]uint64, wire.NumStats)
	a[wire.StatDataPages] = uint64(qs.DataPages)
	a[wire.StatSeeks] = uint64(qs.Seeks)
	a[wire.StatElements] = uint64(qs.Elements)
	a[wire.StatResults] = uint64(qs.Results)
	a[wire.StatLeftItems] = uint64(qs.LeftItems)
	a[wire.StatRightItems] = uint64(qs.RightItems)
	a[wire.StatRawPairs] = uint64(qs.RawPairs)
	a[wire.StatDistinctPairs] = uint64(qs.DistinctPairs)
	a[wire.StatShards] = uint64(qs.Shards)
	a[wire.StatReplicatedItems] = uint64(qs.ReplicatedItems)
	a[wire.StatPoolGets] = qs.PoolGets
	a[wire.StatPoolHits] = qs.PoolHits
	a[wire.StatPoolMisses] = qs.PoolMisses
	a[wire.StatPhysReads] = qs.PhysReads
	a[wire.StatPhysWrites] = qs.PhysWrites
	a[wire.StatWALAppends] = qs.WALAppends
	a[wire.StatWALSyncs] = qs.WALSyncs
	return a
}

func (ss *session) handleRange(ctx context.Context, rq *request, payload []byte) {
	req, err := wire.DecodeRangeReq(payload)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	rq.setHeader(req.Header)
	strat, err := strategyOf(req.Strategy)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	box, err := ss.boxOf(req.Lo, req.Hi)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	ctx, stop := withTimeout(ctx, req.TimeoutMS)
	defer stop()
	rq.markPlanned()

	dims := uint32(ss.srv.database().Grid().Dims())
	batch := make([]wire.Point, 0, ss.srv.cfg.BatchSize)
	var writeErr error
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		writeErr = ss.sendTimed(rq, wire.MsgBatch, wire.Batch{
			ID: req.ID, Kind: wire.KindPoints, Dims: dims, Points: batch,
		}.Encode())
		batch = batch[:0]
		return writeErr == nil
	}
	each := func(p probe.Point) bool {
		batch = append(batch, wire.Point{ID: p.ID, Coords: p.Coords})
		if len(batch) == cap(batch) {
			return flush()
		}
		return true
	}
	var qs probe.QueryStats
	tx, aborted := ss.txState()
	if tx == nil && aborted {
		ss.failReq(ctx, rq, probe.ErrTxAborted)
		return
	}
	if tx != nil {
		// Inside the session's transaction: the search runs on the
		// pinned snapshot with the write-set overlaid.
		qs, err = tx.RangeSearchFunc(box, each,
			probe.WithContext(ctx), probe.WithStrategy(strat))
	} else {
		qs, err = ss.srv.database().RangeSearchFunc(box, each,
			rq.queryOpts(ctx, probe.WithStrategy(strat))...)
	}
	if writeErr != nil {
		return // connection is gone; nothing more to say
	}
	if err != nil {
		ss.failReq(ctx, rq, err)
		return
	}
	if !flush() {
		return
	}
	ss.sendDone(rq, qs)
}

func (ss *session) handleNearest(ctx context.Context, rq *request, payload []byte) {
	req, err := wire.DecodeNearestReq(payload)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	rq.setHeader(req.Header)
	if len(req.Q) != ss.srv.database().Grid().Dims() {
		ss.reject(rq, fmt.Sprintf("query point has %d dimensions, database has %d", len(req.Q), ss.srv.database().Grid().Dims()))
		return
	}
	var metric probe.Metric
	switch req.Metric {
	case 0:
		metric = probe.Chebyshev
	case 1:
		metric = probe.Euclidean
	default:
		ss.reject(rq, fmt.Sprintf("unknown metric %d", req.Metric))
		return
	}
	ctx, stop := withTimeout(ctx, req.TimeoutMS)
	defer stop()
	rq.markPlanned()

	var nbs []probe.Neighbor
	var qs probe.QueryStats
	tx, aborted := ss.txState()
	if tx == nil && aborted {
		ss.failReq(ctx, rq, probe.ErrTxAborted)
		return
	}
	if tx != nil {
		nbs, qs, err = tx.Nearest(req.Q, int(req.M), metric, probe.WithContext(ctx))
	} else {
		nbs, qs, err = ss.srv.database().Nearest(req.Q, int(req.M), metric, rq.queryOpts(ctx)...)
	}
	if err != nil {
		ss.failReq(ctx, rq, err)
		return
	}
	dims := uint32(ss.srv.database().Grid().Dims())
	for off := 0; off < len(nbs); off += ss.srv.cfg.BatchSize {
		end := min(off+ss.srv.cfg.BatchSize, len(nbs))
		out := make([]wire.Neighbor, 0, end-off)
		for _, n := range nbs[off:end] {
			out = append(out, wire.Neighbor{
				Point: wire.Point{ID: n.Point.ID, Coords: n.Point.Coords},
				Dist:  n.Dist,
			})
		}
		if ss.sendTimed(rq, wire.MsgBatch, wire.Batch{
			ID: req.ID, Kind: wire.KindNeighbors, Dims: dims, Neighbors: out,
		}.Encode()) != nil {
			return
		}
	}
	ss.sendDone(rq, qs)
}

func (ss *session) handleJoin(ctx context.Context, rq *request, payload []byte) {
	req, err := wire.DecodeJoinReq(payload)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	rq.setHeader(req.Header)
	ctx, stop := withTimeout(ctx, req.TimeoutMS)
	defer stop()

	g := ss.srv.database().Grid()
	decomposeRel := func(items []wire.JoinItem) ([]core.Item, error) {
		var out []core.Item
		for _, it := range items {
			box, err := geom.NewBox(it.Lo, it.Hi)
			if err != nil {
				return nil, err
			}
			if box.Dims() != g.Dims() {
				return nil, fmt.Errorf("join item %d has %d dimensions, database has %d", it.ID, box.Dims(), g.Dims())
			}
			for _, el := range decompose.Box(g, box) {
				out = append(out, core.Item{Elem: el, ID: it.ID})
			}
		}
		core.SortItems(out)
		return out, nil
	}
	a, err := decomposeRel(req.A)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	b, err := decomposeRel(req.B)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	rq.markPlanned()
	opts := []probe.JoinOption{probe.WithContext(ctx), probe.WithTrace(rq.span)}
	if req.Workers > 0 {
		opts = append(opts, probe.WithWorkers(int(req.Workers)))
	}
	pairs, qs, err := probe.SpatialJoin(a, b, opts...)
	if err != nil {
		ss.failReq(ctx, rq, err)
		return
	}
	for off := 0; off < len(pairs); off += ss.srv.cfg.BatchSize {
		end := min(off+ss.srv.cfg.BatchSize, len(pairs))
		out := make([][2]uint64, 0, end-off)
		for _, p := range pairs[off:end] {
			out = append(out, [2]uint64{p.A, p.B})
		}
		if ss.sendTimed(rq, wire.MsgBatch, wire.Batch{
			ID: req.ID, Kind: wire.KindPairs, Pairs: out,
		}.Encode()) != nil {
			return
		}
	}
	ss.sendDone(rq, qs)
}

func (ss *session) handleInsert(ctx context.Context, rq *request, payload []byte) {
	req, err := wire.DecodeInsertReq(payload)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	rq.setHeader(req.Header)
	if int(req.Dims) != ss.srv.database().Grid().Dims() {
		ss.reject(rq, fmt.Sprintf("points have %d dimensions, database has %d", req.Dims, ss.srv.database().Grid().Dims()))
		return
	}
	if err := ctx.Err(); err != nil {
		ss.failReq(ctx, rq, err)
		return
	}
	pts := make([]probe.Point, len(req.Points))
	for i, p := range req.Points {
		pts[i] = probe.Point{ID: p.ID, Coords: p.Coords}
	}
	rq.markPlanned()
	// Inserts run to completion once started: a half-applied batch is
	// worse than a late cancel, so only the pre-flight context check
	// above honors cancellation. Inside a transaction the batch only
	// buffers — the shared index is untouched until COMMIT.
	tx, aborted := ss.txState()
	if tx == nil && aborted {
		ss.failReq(ctx, rq, probe.ErrTxAborted)
		return
	}
	if tx != nil {
		err = tx.InsertAll(pts)
	} else {
		err = ss.srv.database().InsertAll(pts)
	}
	if err != nil {
		ss.failReq(ctx, rq, err)
		return
	}
	ss.sendDone(rq, probe.QueryStats{Results: len(pts)})
}

// handleDelete removes a batch of points (minor 2). Points already
// absent are not an error; DONE's StatResults counts those actually
// removed. Inside a transaction the deletions buffer into the
// write-set against the transaction's own view.
func (ss *session) handleDelete(ctx context.Context, rq *request, payload []byte) {
	req, err := wire.DecodeDeleteReq(payload)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	rq.setHeader(req.Header)
	if int(req.Dims) != ss.srv.database().Grid().Dims() {
		ss.reject(rq, fmt.Sprintf("points have %d dimensions, database has %d", req.Dims, ss.srv.database().Grid().Dims()))
		return
	}
	if err := ctx.Err(); err != nil {
		ss.failReq(ctx, rq, err)
		return
	}
	rq.markPlanned()
	tx, aborted := ss.txState()
	if tx == nil && aborted {
		ss.failReq(ctx, rq, probe.ErrTxAborted)
		return
	}
	removed := 0
	for _, wp := range req.Points {
		p := probe.Point{ID: wp.ID, Coords: wp.Coords}
		var ok bool
		var err error
		if tx != nil {
			ok, err = tx.Delete(p)
		} else {
			ok, err = ss.srv.database().Delete(p)
		}
		if err != nil {
			ss.failReq(ctx, rq, err)
			return
		}
		if ok {
			removed++
		}
	}
	ss.sendDone(rq, probe.QueryStats{Results: removed})
}

// handleBegin opens the session's transaction. The transaction lives
// on the session's base context, not this request's, so it survives
// until COMMIT/ROLLBACK, disconnect, idle timeout, or the end of the
// drain grace window.
func (ss *session) handleBegin(ctx context.Context, rq *request, payload []byte) {
	req, err := wire.DecodeSimpleReq(payload)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	rq.setHeader(req.Header)
	if ss.currentTx() != nil {
		ss.reject(rq, "a transaction is already open on this connection")
		return
	}
	rq.markPlanned()
	tx, err := ss.srv.database().Begin(ss.srv.baseCtx)
	if err != nil {
		ss.failReq(ctx, rq, err)
		return
	}
	ss.setTx(tx)
	ss.srv.txBegan()
	ss.sendDone(rq, probe.QueryStats{})
}

// handleCommit commits the session's transaction. A lost
// first-committer-wins validation answers with the typed CONFLICT
// error; either way the transaction is over.
func (ss *session) handleCommit(ctx context.Context, rq *request, payload []byte) {
	req, err := wire.DecodeSimpleReq(payload)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	rq.setHeader(req.Header)
	tx := ss.takeTx()
	if tx == nil {
		if ss.ackAborted() {
			ss.failReq(ctx, rq, probe.ErrTxAborted)
		} else {
			ss.reject(rq, "no transaction is open on this connection")
		}
		return
	}
	rq.markPlanned()
	pending := tx.Pending()
	err = tx.Commit()
	ss.srv.txEnded()
	if err != nil {
		ss.failReq(ctx, rq, err)
		return
	}
	ss.sendDone(rq, probe.QueryStats{Results: pending})
}

// handleRollback discards the session's transaction.
func (ss *session) handleRollback(ctx context.Context, rq *request, payload []byte) {
	req, err := wire.DecodeSimpleReq(payload)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	rq.setHeader(req.Header)
	tx := ss.takeTx()
	if tx == nil {
		if ss.ackAborted() {
			// The server already rolled this transaction back (idle
			// timeout); the client's ROLLBACK lands on the same state
			// it asked for, so acknowledge rather than error.
			rq.markPlanned()
			ss.sendDone(rq, probe.QueryStats{})
		} else {
			ss.reject(rq, "no transaction is open on this connection")
		}
		return
	}
	rq.markPlanned()
	tx.Rollback()
	ss.srv.txEnded()
	ss.sendDone(rq, probe.QueryStats{})
}

// handleQuery runs one spatial SQL statement (minor 3). Outside a
// transaction the statement runs on one pinned snapshot of the newest
// committed index version; inside BEGIN…COMMIT it runs on the
// transaction's view — its snapshot plus its own buffered writes.
// SELECT answers with one SCHEMA frame, ROWS batches as the plan
// produces them, and DONE; EXPLAIN answers TEXT then DONE. Parse and
// plan failures come back as the typed PARSE/PLAN error codes, and a
// mid-stream cancel stops a streamable scan within about one page
// read.
func (ss *session) handleQuery(ctx context.Context, rq *request, payload []byte) {
	req, err := wire.DecodeQueryReq(payload)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	rq.setHeader(req.Header)
	ctx, stop := withTimeout(ctx, req.TimeoutMS)
	defer stop()

	tx, aborted := ss.txState()
	if tx == nil && aborted {
		ss.failReq(ctx, rq, probe.ErrTxAborted)
		return
	}
	var stmt *probe.Stmt
	if tx != nil {
		stmt, err = tx.Prepare(req.Text)
	} else {
		stmt, err = ss.srv.database().Prepare(req.Text)
	}
	if err != nil {
		var qe *probe.QueryError
		if errors.As(err, &qe) {
			code := uint8(wire.CodeParse)
			if qe.Kind == probe.QueryPlanError {
				code = wire.CodePlan
			}
			rq.errCode = code
			ss.respDone.Store(true)
			ss.sendError(rq.id, code, err.Error())
			return
		}
		ss.failReq(ctx, rq, err)
		return
	}
	rq.markPlanned()

	if stmt.IsExplain() {
		text, err := stmt.ExplainText(ctx)
		if err != nil {
			ss.failReq(ctx, rq, err)
			return
		}
		if ss.sendTimed(rq, wire.MsgText, wire.TextMsg{ID: req.ID, Text: text}.Encode()) != nil {
			return
		}
		ss.sendDone(rq, probe.QueryStats{})
		return
	}

	cols := stmt.Columns()
	wcols := make([]wire.SchemaCol, len(cols))
	types := make([]uint8, len(cols))
	for i, c := range cols {
		wcols[i] = wire.SchemaCol{Name: c.Name, Type: uint8(c.Type)}
		types[i] = uint8(c.Type)
	}
	if ss.sendTimed(rq, wire.MsgSchema, wire.SchemaMsg{ID: req.ID, Cols: wcols}.Encode()) != nil {
		return
	}
	var writeErr, encodeErr error
	batch := make([][]wire.RowValue, 0, ss.srv.cfg.BatchSize)
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		p, err := wire.RowsMsg{ID: req.ID, Types: types, Rows: batch}.Encode()
		if err != nil {
			encodeErr = err
			return false
		}
		if err := ss.sendTimed(rq, wire.MsgRows, p); err != nil {
			writeErr = err
			return false
		}
		batch = batch[:0]
		return true
	}
	qs, err := stmt.Run(ctx, func(row probe.QueryRow) bool {
		vals := make([]wire.RowValue, len(row))
		for i, v := range row {
			vals[i] = wire.RowValue(v)
		}
		batch = append(batch, vals)
		if len(batch) == cap(batch) {
			return flush()
		}
		return true
	})
	switch {
	case encodeErr != nil:
		ss.failReq(ctx, rq, encodeErr)
		return
	case writeErr != nil:
		return // connection is gone; nothing more to say
	case err != nil:
		ss.failReq(ctx, rq, err)
		return
	}
	if !flush() {
		return
	}
	ss.sendDone(rq, qs)
}

func (ss *session) handleCheckpoint(ctx context.Context, rq *request, payload []byte) {
	req, err := wire.DecodeSimpleReq(payload)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	rq.setHeader(req.Header)
	rq.markPlanned()
	qs, err := ss.srv.database().Checkpoint(probe.WithTrace(rq.span))
	if err != nil {
		ss.failReq(ctx, rq, err)
		return
	}
	ss.sendDone(rq, qs)
}

func (ss *session) handleExplain(ctx context.Context, rq *request, payload []byte) {
	req, err := wire.DecodeRangeReq(payload)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	rq.setHeader(req.Header)
	box, err := ss.boxOf(req.Lo, req.Hi)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	rq.markPlanned()
	plan, err := ss.srv.database().Explain(box)
	if err != nil {
		ss.failReq(ctx, rq, err)
		return
	}
	if ss.sendTimed(rq, wire.MsgText, wire.TextMsg{ID: req.ID, Text: plan}.Encode()) != nil {
		return
	}
	ss.sendDone(rq, probe.QueryStats{})
}

// handleStats snapshots the server's and the database's registries. A
// minor >= 1 client gets the structured STATSKV response — every
// metric flattened to a named int64 (histograms as .count/.p50/.p95/
// .p99/.max), "server."/"db." prefixed; a 1.0 client gets the legacy
// rendered-JSON TEXT blob.
func (ss *session) handleStats(ctx context.Context, rq *request, payload []byte) {
	req, err := wire.DecodeSimpleReq(payload)
	if err != nil {
		ss.reject(rq, err.Error())
		return
	}
	rq.setHeader(req.Header)
	rq.markPlanned()
	if ss.minor >= 1 {
		var kvs []wire.KV
		ss.srv.metrics.DoNumeric(func(name string, v int64) {
			kvs = append(kvs, wire.KV{Name: "server." + name, Value: v})
		})
		ss.srv.database().Metrics().DoNumeric(func(name string, v int64) {
			kvs = append(kvs, wire.KV{Name: "db." + name, Value: v})
		})
		if ss.sendTimed(rq, wire.MsgStatsKV, wire.StatsKV{ID: req.ID, KVs: kvs}.Encode()) != nil {
			return
		}
	} else {
		text := fmt.Sprintf("{\"server\": %s, \"db\": %s}",
			ss.srv.metrics.String(), ss.srv.database().Metrics().String())
		if ss.sendTimed(rq, wire.MsgText, wire.TextMsg{ID: req.ID, Text: text}.Encode()) != nil {
			return
		}
	}
	ss.sendDone(rq, probe.QueryStats{})
}

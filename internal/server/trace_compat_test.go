package server

import (
	"math/rand"
	"net"
	"strings"
	"testing"

	"probe/internal/wire"
)

// rawTracedRange handshakes at the given protocol minor, runs one
// traced full-grid range, and returns the frame types seen before
// DONE plus the TEXT body (if any) and the TRACE message (if any).
func rawTracedRange(t *testing.T, addr string, minor uint8) (types []uint8, text string, tm wire.TraceMsg, sawTrace bool) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := wire.Hello{Major: wire.VersionMajor, Minor: minor}
	if err := wire.WriteFrame(conn, wire.MsgHello, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wire.ReadFrame(conn); err != nil || typ != wire.MsgWelcome {
		t.Fatalf("handshake: type 0x%02x err %v", typ, err)
	}
	req := wire.RangeReq{Header: wire.Header{ID: 1, Flags: wire.FlagTrace},
		Lo: []uint32{0, 0}, Hi: []uint32{1023, 1023}}
	if err := wire.WriteFrame(conn, wire.MsgRange, req.Encode()); err != nil {
		t.Fatal(err)
	}
	for {
		typ, payload, err := wire.ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		types = append(types, typ)
		switch typ {
		case wire.MsgText:
			txt, err := wire.DecodeTextMsg(payload)
			if err != nil {
				t.Fatal(err)
			}
			text = txt.Text
		case wire.MsgTrace:
			tm, err = wire.DecodeTraceMsg(payload)
			if err != nil {
				t.Fatal(err)
			}
			sawTrace = true
		case wire.MsgDone:
			return types, text, tm, sawTrace
		case wire.MsgError:
			t.Fatalf("server answered error: %x", payload)
		}
	}
}

// TestTracedRangeOldMinorGetsText pins backward compatibility: a
// client that said hello at minor 3 (or lower) must never see the
// minor-4 TRACE opcode — its traced request gets the legacy rendered
// TEXT span tree, exactly as before.
func TestTracedRangeOldMinorGetsText(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	_, addr, _ := startServer(t, Config{BatchSize: 64}, randPoints(rng, 500, 0))
	for _, minor := range []uint8{1, 3} {
		types, text, _, sawTrace := rawTracedRange(t, addr, minor)
		if sawTrace {
			t.Fatalf("minor %d: server sent a TRACE frame to a pre-1.4 client (frames %x)", minor, types)
		}
		if !strings.Contains(text, "range") {
			t.Errorf("minor %d: legacy TEXT span tree missing the request span:\n%s", minor, text)
		}
	}
}

// TestTracedRangeMinor4GetsTraceFrame pins the 1.4 contract: the
// traced request's answer is a TRACE frame (trace ID plus decodable
// binary span tree) immediately before DONE, and no legacy TEXT.
func TestTracedRangeMinor4GetsTraceFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	_, addr, _ := startServer(t, Config{BatchSize: 64}, randPoints(rng, 500, 0))
	types, text, tm, sawTrace := rawTracedRange(t, addr, 4)
	if !sawTrace {
		t.Fatalf("minor 4: no TRACE frame before DONE (frames %x)", types)
	}
	if text != "" {
		t.Errorf("minor 4: server also sent the legacy TEXT form:\n%s", text)
	}
	if tm.ID != 1 {
		t.Errorf("TRACE frame id = %d, want 1", tm.ID)
	}
	if tm.TraceID == 0 {
		t.Error("TRACE frame carries no trace ID (front door must mint one)")
	}
	if types[len(types)-2] != wire.MsgTrace {
		t.Errorf("TRACE frame not immediately before DONE: frames %x", types)
	}
}

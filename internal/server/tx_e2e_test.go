package server

import (
	"context"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"probe"
	"probe/client"
	"probe/internal/wire"
)

// fullBox covers the whole 1024x1024 test grid.
func fullBox() (lo, hi []uint32) { return []uint32{0, 0}, []uint32{1023, 1023} }

// rangeAll reads the whole space over the wire on conn.
func rangeAll(t *testing.T, c *client.Conn) []probe.Point {
	t.Helper()
	lo, hi := fullBox()
	pts, _, err := c.Range(context.Background(), lo, hi)
	if err != nil {
		t.Fatalf("range: %v", err)
	}
	return pts
}

// TestTxWireAtomicIsolation is the acceptance test for the wire
// transaction: a multi-statement transaction on one connection is
// invisible to a concurrent connection until COMMIT, at which point
// all of it appears at once; meanwhile the transaction reads its own
// writes over the wire.
func TestTxWireAtomicIsolation(t *testing.T) {
	seed := []probe.Point{
		probe.Pt2(1, 10, 10),
		probe.Pt2(2, 20, 20),
		probe.Pt2(3, 30, 30),
	}
	_, addr, _ := startServer(t, Config{}, seed)
	a, b := dial(t, addr), dial(t, addr)
	ctx := context.Background()

	tx, err := a.Begin(ctx)
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	// Statement 1: insert two points. Statement 2: delete a seeded one.
	if _, err := tx.Insert(ctx, []probe.Point{probe.Pt2(4, 40, 40), probe.Pt2(5, 50, 50)}); err != nil {
		t.Fatalf("tx insert: %v", err)
	}
	if qs, err := tx.Delete(ctx, []probe.Point{probe.Pt2(2, 20, 20)}); err != nil || qs.Results != 1 {
		t.Fatalf("tx delete: removed=%d err=%v", qs.Results, err)
	}

	// The transaction reads its own writes...
	txView, _, err := tx.Range(ctx, []uint32{0, 0}, []uint32{1023, 1023})
	if err != nil {
		t.Fatalf("tx range: %v", err)
	}
	samePoints(t, "tx view mid-transaction", txView, []probe.Point{
		probe.Pt2(1, 10, 10), probe.Pt2(3, 30, 30), probe.Pt2(4, 40, 40), probe.Pt2(5, 50, 50),
	})
	// ...and nearest-neighbour inside the transaction sees the buffered
	// insert at (40,40).
	nn, _, err := tx.Nearest(ctx, []uint32{41, 41}, 1, probe.Euclidean)
	if err != nil || len(nn) != 1 || nn[0].Point.ID != 4 {
		t.Fatalf("tx nearest: %v %v", nn, err)
	}

	// A concurrent connection sees exactly the seed: no partial
	// transaction, ever.
	samePoints(t, "other connection mid-transaction", rangeAll(t, b), seed)

	if qs, err := tx.Commit(ctx); err != nil {
		t.Fatalf("commit: %v", err)
	} else if qs.Results != 3 {
		t.Fatalf("commit applied %d write statements, want 3", qs.Results)
	}

	// After COMMIT the whole write-set is visible atomically.
	want := []probe.Point{
		probe.Pt2(1, 10, 10), probe.Pt2(3, 30, 30), probe.Pt2(4, 40, 40), probe.Pt2(5, 50, 50),
	}
	samePoints(t, "other connection post-commit", rangeAll(t, b), want)
	samePoints(t, "own connection post-commit", rangeAll(t, a), want)
}

// TestTxWireConflict races two connections' transactions over the
// same key: exactly one COMMIT wins, the other fails with the typed
// CONFLICT error the client maps to ErrTxConflict.
func TestTxWireConflict(t *testing.T) {
	seed := []probe.Point{probe.Pt2(1, 100, 100)}
	_, addr, _ := startServer(t, Config{}, seed)
	a, b := dial(t, addr), dial(t, addr)
	ctx := context.Background()

	ta, err := a.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := b.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range []*client.Tx{ta, tb} {
		if qs, err := tx.Delete(ctx, []probe.Point{probe.Pt2(1, 100, 100)}); err != nil || qs.Results != 1 {
			t.Fatalf("delete: removed=%d err=%v", qs.Results, err)
		}
	}

	errA := make(chan error, 1)
	errB := make(chan error, 1)
	go func() { _, err := ta.Commit(ctx); errA <- err }()
	go func() { _, err := tb.Commit(ctx); errB <- err }()
	ea, eb := <-errA, <-errB

	wins, conflicts := 0, 0
	for _, e := range []error{ea, eb} {
		switch {
		case e == nil:
			wins++
		case errors.Is(e, client.ErrTxConflict):
			conflicts++
		default:
			t.Fatalf("unexpected commit error: %v", e)
		}
	}
	if wins != 1 || conflicts != 1 {
		t.Fatalf("got %d winners and %d conflicts, want exactly 1 and 1 (%v / %v)", wins, conflicts, ea, eb)
	}
	if got := rangeAll(t, a); len(got) != 0 {
		t.Fatalf("point survived a committed delete: %v", got)
	}
}

// TestTxWireRollback checks ROLLBACK discards everything and the
// connection returns cleanly to auto-commit mode.
func TestTxWireRollback(t *testing.T) {
	seed := []probe.Point{probe.Pt2(1, 10, 10)}
	_, addr, _ := startServer(t, Config{}, seed)
	c := dial(t, addr)
	ctx := context.Background()

	tx, err := c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert(ctx, []probe.Point{probe.Pt2(2, 20, 20)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Delete(ctx, []probe.Point{probe.Pt2(1, 10, 10)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(ctx); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	// Second rollback is a deliberate client-side no-op.
	if err := tx.Rollback(ctx); err != nil {
		t.Fatalf("double rollback: %v", err)
	}
	samePoints(t, "post-rollback", rangeAll(t, c), seed)

	// Auto-commit still works on the same connection.
	if _, err := c.Insert(ctx, []probe.Point{probe.Pt2(3, 30, 30)}); err != nil {
		t.Fatalf("auto-commit insert after rollback: %v", err)
	}
	samePoints(t, "auto-commit after rollback", rangeAll(t, c),
		[]probe.Point{probe.Pt2(1, 10, 10), probe.Pt2(3, 30, 30)})
}

// TestTxIdleTimeout lets a transaction sit idle past
// Config.TxIdleTimeout: the server rolls it back, subsequent
// statements fail instead of silently running in auto-commit mode,
// and the abort shows up in the metrics.
func TestTxIdleTimeout(t *testing.T) {
	srv, addr, _ := startServer(t, Config{TxIdleTimeout: 50 * time.Millisecond}, nil)
	c := dial(t, addr)
	ctx := context.Background()

	tx, err := c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert(ctx, []probe.Point{probe.Pt2(1, 10, 10)}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().Int("server.tx_idle_aborts").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle transaction was never aborted")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The next statement must fail — the transaction the client thinks
	// it is in no longer exists, and running it in auto-commit mode
	// would break atomicity.
	if _, err := tx.Insert(ctx, []probe.Point{probe.Pt2(2, 20, 20)}); err == nil {
		t.Fatal("statement after idle abort succeeded")
	}
	// COMMIT after the abort reports the typed failure too...
	tx2, err := c.Begin(ctx) // Begin fails: client still holds the old tx
	if err == nil {
		_ = tx2
		t.Fatal("begin with a client-side open tx succeeded")
	}
	if _, err := tx.Commit(ctx); err == nil {
		t.Fatal("commit after idle abort succeeded")
	}
	// ...and the connection is usable again afterwards.
	tx3, err := c.Begin(ctx)
	if err != nil {
		t.Fatalf("begin after acknowledged abort: %v", err)
	}
	if v := srv.Metrics().Gauge("server.open_txs").Value(); v != 1 {
		t.Fatalf("open_txs gauge = %d, want 1 (the re-begun tx)", v)
	}
	if err := tx3.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
	// Nothing from the aborted transaction was published.
	if got := rangeAll(t, c); len(got) != 0 {
		t.Fatalf("aborted transaction published %v", got)
	}
}

// TestTxDisconnectRollsBack drops a connection mid-transaction: the
// server must roll the transaction back so nothing leaks and the
// snapshot unpins.
func TestTxDisconnectRollsBack(t *testing.T) {
	srv, addr, _ := startServer(t, Config{}, nil)
	ctx := context.Background()

	a := dial(t, addr)
	tx, err := a.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert(ctx, []probe.Point{probe.Pt2(1, 10, 10)}); err != nil {
		t.Fatal(err)
	}
	a.Close() // no COMMIT

	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().Gauge("server.open_txs").Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("transaction outlived its connection")
		}
		time.Sleep(10 * time.Millisecond)
	}
	b := dial(t, addr)
	if got := rangeAll(t, b); len(got) != 0 {
		t.Fatalf("disconnected transaction published %v", got)
	}
}

// TestTxDrainGrace starts a shutdown while a transaction is open: the
// drain grace window must let that session finish and COMMIT while
// other sessions are already refused.
func TestTxDrainGrace(t *testing.T) {
	srv, addr, _ := startServer(t, Config{DrainTimeout: 5 * time.Second}, nil)
	ctx := context.Background()

	a, b := dial(t, addr), dial(t, addr)
	tx, err := a.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert(ctx, []probe.Point{probe.Pt2(1, 10, 10)}); err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(context.Background()) }()
	deadline := time.Now().Add(5 * time.Second)
	for !srv.isDraining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	// A transaction-less connection is already refused...
	if _, _, err := b.Range(ctx, []uint32{0, 0}, []uint32{1023, 1023}); !errors.Is(err, client.ErrShuttingDown) {
		t.Fatalf("drain reject: got %v, want ErrShuttingDown", err)
	}
	// ...but the transaction holder rides the grace window to COMMIT.
	if _, err := tx.Insert(ctx, []probe.Point{probe.Pt2(2, 20, 20)}); err != nil {
		t.Fatalf("tx statement during drain: %v", err)
	}
	if _, err := tx.Commit(ctx); err != nil {
		t.Fatalf("commit during drain: %v", err)
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown never finished after the transaction committed")
	}
}

// TestTxOldMinorRejected speaks raw 1.1 wire: a client that said
// minor 1 in its Hello must have the minor-2 opcodes rejected with
// BAD_REQUEST before any decoding happens.
func TestTxOldMinorRejected(t *testing.T) {
	_, addr, _ := startServer(t, Config{}, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := wire.WriteFrame(conn, wire.MsgHello, wire.Hello{Major: 1, Minor: 1}.Encode()); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil || typ != wire.MsgWelcome {
		t.Fatalf("handshake: type 0x%02x err %v", typ, err)
	}
	if _, err := wire.DecodeWelcome(payload); err != nil {
		t.Fatal(err)
	}

	for _, op := range []uint8{wire.MsgBegin, wire.MsgCommit, wire.MsgRollback, wire.MsgDelete} {
		req := wire.SimpleReq{Header: wire.Header{ID: 7}}
		if err := wire.WriteFrame(conn, op, req.Encode()); err != nil {
			t.Fatal(err)
		}
		typ, payload, err := wire.ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		if typ != wire.MsgError {
			t.Fatalf("opcode 0x%02x: got frame 0x%02x, want ERROR", op, typ)
		}
		em, err := wire.DecodeErrorMsg(payload)
		if err != nil {
			t.Fatal(err)
		}
		if em.Code != wire.CodeBadRequest || em.ID != 7 {
			t.Fatalf("opcode 0x%02x: got code %d id %d, want bad-request echoing id 7", op, em.Code, em.ID)
		}
	}
}

// TestClientDelegation pins the deprecated Client to being a pure
// delegating wrapper: one field (the Conn), observable-state shared
// with the Conn it wraps, and Conn() returning the identical object.
func TestClientDelegation(t *testing.T) {
	// Structural: Client must hold exactly a *Conn and nothing else, so
	// it cannot drift into carrying its own state.
	typ := reflect.TypeOf(client.Client{})
	if typ.NumField() != 1 || typ.Field(0).Type != reflect.TypeOf((*client.Conn)(nil)) {
		t.Fatalf("deprecated Client must wrap exactly one *Conn, has %d fields", typ.NumField())
	}

	_, addr, _ := startServer(t, Config{}, nil)
	conn := dial(t, addr)
	cl := client.NewClient(conn)
	if cl.Conn() != conn {
		t.Fatal("Client.Conn() does not return the wrapped Conn")
	}
	ctx := context.Background()

	// Behavioral: effects through the wrapper are visible through the
	// Conn and vice versa, because they are the same connection.
	if _, err := cl.Insert(ctx, []probe.Point{probe.Pt2(1, 10, 10)}); err != nil {
		t.Fatal(err)
	}
	samePoints(t, "via Conn after Client.Insert", rangeAll(t, conn), []probe.Point{probe.Pt2(1, 10, 10)})
	cl.SetTrace(true)
	if _, _, err := cl.Range(ctx, []uint32{0, 0}, []uint32{1023, 1023}); err != nil {
		t.Fatal(err)
	}
	if conn.LastTrace() == "" {
		t.Fatal("trace enabled through the wrapper did not reach the Conn")
	}
	if cl.LastTrace() != conn.LastTrace() {
		t.Fatal("wrapper and Conn disagree on LastTrace")
	}

	// DialClient wires up a fresh wrapped connection end to end.
	cl2, err := client.DialClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	samePoints(t, "via DialClient", mustRange(t, cl2), []probe.Point{probe.Pt2(1, 10, 10)})
}

func mustRange(t *testing.T, cl *client.Client) []probe.Point {
	t.Helper()
	pts, _, err := cl.Range(context.Background(), []uint32{0, 0}, []uint32{1023, 1023})
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

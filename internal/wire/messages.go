package wire

import (
	"fmt"
	"math"
)

func f64bits(f float64) uint64     { return math.Float64bits(f) }
func f64frombits(b uint64) float64 { return math.Float64frombits(b) }

// This file defines the typed messages and their payload codecs. Each
// message has an Encode method producing its payload (framing is
// WriteFrame's job) and a Decode* function parsing one. Decoders
// tolerate trailing bytes they do not understand — that is how a
// newer minor version adds fields.

// Point is a wire-level indexed point: an id plus grid coordinates.
type Point struct {
	ID     uint64
	Coords []uint32
}

// Neighbor is a wire-level nearest-neighbor result: the point and its
// distance under the request's metric.
type Neighbor struct {
	Point
	Dist float64
}

// JoinItem is one object of a shipped join relation: an id and its
// bounding box, decomposed server-side.
type JoinItem struct {
	ID     uint64
	Lo, Hi []uint32
}

// Hello opens the handshake: magic, then the client's version.
type Hello struct {
	Major, Minor uint8
}

func (m Hello) Encode() []byte {
	var e enc
	e.b = append(e.b, Magic...)
	e.u8(m.Major)
	e.u8(m.Minor)
	return e.b
}

func DecodeHello(p []byte) (Hello, error) {
	d := dec{b: p}
	if err := d.need(6); err != nil {
		return Hello{}, err
	}
	if string(p[:4]) != Magic {
		return Hello{}, fmt.Errorf("wire: bad magic %q", p[:4])
	}
	d.off = 4
	maj, _ := d.u8()
	min, _ := d.u8()
	return Hello{Major: maj, Minor: min}, nil
}

// Welcome accepts the handshake: magic, the server's version, and the
// grid shape (bits per dimension) of the database being served.
type Welcome struct {
	Major, Minor uint8
	Bits         []uint32
}

func (m Welcome) Encode() []byte {
	var e enc
	e.b = append(e.b, Magic...)
	e.u8(m.Major)
	e.u8(m.Minor)
	e.u32(uint32(len(m.Bits)))
	for _, b := range m.Bits {
		e.u32(b)
	}
	return e.b
}

func DecodeWelcome(p []byte) (Welcome, error) {
	d := dec{b: p}
	if err := d.need(6); err != nil {
		return Welcome{}, err
	}
	if string(p[:4]) != Magic {
		return Welcome{}, fmt.Errorf("wire: bad magic %q", p[:4])
	}
	d.off = 4
	maj, _ := d.u8()
	min, _ := d.u8()
	k, err := d.dims()
	if err != nil {
		return Welcome{}, err
	}
	bits, err := d.coords(k)
	if err != nil {
		return Welcome{}, err
	}
	return Welcome{Major: maj, Minor: min, Bits: bits}, nil
}

// Header is the prefix every request shares: the client-chosen
// request id (echoed on every response frame) and an optional
// timeout in milliseconds (0 = none), which the server turns into a
// context deadline.
//
// Flags (the Flag* bits) is logically part of the header but travels
// as the *final* byte of the request payload — minor version 1 added
// it, and the additive-only promise permits appending, never
// inserting. A payload without the byte decodes as Flags == 0.
//
// Trace (minor 4) extends the same tail: a u64 trace ID after the
// flags byte, identifying the request across every node it touches
// (docs/observability.md). Zero means unassigned — a front door
// receiving a traced request with Trace == 0 mints an ID; a
// coordinator fanning out propagates its ID unchanged. A payload
// ending at the flags byte (a 1.1–1.3 peer) decodes as Trace == 0.
type Header struct {
	ID        uint32
	TimeoutMS uint32
	Flags     uint8
	Trace     uint64
}

func (h Header) encodeTo(e *enc) {
	e.u32(h.ID)
	e.u32(h.TimeoutMS)
}

// encodeTail appends the additive header tail: the minor-1 flags byte,
// then the minor-4 trace ID. Every request Encode calls it last.
func (h Header) encodeTail(e *enc) {
	e.u8(h.Flags)
	e.u64(h.Trace)
}

// decodeTail reads the optional trailing header fields; absent fields
// (an older peer) decode as zero. Every request decoder calls it after
// its fixed fields.
func (h *Header) decodeTail(d *dec) {
	if d.remaining() >= 1 {
		h.Flags, _ = d.u8()
	}
	if d.remaining() >= 8 {
		h.Trace, _ = d.u64()
	}
}

func decodeHeader(d *dec) (Header, error) {
	id, err := d.u32()
	if err != nil {
		return Header{}, err
	}
	tmo, err := d.u32()
	if err != nil {
		return Header{}, err
	}
	return Header{ID: id, TimeoutMS: tmo}, nil
}

// RangeReq asks for every point inside the box; Strategy selects the
// range-search variant (0 = server default). The same payload shape
// serves MsgExplain.
type RangeReq struct {
	Header
	Strategy uint8
	Lo, Hi   []uint32
}

func (m RangeReq) Encode() []byte {
	var e enc
	m.Header.encodeTo(&e)
	e.u8(m.Strategy)
	e.u32(uint32(len(m.Lo)))
	for _, v := range m.Lo {
		e.u32(v)
	}
	for _, v := range m.Hi {
		e.u32(v)
	}
	m.Header.encodeTail(&e)
	return e.b
}

func DecodeRangeReq(p []byte) (RangeReq, error) {
	d := dec{b: p}
	h, err := decodeHeader(&d)
	if err != nil {
		return RangeReq{}, err
	}
	strat, err := d.u8()
	if err != nil {
		return RangeReq{}, err
	}
	k, err := d.dims()
	if err != nil {
		return RangeReq{}, err
	}
	lo, err := d.coords(k)
	if err != nil {
		return RangeReq{}, err
	}
	hi, err := d.coords(k)
	if err != nil {
		return RangeReq{}, err
	}
	h.decodeTail(&d)
	return RangeReq{Header: h, Strategy: strat, Lo: lo, Hi: hi}, nil
}

// NearestReq asks for the M points nearest Q under Metric
// (0 = Chebyshev, 1 = Euclidean).
type NearestReq struct {
	Header
	Metric uint8
	M      uint32
	Q      []uint32
}

func (m NearestReq) Encode() []byte {
	var e enc
	m.Header.encodeTo(&e)
	e.u8(m.Metric)
	e.u32(m.M)
	e.u32(uint32(len(m.Q)))
	for _, v := range m.Q {
		e.u32(v)
	}
	m.Header.encodeTail(&e)
	return e.b
}

func DecodeNearestReq(p []byte) (NearestReq, error) {
	d := dec{b: p}
	h, err := decodeHeader(&d)
	if err != nil {
		return NearestReq{}, err
	}
	metric, err := d.u8()
	if err != nil {
		return NearestReq{}, err
	}
	mm, err := d.u32()
	if err != nil {
		return NearestReq{}, err
	}
	k, err := d.dims()
	if err != nil {
		return NearestReq{}, err
	}
	q, err := d.coords(k)
	if err != nil {
		return NearestReq{}, err
	}
	h.decodeTail(&d)
	return NearestReq{Header: h, Metric: metric, M: mm, Q: q}, nil
}

// InsertReq ships a batch of points to insert.
type InsertReq struct {
	Header
	Dims   uint32
	Points []Point
}

func (m InsertReq) Encode() []byte {
	var e enc
	m.Header.encodeTo(&e)
	e.u32(m.Dims)
	e.u32(uint32(len(m.Points)))
	for _, p := range m.Points {
		e.u64(p.ID)
		for _, v := range p.Coords {
			e.u32(v)
		}
	}
	m.Header.encodeTail(&e)
	return e.b
}

func DecodeInsertReq(p []byte) (InsertReq, error) {
	d := dec{b: p}
	h, err := decodeHeader(&d)
	if err != nil {
		return InsertReq{}, err
	}
	k, err := d.dims()
	if err != nil {
		return InsertReq{}, err
	}
	n, err := d.count(8 + 4*k)
	if err != nil {
		return InsertReq{}, err
	}
	pts := make([]Point, n)
	for i := range pts {
		id, err := d.u64()
		if err != nil {
			return InsertReq{}, err
		}
		coords, err := d.coords(k)
		if err != nil {
			return InsertReq{}, err
		}
		pts[i] = Point{ID: id, Coords: coords}
	}
	h.decodeTail(&d)
	return InsertReq{Header: h, Dims: uint32(k), Points: pts}, nil
}

// DeleteReq ships a batch of points to delete (minor 2). It mirrors
// InsertReq exactly; the DONE response reports the number actually
// removed in StatResults (points already absent are not an error).
type DeleteReq struct {
	Header
	Dims   uint32
	Points []Point
}

func (m DeleteReq) Encode() []byte {
	var e enc
	m.Header.encodeTo(&e)
	e.u32(m.Dims)
	e.u32(uint32(len(m.Points)))
	for _, p := range m.Points {
		e.u64(p.ID)
		for _, v := range p.Coords {
			e.u32(v)
		}
	}
	m.Header.encodeTail(&e)
	return e.b
}

func DecodeDeleteReq(p []byte) (DeleteReq, error) {
	d := dec{b: p}
	h, err := decodeHeader(&d)
	if err != nil {
		return DeleteReq{}, err
	}
	k, err := d.dims()
	if err != nil {
		return DeleteReq{}, err
	}
	n, err := d.count(8 + 4*k)
	if err != nil {
		return DeleteReq{}, err
	}
	pts := make([]Point, n)
	for i := range pts {
		id, err := d.u64()
		if err != nil {
			return DeleteReq{}, err
		}
		coords, err := d.coords(k)
		if err != nil {
			return DeleteReq{}, err
		}
		pts[i] = Point{ID: id, Coords: coords}
	}
	h.decodeTail(&d)
	return DeleteReq{Header: h, Dims: uint32(k), Points: pts}, nil
}

// JoinReq ships two object relations (as bounding boxes) for a
// spatial join; Workers > 0 requests parallel execution with that
// many workers.
type JoinReq struct {
	Header
	Workers uint32
	Dims    uint32
	A, B    []JoinItem
}

func encodeRelation(e *enc, items []JoinItem) {
	e.u32(uint32(len(items)))
	for _, it := range items {
		e.u64(it.ID)
		for _, v := range it.Lo {
			e.u32(v)
		}
		for _, v := range it.Hi {
			e.u32(v)
		}
	}
}

func decodeRelation(d *dec, k int) ([]JoinItem, error) {
	n, err := d.count(8 + 8*k)
	if err != nil {
		return nil, err
	}
	items := make([]JoinItem, n)
	for i := range items {
		id, err := d.u64()
		if err != nil {
			return nil, err
		}
		lo, err := d.coords(k)
		if err != nil {
			return nil, err
		}
		hi, err := d.coords(k)
		if err != nil {
			return nil, err
		}
		items[i] = JoinItem{ID: id, Lo: lo, Hi: hi}
	}
	return items, nil
}

func (m JoinReq) Encode() []byte {
	var e enc
	m.Header.encodeTo(&e)
	e.u32(m.Workers)
	e.u32(m.Dims)
	encodeRelation(&e, m.A)
	encodeRelation(&e, m.B)
	m.Header.encodeTail(&e)
	return e.b
}

func DecodeJoinReq(p []byte) (JoinReq, error) {
	d := dec{b: p}
	h, err := decodeHeader(&d)
	if err != nil {
		return JoinReq{}, err
	}
	workers, err := d.u32()
	if err != nil {
		return JoinReq{}, err
	}
	k, err := d.dims()
	if err != nil {
		return JoinReq{}, err
	}
	a, err := decodeRelation(&d, k)
	if err != nil {
		return JoinReq{}, err
	}
	b, err := decodeRelation(&d, k)
	if err != nil {
		return JoinReq{}, err
	}
	h.decodeTail(&d)
	return JoinReq{Header: h, Workers: workers, Dims: uint32(k), A: a, B: b}, nil
}

// SimpleReq is the header-only request shape shared by MsgCheckpoint,
// MsgStats, and — since minor 2 — the transaction control opcodes
// MsgBegin, MsgCommit, and MsgRollback.
type SimpleReq struct {
	Header
}

func (m SimpleReq) Encode() []byte {
	var e enc
	m.Header.encodeTo(&e)
	m.Header.encodeTail(&e)
	return e.b
}

func DecodeSimpleReq(p []byte) (SimpleReq, error) {
	d := dec{b: p}
	h, err := decodeHeader(&d)
	if err != nil {
		return SimpleReq{}, err
	}
	h.decodeTail(&d)
	return SimpleReq{Header: h}, nil
}

// Cancel asks the server to stop the in-flight request with this id.
// It is advisory: the request may already have completed, in which
// case the cancel is a no-op.
type Cancel struct {
	ID uint32
}

func (m Cancel) Encode() []byte {
	var e enc
	e.u32(m.ID)
	return e.b
}

func DecodeCancel(p []byte) (Cancel, error) {
	d := dec{b: p}
	id, err := d.u32()
	if err != nil {
		return Cancel{}, err
	}
	return Cancel{ID: id}, nil
}

// Batch is one chunk of a streamed result set. Exactly one of the
// three slices is populated, named by Kind; Dims describes the
// coordinate width of Points and Neighbors.
type Batch struct {
	ID        uint32
	Kind      uint8
	Dims      uint32
	Points    []Point
	Pairs     [][2]uint64
	Neighbors []Neighbor
}

func (m Batch) Encode() []byte {
	var e enc
	e.u32(m.ID)
	e.u8(m.Kind)
	e.u32(m.Dims)
	switch m.Kind {
	case KindPoints:
		e.u32(uint32(len(m.Points)))
		for _, p := range m.Points {
			e.u64(p.ID)
			for _, v := range p.Coords {
				e.u32(v)
			}
		}
	case KindPairs:
		e.u32(uint32(len(m.Pairs)))
		for _, p := range m.Pairs {
			e.u64(p[0])
			e.u64(p[1])
		}
	case KindNeighbors:
		e.u32(uint32(len(m.Neighbors)))
		for _, n := range m.Neighbors {
			e.u64(n.ID)
			for _, v := range n.Coords {
				e.u32(v)
			}
			e.u64(f64bits(n.Dist))
		}
	}
	return e.b
}

func DecodeBatch(p []byte) (Batch, error) {
	d := dec{b: p}
	id, err := d.u32()
	if err != nil {
		return Batch{}, err
	}
	kind, err := d.u8()
	if err != nil {
		return Batch{}, err
	}
	dims, err := d.u32()
	if err != nil {
		return Batch{}, err
	}
	k := int(dims)
	if k > MaxDims {
		return Batch{}, fmt.Errorf("wire: bad dimension count %d", k)
	}
	out := Batch{ID: id, Kind: kind, Dims: dims}
	switch kind {
	case KindPoints:
		n, err := d.count(8 + 4*k)
		if err != nil {
			return Batch{}, err
		}
		out.Points = make([]Point, n)
		for i := range out.Points {
			pid, err := d.u64()
			if err != nil {
				return Batch{}, err
			}
			coords, err := d.coords(k)
			if err != nil {
				return Batch{}, err
			}
			out.Points[i] = Point{ID: pid, Coords: coords}
		}
	case KindPairs:
		n, err := d.count(16)
		if err != nil {
			return Batch{}, err
		}
		out.Pairs = make([][2]uint64, n)
		for i := range out.Pairs {
			a, err := d.u64()
			if err != nil {
				return Batch{}, err
			}
			b, err := d.u64()
			if err != nil {
				return Batch{}, err
			}
			out.Pairs[i] = [2]uint64{a, b}
		}
	case KindNeighbors:
		n, err := d.count(16 + 4*k)
		if err != nil {
			return Batch{}, err
		}
		out.Neighbors = make([]Neighbor, n)
		for i := range out.Neighbors {
			pid, err := d.u64()
			if err != nil {
				return Batch{}, err
			}
			coords, err := d.coords(k)
			if err != nil {
				return Batch{}, err
			}
			bits, err := d.u64()
			if err != nil {
				return Batch{}, err
			}
			out.Neighbors[i] = Neighbor{Point: Point{ID: pid, Coords: coords}, Dist: f64frombits(bits)}
		}
	default:
		return Batch{}, fmt.Errorf("wire: unknown batch kind %d", kind)
	}
	return out, nil
}

// Stat field indices of the Done message. Done carries a
// field-count-prefixed array of u64s in exactly this order; a peer
// built against an older minor version reads the fields it knows and
// ignores the rest, a newer one zero-fills missing trailing fields.
const (
	StatDataPages = iota
	StatSeeks
	StatElements
	StatResults
	StatLeftItems
	StatRightItems
	StatRawPairs
	StatDistinctPairs
	StatShards
	StatReplicatedItems
	StatPoolGets
	StatPoolHits
	StatPoolMisses
	StatPhysReads
	StatPhysWrites
	StatWALAppends
	StatWALSyncs

	NumStats // count of defined stat fields in this version
)

// Timing field indices of the Done message's per-phase breakdown
// (minor 1). Like the stats array it is count-prefixed and
// append-only: older peers skip it entirely, newer peers zero-fill
// missing trailing fields. All values are nanoseconds.
const (
	TimingQueue  = iota // frame receipt → execution start (admission wait)
	TimingPlan          // decode + validation before the engine call
	TimingExec          // the query engine call itself
	TimingStream        // writing result batch frames
	TimingTotal         // frame receipt → terminal frame

	NumTimings // count of defined timing fields in this version
)

// Done ends a successful request: the echoed request id, the
// operation's statistics array (see the Stat* indices), and — since
// minor 1 — the server's per-phase timing breakdown (see the Timing*
// indices; empty when the request did not ask for FlagTrace).
type Done struct {
	ID      uint32
	Stats   []uint64
	Timings []uint64
}

func (m Done) Encode() []byte {
	var e enc
	e.u32(m.ID)
	e.u32(uint32(len(m.Stats)))
	for _, v := range m.Stats {
		e.u64(v)
	}
	e.u32(uint32(len(m.Timings)))
	for _, v := range m.Timings {
		e.u64(v)
	}
	return e.b
}

func DecodeDone(p []byte) (Done, error) {
	d := dec{b: p}
	id, err := d.u32()
	if err != nil {
		return Done{}, err
	}
	n, err := d.count(8)
	if err != nil {
		return Done{}, err
	}
	stats := make([]uint64, n)
	for i := range stats {
		if stats[i], err = d.u64(); err != nil {
			return Done{}, err
		}
	}
	out := Done{ID: id, Stats: stats}
	// The timing array is the minor-1 tail: absent from 1.0 peers.
	if d.remaining() >= 4 {
		tn, err := d.count(8)
		if err != nil {
			return Done{}, err
		}
		if tn > 0 {
			out.Timings = make([]uint64, tn)
			for i := range out.Timings {
				if out.Timings[i], err = d.u64(); err != nil {
					return Done{}, err
				}
			}
		}
	}
	return out, nil
}

// Stat reads field i, zero when the peer did not send it — the
// forward-compatible accessor.
func (m Done) Stat(i int) uint64 {
	if i < 0 || i >= len(m.Stats) {
		return 0
	}
	return m.Stats[i]
}

// Timing reads timing field i, zero when the peer did not send it.
func (m Done) Timing(i int) uint64 {
	if i < 0 || i >= len(m.Timings) {
		return 0
	}
	return m.Timings[i]
}

// TextMsg carries a textual response body (EXPLAIN plans, STATS
// snapshots).
type TextMsg struct {
	ID   uint32
	Text string
}

func (m TextMsg) Encode() []byte {
	var e enc
	e.u32(m.ID)
	e.bytes([]byte(m.Text))
	return e.b
}

func DecodeTextMsg(p []byte) (TextMsg, error) {
	d := dec{b: p}
	id, err := d.u32()
	if err != nil {
		return TextMsg{}, err
	}
	body, err := d.bytes()
	if err != nil {
		return TextMsg{}, err
	}
	return TextMsg{ID: id, Text: string(body)}, nil
}

// TraceMsg carries a traced request's identity and span tree (minor
// 4): the request's trace ID and the server-side span tree in the
// canonical binary encoding of internal/obs's codec. A server sends it
// immediately before DONE to clients whose Hello announced minor >= 4;
// older traced clients keep receiving the minor-1 rendered-TEXT form.
// The wire layer treats the tree as opaque bytes — encoding and
// validation live with the span type, not the framing.
type TraceMsg struct {
	ID      uint32
	TraceID uint64
	Span    []byte
}

func (m TraceMsg) Encode() []byte {
	var e enc
	e.u32(m.ID)
	e.u64(m.TraceID)
	e.bytes(m.Span)
	return e.b
}

func DecodeTraceMsg(p []byte) (TraceMsg, error) {
	d := dec{b: p}
	id, err := d.u32()
	if err != nil {
		return TraceMsg{}, err
	}
	tid, err := d.u64()
	if err != nil {
		return TraceMsg{}, err
	}
	span, err := d.bytes()
	if err != nil {
		return TraceMsg{}, err
	}
	return TraceMsg{ID: id, TraceID: tid, Span: span}, nil
}

// KV is one named scalar of a StatsKV snapshot.
type KV struct {
	Name  string
	Value int64
}

// StatsKV is the structured response to the STATS opcode (minor 1):
// a flat list of named counter/gauge/histogram-summary readings,
// sorted by name server-side. It replaces the rendered-JSON TEXT
// blob 1.0 servers sent; a server still answers a minor-0 client
// with TEXT.
type StatsKV struct {
	ID  uint32
	KVs []KV
}

func (m StatsKV) Encode() []byte {
	var e enc
	e.u32(m.ID)
	e.u32(uint32(len(m.KVs)))
	for _, kv := range m.KVs {
		e.bytes([]byte(kv.Name))
		e.u64(uint64(kv.Value))
	}
	return e.b
}

func DecodeStatsKV(p []byte) (StatsKV, error) {
	d := dec{b: p}
	id, err := d.u32()
	if err != nil {
		return StatsKV{}, err
	}
	// Each entry is at least a 4-byte name length plus the 8-byte
	// value, so 12 bytes bounds the plausible count.
	n, err := d.count(12)
	if err != nil {
		return StatsKV{}, err
	}
	kvs := make([]KV, n)
	for i := range kvs {
		name, err := d.bytes()
		if err != nil {
			return StatsKV{}, err
		}
		v, err := d.u64()
		if err != nil {
			return StatsKV{}, err
		}
		kvs[i] = KV{Name: string(name), Value: int64(v)}
	}
	return StatsKV{ID: id, KVs: kvs}, nil
}

// ErrorMsg ends a failed request: the echoed id, a typed code (see
// Code*), and a human-readable message.
type ErrorMsg struct {
	ID   uint32
	Code uint8
	Msg  string
}

func (m ErrorMsg) Encode() []byte {
	var e enc
	e.u32(m.ID)
	e.u8(m.Code)
	e.bytes([]byte(m.Msg))
	return e.b
}

func DecodeErrorMsg(p []byte) (ErrorMsg, error) {
	d := dec{b: p}
	id, err := d.u32()
	if err != nil {
		return ErrorMsg{}, err
	}
	code, err := d.u8()
	if err != nil {
		return ErrorMsg{}, err
	}
	body, err := d.bytes()
	if err != nil {
		return ErrorMsg{}, err
	}
	return ErrorMsg{ID: id, Code: code, Msg: string(body)}, nil
}

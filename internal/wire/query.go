package wire

import "fmt"

// This file defines the minor-3 QUERY message family: the request
// carrying spatial SQL text, the SCHEMA frame describing a result
// set, and the self-describing ROWS batches. A successful QUERY
// answers with exactly one SCHEMA frame, zero or more ROWS frames,
// and DONE; EXPLAIN statements answer with TEXT then DONE.

// Column value types of a QUERY result set (the Type byte of a
// SchemaMsg column and the per-column type array of a RowsMsg). The
// values deliberately match internal/relation's Type numbering for
// the wire-visible subset.
const (
	ColID     = 0 // u64 object identifier
	ColInt    = 1 // i64 (two's-complement in a u64 slot)
	ColFloat  = 2 // f64 (IEEE-754 bits in a u64 slot)
	ColString = 3 // length-prefixed UTF-8 bytes
)

// colTypeValid reports whether a column type byte is known to this
// version.
func colTypeValid(t uint8) bool { return t <= ColString }

// QueryReq ships one spatial SQL statement (docs/query.md defines the
// language). The response stream is typed by the statement: SCHEMA +
// ROWS* + DONE for selects, TEXT + DONE for EXPLAIN.
type QueryReq struct {
	Header
	Text string
}

func (m QueryReq) Encode() []byte {
	var e enc
	m.Header.encodeTo(&e)
	e.bytes([]byte(m.Text))
	m.Header.encodeTail(&e)
	return e.b
}

func DecodeQueryReq(p []byte) (QueryReq, error) {
	d := dec{b: p}
	h, err := decodeHeader(&d)
	if err != nil {
		return QueryReq{}, err
	}
	text, err := d.bytes()
	if err != nil {
		return QueryReq{}, err
	}
	h.decodeTail(&d)
	return QueryReq{Header: h, Text: string(text)}, nil
}

// SchemaCol is one column of a QUERY result set.
type SchemaCol struct {
	Name string
	Type uint8 // one of the Col* values
}

// SchemaMsg describes a QUERY result set; it precedes the first ROWS
// frame so a client can decode rows streamingly.
type SchemaMsg struct {
	ID   uint32
	Cols []SchemaCol
}

func (m SchemaMsg) Encode() []byte {
	var e enc
	e.u32(m.ID)
	e.u32(uint32(len(m.Cols)))
	for _, c := range m.Cols {
		e.bytes([]byte(c.Name))
		e.u8(c.Type)
	}
	return e.b
}

func DecodeSchemaMsg(p []byte) (SchemaMsg, error) {
	d := dec{b: p}
	id, err := d.u32()
	if err != nil {
		return SchemaMsg{}, err
	}
	// Each column is at least a 4-byte name length plus the type byte.
	n, err := d.count(5)
	if err != nil {
		return SchemaMsg{}, err
	}
	cols := make([]SchemaCol, n)
	for i := range cols {
		name, err := d.bytes()
		if err != nil {
			return SchemaMsg{}, err
		}
		t, err := d.u8()
		if err != nil {
			return SchemaMsg{}, err
		}
		if !colTypeValid(t) {
			return SchemaMsg{}, fmt.Errorf("wire: unknown column type %d", t)
		}
		cols[i] = SchemaCol{Name: string(name), Type: t}
	}
	return SchemaMsg{ID: id, Cols: cols}, nil
}

// RowValue is one typed cell: uint64 for ColID, int64 for ColInt,
// float64 for ColFloat, string for ColString.
type RowValue interface{}

// RowsMsg is one batch of result rows. It is self-describing — the
// per-column type array repeats in every batch — so a frame can be
// decoded without held schema state.
type RowsMsg struct {
	ID    uint32
	Types []uint8
	Rows  [][]RowValue
}

func (m RowsMsg) Encode() ([]byte, error) {
	var e enc
	e.u32(m.ID)
	e.u32(uint32(len(m.Types)))
	for _, t := range m.Types {
		e.u8(t)
	}
	e.u32(uint32(len(m.Rows)))
	for _, row := range m.Rows {
		if len(row) != len(m.Types) {
			return nil, fmt.Errorf("wire: row has %d values, schema %d", len(row), len(m.Types))
		}
		for i, v := range row {
			switch m.Types[i] {
			case ColID:
				u, ok := v.(uint64)
				if !ok {
					return nil, fmt.Errorf("wire: column %d: %T is not uint64", i, v)
				}
				e.u64(u)
			case ColInt:
				iv, ok := v.(int64)
				if !ok {
					return nil, fmt.Errorf("wire: column %d: %T is not int64", i, v)
				}
				e.u64(uint64(iv))
			case ColFloat:
				f, ok := v.(float64)
				if !ok {
					return nil, fmt.Errorf("wire: column %d: %T is not float64", i, v)
				}
				e.u64(f64bits(f))
			case ColString:
				s, ok := v.(string)
				if !ok {
					return nil, fmt.Errorf("wire: column %d: %T is not string", i, v)
				}
				e.bytes([]byte(s))
			default:
				return nil, fmt.Errorf("wire: unknown column type %d", m.Types[i])
			}
		}
	}
	return e.b, nil
}

func DecodeRowsMsg(p []byte) (RowsMsg, error) {
	d := dec{b: p}
	id, err := d.u32()
	if err != nil {
		return RowsMsg{}, err
	}
	ncols, err := d.count(1)
	if err != nil {
		return RowsMsg{}, err
	}
	types := make([]uint8, ncols)
	minRow := 0
	for i := range types {
		t, err := d.u8()
		if err != nil {
			return RowsMsg{}, err
		}
		if !colTypeValid(t) {
			return RowsMsg{}, fmt.Errorf("wire: unknown column type %d", t)
		}
		types[i] = t
		if t == ColString {
			minRow += 4
		} else {
			minRow += 8
		}
	}
	if minRow == 0 {
		minRow = 1 // zero-column rows cannot bound the count; be conservative
	}
	nrows, err := d.count(minRow)
	if err != nil {
		return RowsMsg{}, err
	}
	rows := make([][]RowValue, nrows)
	for r := range rows {
		row := make([]RowValue, ncols)
		for i, t := range types {
			switch t {
			case ColID:
				v, err := d.u64()
				if err != nil {
					return RowsMsg{}, err
				}
				row[i] = v
			case ColInt:
				v, err := d.u64()
				if err != nil {
					return RowsMsg{}, err
				}
				row[i] = int64(v)
			case ColFloat:
				v, err := d.u64()
				if err != nil {
					return RowsMsg{}, err
				}
				row[i] = f64frombits(v)
			case ColString:
				b, err := d.bytes()
				if err != nil {
					return RowsMsg{}, err
				}
				row[i] = string(b)
			}
		}
		rows[r] = row
	}
	return RowsMsg{ID: id, Types: types, Rows: rows}, nil
}

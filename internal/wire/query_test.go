package wire

import (
	"reflect"
	"testing"
)

func TestQueryMessageRoundTrips(t *testing.T) {
	req := QueryReq{
		Header: Header{ID: 7, TimeoutMS: 250, Flags: FlagTrace},
		Text:   "SELECT * FROM points WHERE CONTAINS(BOX(0, 10, 0, 10))",
	}
	gotReq, err := DecodeQueryReq(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, gotReq) {
		t.Errorf("QueryReq round trip: %+v != %+v", gotReq, req)
	}

	schema := SchemaMsg{ID: 7, Cols: []SchemaCol{
		{Name: "id", Type: ColID},
		{Name: "x", Type: ColInt},
		{Name: "dist", Type: ColFloat},
		{Name: "label", Type: ColString},
	}}
	gotSchema, err := DecodeSchemaMsg(schema.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(schema, gotSchema) {
		t.Errorf("SchemaMsg round trip: %+v != %+v", gotSchema, schema)
	}

	rows := RowsMsg{
		ID:    7,
		Types: []uint8{ColID, ColInt, ColFloat, ColString},
		Rows: [][]RowValue{
			{uint64(1), int64(-5), 2.5, "a"},
			{uint64(2), int64(9), -0.25, ""},
		},
	}
	payload, err := rows.Encode()
	if err != nil {
		t.Fatal(err)
	}
	gotRows, err := DecodeRowsMsg(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, gotRows) {
		t.Errorf("RowsMsg round trip:\n%+v\n!=\n%+v", gotRows, rows)
	}

	// Empty row batches (a query with zero results still sends DONE
	// directly, but an empty batch must survive the codec).
	empty := RowsMsg{ID: 1, Types: []uint8{ColID}, Rows: [][]RowValue{}}
	payload, err = empty.Encode()
	if err != nil {
		t.Fatal(err)
	}
	gotEmpty, err := DecodeRowsMsg(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotEmpty.Rows) != 0 || len(gotEmpty.Types) != 1 {
		t.Errorf("empty RowsMsg round trip: %+v", gotEmpty)
	}
}

func TestQueryDecodeRejects(t *testing.T) {
	// Unknown column type in a schema.
	bad := SchemaMsg{ID: 1, Cols: []SchemaCol{{Name: "id", Type: 99}}}
	if _, err := DecodeSchemaMsg(bad.Encode()); err == nil {
		t.Error("DecodeSchemaMsg accepted unknown column type")
	}
	// Unknown column type in a row batch.
	raw := RowsMsg{ID: 1, Types: []uint8{ColID}, Rows: nil}
	payload, err := raw.Encode()
	if err != nil {
		t.Fatal(err)
	}
	payload[8] = 99 // the single type byte follows id u32 + count u32
	if _, err := DecodeRowsMsg(payload); err == nil {
		t.Error("DecodeRowsMsg accepted unknown column type")
	}
	// Mismatched row width fails encode, not a panic.
	miswidth := RowsMsg{ID: 1, Types: []uint8{ColID, ColInt}, Rows: [][]RowValue{{uint64(1)}}}
	if _, err := miswidth.Encode(); err == nil {
		t.Error("RowsMsg.Encode accepted a short row")
	}
	// Wrongly typed value fails encode.
	mistyped := RowsMsg{ID: 1, Types: []uint8{ColID}, Rows: [][]RowValue{{"not a u64"}}}
	if _, err := mistyped.Encode(); err == nil {
		t.Error("RowsMsg.Encode accepted a mistyped value")
	}
	// Truncated payloads error cleanly.
	full, err := RowsMsg{ID: 1, Types: []uint8{ColString}, Rows: [][]RowValue{{"hello"}}}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(full); n++ {
		if _, err := DecodeRowsMsg(full[:n]); err == nil {
			t.Errorf("DecodeRowsMsg accepted truncation at %d", n)
		}
	}
	// Implausible row count is rejected before allocation.
	var e enc
	e.u32(1)          // id
	e.u32(1)          // one column
	e.u8(ColID)       // of type id
	e.u32(0xffffffff) // claiming 4 billion rows
	if _, err := DecodeRowsMsg(e.b); err == nil {
		t.Error("DecodeRowsMsg accepted implausible row count")
	}
}

// Package wire defines probed's client/server protocol: a
// length-prefixed binary framing over a byte stream, a versioned
// handshake, and the encodings of every request and response message.
// docs/server.md is the normative specification; this package is its
// executable form, shared by internal/server and the public client
// package so the two can never drift apart.
//
// Framing. Every message travels as one frame:
//
//	u32 LE length | u8 type | payload
//
// where length counts the type byte plus the payload (so the minimum
// legal length is 1). Frames longer than MaxFrame are a protocol
// error; the peer that reads one closes the connection. All integers
// in the protocol are little-endian, matching the repo's on-disk
// convention.
//
// Versioning. The first frame in each direction is the handshake:
// the client sends Hello carrying the protocol magic and its version,
// the server answers Welcome with its own version and the database's
// grid shape. The major version must match exactly; minor versions
// are additive (unknown trailing payload bytes are ignored), which is
// the protocol's compatibility promise.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Magic is the four-byte protocol identifier opening the handshake.
const Magic = "ZKDQ"

// Protocol version. Major must match between peers; minor only adds
// fields at the end of existing payloads.
//
// Minor 1 added: a trailing flags byte on every request (FlagTrace),
// the timing-breakdown array on DONE, and the structured STATSKV
// response (sent instead of TEXT to clients that said minor >= 1 in
// their Hello).
//
// Minor 2 added: the DELETE request, the multi-statement transaction
// opcodes BEGIN/COMMIT/ROLLBACK, and the CONFLICT error code a losing
// COMMIT returns. All are new opcodes, so a 1.1 peer never sees them;
// a 1.2 server rejects them from a client that said minor < 2 in its
// Hello with CodeBadRequest.
//
// Minor 3 added: the QUERY request (spatial SQL text in; a SCHEMA
// frame, ROWS batches and DONE out) and the typed PARSE/PLAN error
// codes its statements can fail with. Like the minor-2 opcodes, a
// 1.3 server rejects QUERY from a client that said minor < 3 with
// CodeBadRequest before decoding the payload.
//
// Minor 4 added: the UNAVAILABLE and READONLY error codes the cluster
// layer returns — UNAVAILABLE when a router cannot reach any live node
// for a shard the request needs, READONLY when a write lands on a read
// replica (older clients render them through CodeString's default arm,
// so no gating is required) — and distributed tracing: a u64 trace ID
// appended to the request header tail after the flags byte (absent
// decodes as 0 = unassigned; the front door mints one when FlagTrace
// is set without it), and the TRACE response frame carrying the
// request's trace ID plus its span tree in the canonical binary
// encoding (internal/obs codec), sent to minor >= 4 clients instead of
// the minor-1 rendered-TEXT trace so a coordinator can parse and graft
// backend subtrees under its own fan-out spans.
const (
	VersionMajor = 1
	VersionMinor = 4
)

// MaxFrame caps a frame's length field (type byte + payload). Frames
// above it are rejected before allocation, bounding what a broken or
// hostile peer can make the other side buffer.
const MaxFrame = 1 << 24

// MaxDims caps the dimensionality any message may claim — the grid
// itself allows at most 64 bits total, so 64 dimensions is already
// unreachable; this bound only defends the decoder.
const MaxDims = 64

// Message types. Requests flow client→server, responses
// server→client; Cancel is the one client frame legal while a
// request is in flight.
const (
	MsgHello   = 0x01 // client→server: handshake open
	MsgWelcome = 0x02 // server→client: handshake accept

	MsgRange      = 0x10 // box range search; streams point batches
	MsgNearest    = 0x11 // m-nearest-neighbor query; streams neighbor batches
	MsgJoin       = 0x12 // spatial join of two shipped relations; streams pair batches
	MsgInsert     = 0x13 // insert a batch of points
	MsgCheckpoint = 0x14 // force a durability checkpoint
	MsgExplain    = 0x15 // plan a range query without running it
	MsgStats      = 0x16 // server + database counters snapshot
	MsgCancel     = 0x18 // cancel the in-flight request with this id
	MsgDelete     = 0x19 // delete a batch of points (minor >= 2)
	MsgBegin      = 0x1A // open a transaction on this session (minor >= 2)
	MsgCommit     = 0x1B // commit the session's transaction (minor >= 2)
	MsgRollback   = 0x1C // roll back the session's transaction (minor >= 2)
	MsgQuery      = 0x1D // spatial SQL statement; streams schema + row batches (minor >= 3)

	MsgBatch   = 0x20 // one batch of streamed results
	MsgDone    = 0x21 // request finished; carries its QueryStats
	MsgText    = 0x22 // textual response (EXPLAIN, legacy STATS, trace trees)
	MsgError   = 0x23 // request failed; carries a typed error code
	MsgStatsKV = 0x24 // structured key/value counter snapshot (minor >= 1)
	MsgSchema  = 0x25 // a QUERY result's column names and types (minor >= 3)
	MsgRows    = 0x26 // one batch of typed QUERY result rows (minor >= 3)
	MsgTrace   = 0x27 // a traced request's trace ID + encoded span tree (minor >= 4)
)

// Request flag bits, carried as the trailing flags byte every request
// grew in minor 1. A 1.0 peer never sends the byte and ignores it on
// receipt, so the zero flags word is the only legal 1.0 behavior.
const (
	// FlagTrace asks the server to trace the request: the DONE frame
	// carries the per-phase timing breakdown, and data requests are
	// preceded by a TEXT frame with the rendered server-side span
	// tree.
	FlagTrace = 1 << 0
)

// Error codes carried by MsgError.
const (
	CodeBadRequest   = 1  // malformed or semantically invalid request
	CodeOverloaded   = 2  // admission control rejected the request; retry later
	CodeCanceled     = 3  // the client's Cancel stopped the request
	CodeDeadline     = 4  // the request's own timeout_ms expired
	CodeShuttingDown = 5  // server is draining; no new requests
	CodeInternal     = 6  // unexpected server-side failure
	CodeVersion      = 7  // handshake version mismatch
	CodeConflict     = 8  // COMMIT lost first-committer-wins validation; retry the tx
	CodeParse        = 9  // QUERY text failed to parse (minor >= 3)
	CodePlan         = 10 // QUERY parsed but cannot run against this database (minor >= 3)
	CodeUnavailable  = 11 // a shard the request needs has no reachable node (minor >= 4)
	CodeReadOnly     = 12 // write sent to a read-only replica (minor >= 4)
)

// CodeString names an error code for diagnostics.
func CodeString(code uint8) string {
	switch code {
	case CodeBadRequest:
		return "bad-request"
	case CodeOverloaded:
		return "overloaded"
	case CodeCanceled:
		return "canceled"
	case CodeDeadline:
		return "deadline"
	case CodeShuttingDown:
		return "shutting-down"
	case CodeInternal:
		return "internal"
	case CodeVersion:
		return "version-mismatch"
	case CodeConflict:
		return "conflict"
	case CodeParse:
		return "parse-error"
	case CodePlan:
		return "plan-error"
	case CodeUnavailable:
		return "shard-unavailable"
	case CodeReadOnly:
		return "read-only"
	default:
		return fmt.Sprintf("code-%d", code)
	}
}

// Batch result kinds (the Kind byte of MsgBatch).
const (
	KindPoints    = 0 // Point records: u64 id, k coordinates
	KindPairs     = 1 // Pair records: two u64 object ids
	KindNeighbors = 2 // Neighbor records: point plus f64 distance
)

// WriteFrame writes one frame: the length prefix, the type byte, and
// the payload. It is not safe for concurrent use on one writer;
// callers serialize (the server per session, the client per
// connection).
func WriteFrame(w io.Writer, msgType uint8, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return fmt.Errorf("wire: frame too large (%d bytes)", len(payload)+1)
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)+1))
	hdr[4] = msgType
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame, returning its type and payload. A length
// of zero or above MaxFrame is a protocol error. io.EOF is returned
// untouched when the stream ends cleanly between frames.
func ReadFrame(r io.Reader) (msgType uint8, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n == 0 || n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: bad frame length %d", n)
	}
	if _, err := io.ReadFull(r, hdr[4:5]); err != nil {
		return 0, nil, eofIsUnexpected(err)
	}
	payload = make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, eofIsUnexpected(err)
	}
	return hdr[4], payload, nil
}

// eofIsUnexpected maps a mid-frame EOF to io.ErrUnexpectedEOF so only
// a clean between-frames close reads as io.EOF.
func eofIsUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// enc is an append-style encoder. Encoding cannot fail; all methods
// grow the buffer.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) bytes(p []byte) {
	e.u32(uint32(len(p)))
	e.b = append(e.b, p...)
}

// dec is a cursor-style decoder with truncation checks. Methods
// return an error on short input; decode functions propagate it.
type dec struct {
	b   []byte
	off int
}

func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) need(n int) error {
	if d.remaining() < n {
		return fmt.Errorf("wire: truncated message (need %d bytes, have %d)", n, d.remaining())
	}
	return nil
}

func (d *dec) u8() (uint8, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *dec) u32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *dec) u64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

func (d *dec) bytes() ([]byte, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if err := d.need(int(n)); err != nil {
		return nil, err
	}
	p := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return p, nil
}

// count validates a claimed record count against the bytes actually
// present: each record needs at least min bytes, so a count that
// cannot fit is rejected before any allocation sized by it.
func (d *dec) count(min int) (int, error) {
	n, err := d.u32()
	if err != nil {
		return 0, err
	}
	if min > 0 && int(n) > d.remaining()/min {
		return 0, fmt.Errorf("wire: implausible count %d for %d remaining bytes", n, d.remaining())
	}
	return int(n), nil
}

func (d *dec) dims() (int, error) {
	k, err := d.u32()
	if err != nil {
		return 0, err
	}
	if k == 0 || k > MaxDims {
		return 0, fmt.Errorf("wire: bad dimension count %d", k)
	}
	return int(k), nil
}

func (d *dec) coords(k int) ([]uint32, error) {
	if err := d.need(4 * k); err != nil {
		return nil, err
	}
	out := make([]uint32, k)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(d.b[d.off:])
		d.off += 4
	}
	return out, nil
}

package wire

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// TestFrameRoundTrip: frames written with WriteFrame come back from
// ReadFrame byte-identical, across payload sizes including empty.
func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var buf bytes.Buffer
	type frame struct {
		typ     uint8
		payload []byte
	}
	var want []frame
	for i := 0; i < 50; i++ {
		p := make([]byte, rng.Intn(2000))
		rng.Read(p)
		f := frame{typ: uint8(rng.Intn(256)), payload: p}
		want = append(want, f)
		if err := WriteFrame(&buf, f.typ, f.payload); err != nil {
			t.Fatal(err)
		}
	}
	for i, f := range want {
		typ, p, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != f.typ || !bytes.Equal(p, f.payload) {
			t.Fatalf("frame %d: round trip mismatch", i)
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("clean end: got %v, want io.EOF", err)
	}
}

// TestFrameErrors: zero and oversized lengths are rejected; a
// truncated frame reads as unexpected EOF, not clean EOF.
func TestFrameErrors(t *testing.T) {
	if err := WriteFrame(io.Discard, MsgBatch, make([]byte, MaxFrame)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); err == nil {
		t.Fatal("oversized length accepted")
	}
	// Length says 10 bytes but only 3 follow.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{10, 0, 0, 0, MsgDone, 1, 2})); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame: got %v, want unexpected EOF", err)
	}
}

// TestMessageRoundTrips: every message type encodes and decodes to an
// equal value.
func TestMessageRoundTrips(t *testing.T) {
	check := func(name string, got, want any, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: round trip mismatch:\n got %+v\nwant %+v", name, got, want)
		}
	}

	hello := Hello{Major: 1, Minor: 3}
	gh, err := DecodeHello(hello.Encode())
	check("hello", gh, hello, err)

	wel := Welcome{Major: 1, Minor: 0, Bits: []uint32{10, 10}}
	gw, err := DecodeWelcome(wel.Encode())
	check("welcome", gw, wel, err)

	rr := RangeReq{Header: Header{ID: 7, TimeoutMS: 1500, Flags: FlagTrace, Trace: 0xdeadbeefcafe0123}, Strategy: 2,
		Lo: []uint32{1, 2}, Hi: []uint32{30, 40}}
	gr, err := DecodeRangeReq(rr.Encode())
	check("range", gr, rr, err)

	nr := NearestReq{Header: Header{ID: 8, Flags: FlagTrace}, Metric: 1, M: 5, Q: []uint32{100, 200, 300}}
	gn, err := DecodeNearestReq(nr.Encode())
	check("nearest", gn, nr, err)

	ir := InsertReq{Header: Header{ID: 9}, Dims: 2, Points: []Point{
		{ID: 1, Coords: []uint32{5, 6}},
		{ID: 2, Coords: []uint32{7, 8}},
	}}
	gi, err := DecodeInsertReq(ir.Encode())
	check("insert", gi, ir, err)

	dr := DeleteReq{Header: Header{ID: 12, TimeoutMS: 250}, Dims: 2, Points: []Point{
		{ID: 3, Coords: []uint32{9, 10}},
		{ID: 4, Coords: []uint32{11, 12}},
	}}
	gdr, err := DecodeDeleteReq(dr.Encode())
	check("delete", gdr, dr, err)

	jr := JoinReq{Header: Header{ID: 10, TimeoutMS: 100}, Workers: 4, Dims: 2,
		A: []JoinItem{{ID: 1, Lo: []uint32{0, 0}, Hi: []uint32{5, 5}}},
		B: []JoinItem{{ID: 2, Lo: []uint32{3, 3}, Hi: []uint32{9, 9}},
			{ID: 3, Lo: []uint32{6, 6}, Hi: []uint32{7, 7}}},
	}
	gj, err := DecodeJoinReq(jr.Encode())
	check("join", gj, jr, err)

	sr := SimpleReq{Header: Header{ID: 11}}
	gs, err := DecodeSimpleReq(sr.Encode())
	check("simple", gs, sr, err)

	cn := Cancel{ID: 7}
	gc, err := DecodeCancel(cn.Encode())
	check("cancel", gc, cn, err)

	bp := Batch{ID: 7, Kind: KindPoints, Dims: 2, Points: []Point{
		{ID: 42, Coords: []uint32{1, 2}},
	}}
	gbp, err := DecodeBatch(bp.Encode())
	check("batch-points", gbp, bp, err)

	bq := Batch{ID: 7, Kind: KindPairs, Dims: 0, Pairs: [][2]uint64{{1, 2}, {3, 4}}}
	gbq, err := DecodeBatch(bq.Encode())
	check("batch-pairs", gbq, bq, err)

	bn := Batch{ID: 7, Kind: KindNeighbors, Dims: 2, Neighbors: []Neighbor{
		{Point: Point{ID: 5, Coords: []uint32{9, 9}}, Dist: 2.5},
	}}
	gbn, err := DecodeBatch(bn.Encode())
	check("batch-neighbors", gbn, bn, err)

	dn := Done{ID: 7, Stats: make([]uint64, NumStats)}
	dn.Stats[StatResults] = 12
	dn.Stats[StatDataPages] = 3
	gd, err := DecodeDone(dn.Encode())
	check("done", gd, dn, err)
	if gd.Stat(StatResults) != 12 || gd.Stat(NumStats+5) != 0 {
		t.Fatal("Done.Stat accessor wrong")
	}

	dt := Done{ID: 7, Stats: []uint64{1, 2}, Timings: make([]uint64, NumTimings)}
	dt.Timings[TimingExec] = 1500
	dt.Timings[TimingTotal] = 2000
	gdt, err := DecodeDone(dt.Encode())
	check("done-timings", gdt, dt, err)
	if gdt.Timing(TimingExec) != 1500 || gdt.Timing(NumTimings+3) != 0 {
		t.Fatal("Done.Timing accessor wrong")
	}

	kv := StatsKV{ID: 7, KVs: []KV{
		{Name: "server.requests", Value: 42},
		{Name: "server.latency.range.p99", Value: 1234567},
	}}
	gkv, err := DecodeStatsKV(kv.Encode())
	check("stats-kv", gkv, kv, err)

	tm := TextMsg{ID: 7, Text: "plan: index-scan"}
	gt, err := DecodeTextMsg(tm.Encode())
	check("text", gt, tm, err)

	em := ErrorMsg{ID: 7, Code: CodeOverloaded, Msg: "too busy"}
	ge, err := DecodeErrorMsg(em.Encode())
	check("error", ge, em, err)

	tr := TraceMsg{ID: 7, TraceID: 0x0123456789abcdef, Span: []byte{1, 2, 3, 4}}
	gtr, err := DecodeTraceMsg(tr.Encode())
	check("trace", gtr, tr, err)
}

// TestHeaderTraceTail: the minor-4 trace ID tail. An older payload
// ending at the flags byte decodes as Trace == 0; a 1.0 payload with
// neither flags nor trace decodes as both zero; the full tail round-
// trips.
func TestHeaderTraceTail(t *testing.T) {
	full := SimpleReq{Header: Header{ID: 5, Flags: FlagTrace, Trace: 42}}.Encode()
	got, err := DecodeSimpleReq(full)
	if err != nil || got.Trace != 42 || got.Flags != FlagTrace {
		t.Fatalf("full tail: %+v, %v", got, err)
	}
	// 1.1–1.3 form: header + flags, no trace.
	got, err = DecodeSimpleReq(full[:len(full)-8])
	if err != nil || got.Trace != 0 || got.Flags != FlagTrace {
		t.Fatalf("flags-only tail: %+v, %v", got, err)
	}
	// 1.0 form: header only.
	got, err = DecodeSimpleReq(full[:len(full)-9])
	if err != nil || got.Trace != 0 || got.Flags != 0 {
		t.Fatalf("bare header: %+v, %v", got, err)
	}
}

// TestDecodeTruncated: every decoder fails cleanly (no panic) on
// every strict prefix of a valid payload — except the prefixes that
// are themselves valid older-minor payloads. Requests carry a
// trailing minor-1 flags byte plus a minor-4 u64 trace ID, so any cut
// at or after the flags byte's position is a legal older form (a cut
// inside the trace ID reads as a 1.1 payload with trailing garbage,
// which the additive promise ignores); Done's timing array is an
// optional tail, so any cut before its count field decodes as a 1.0
// Done.
func TestDecodeTruncated(t *testing.T) {
	// okPrefix(full, n) reports whether a prefix of n bytes is a
	// legal older-minor payload rather than a truncation.
	strict := func(full []byte, n int) bool { return false }
	flagTail := func(full []byte, n int) bool { return n >= len(full)-9 }

	dn := Done{ID: 1, Stats: []uint64{1, 2}, Timings: []uint64{3, 4}}
	dnStatsEnd := len(Done{ID: 1, Stats: []uint64{1, 2}}.Encode()) - 4 // minus the empty timing count
	doneTail := func(full []byte, n int) bool {
		// A cut at the end of the stats array — or inside the first
		// three bytes after it, which an old decoder skips as trailing
		// garbage — is a valid 1.0 Done.
		return n >= dnStatsEnd && n < dnStatsEnd+4
	}

	payloads := map[string]struct {
		full   []byte
		ok     func([]byte, int) bool
		decode func([]byte) error
	}{
		"hello":   {Hello{Major: 1}.Encode(), strict, func(p []byte) error { _, err := DecodeHello(p); return err }},
		"welcome": {Welcome{Major: 1, Bits: []uint32{10, 10}}.Encode(), strict, func(p []byte) error { _, err := DecodeWelcome(p); return err }},
		"range": {RangeReq{Lo: []uint32{1, 2}, Hi: []uint32{3, 4}}.Encode(), flagTail,
			func(p []byte) error { _, err := DecodeRangeReq(p); return err }},
		"nearest": {NearestReq{M: 1, Q: []uint32{1, 2}}.Encode(), flagTail,
			func(p []byte) error { _, err := DecodeNearestReq(p); return err }},
		"insert": {InsertReq{Dims: 2, Points: []Point{{ID: 1, Coords: []uint32{1, 2}}}}.Encode(), flagTail,
			func(p []byte) error { _, err := DecodeInsertReq(p); return err }},
		"delete": {DeleteReq{Dims: 2, Points: []Point{{ID: 1, Coords: []uint32{1, 2}}}}.Encode(), flagTail,
			func(p []byte) error { _, err := DecodeDeleteReq(p); return err }},
		"join": {JoinReq{Dims: 1, A: []JoinItem{{ID: 1, Lo: []uint32{0}, Hi: []uint32{1}}}}.Encode(), flagTail,
			func(p []byte) error { _, err := DecodeJoinReq(p); return err }},
		"batch": {Batch{Kind: KindPoints, Dims: 1, Points: []Point{{ID: 1, Coords: []uint32{1}}}}.Encode(), strict,
			func(p []byte) error { _, err := DecodeBatch(p); return err }},
		"done": {dn.Encode(), doneTail,
			func(p []byte) error { _, err := DecodeDone(p); return err }},
		"stats-kv": {StatsKV{ID: 1, KVs: []KV{{Name: "x", Value: 2}}}.Encode(), strict,
			func(p []byte) error { _, err := DecodeStatsKV(p); return err }},
		"text": {TextMsg{ID: 1, Text: "x"}.Encode(), strict,
			func(p []byte) error { _, err := DecodeTextMsg(p); return err }},
		"error": {ErrorMsg{ID: 1, Code: 1, Msg: "x"}.Encode(), strict,
			func(p []byte) error { _, err := DecodeErrorMsg(p); return err }},
	}
	for name, tc := range payloads {
		for n := 0; n < len(tc.full); n++ {
			err := tc.decode(tc.full[:n])
			if tc.ok(tc.full, n) {
				if err != nil {
					t.Errorf("%s: legal older-minor prefix of %d/%d bytes rejected: %v", name, n, len(tc.full), err)
				}
			} else if err == nil {
				t.Errorf("%s: prefix of %d/%d bytes decoded without error", name, n, len(tc.full))
			}
		}
	}
}

// TestImplausibleCounts: a claimed record count far beyond the bytes
// present is rejected before allocation.
func TestImplausibleCounts(t *testing.T) {
	// InsertReq claiming 2^31 points with an empty body.
	var e enc
	Header{ID: 1}.encodeTo(&e)
	e.u32(2)       // dims
	e.u32(1 << 31) // point count
	e.u64(7)       // one lonely point id
	e.u32(1)       // x
	e.u32(2)       // y
	if _, err := DecodeInsertReq(e.b); err == nil {
		t.Fatal("implausible insert count accepted")
	}

	// Welcome claiming 1000 dimensions.
	var e2 enc
	e2.b = append(e2.b, Magic...)
	e2.u8(1)
	e2.u8(0)
	e2.u32(1000)
	if _, err := DecodeWelcome(e2.b); err == nil {
		t.Fatal("implausible dimension count accepted")
	}
}

// TestTxOpcodes: the minor-2 additions — transaction opcodes are
// distinct from every prior opcode, CONFLICT has a name, and the
// control messages round-trip through the SimpleReq shape.
func TestTxOpcodes(t *testing.T) {
	ops := map[string]uint8{
		"hello": MsgHello, "welcome": MsgWelcome, "range": MsgRange,
		"nearest": MsgNearest, "join": MsgJoin, "insert": MsgInsert,
		"checkpoint": MsgCheckpoint, "explain": MsgExplain, "stats": MsgStats,
		"cancel": MsgCancel, "delete": MsgDelete, "begin": MsgBegin,
		"commit": MsgCommit, "rollback": MsgRollback, "batch": MsgBatch,
		"done": MsgDone, "text": MsgText, "error": MsgError, "statskv": MsgStatsKV,
		"query": MsgQuery, "schema": MsgSchema, "rows": MsgRows, "trace": MsgTrace,
	}
	seen := map[uint8]string{}
	for name, op := range ops {
		if prev, dup := seen[op]; dup {
			t.Fatalf("opcode collision: %s and %s are both 0x%02x", name, prev, op)
		}
		seen[op] = name
	}
	if CodeString(CodeConflict) != "conflict" {
		t.Fatalf("CodeString(CodeConflict) = %q", CodeString(CodeConflict))
	}
	for _, op := range []uint8{MsgBegin, MsgCommit, MsgRollback} {
		req := SimpleReq{Header: Header{ID: 99, TimeoutMS: 42, Flags: FlagTrace}}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, op, req.Encode()); err != nil {
			t.Fatal(err)
		}
		typ, payload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != op {
			t.Fatalf("opcode 0x%02x came back as 0x%02x", op, typ)
		}
		got, err := DecodeSimpleReq(payload)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Fatalf("tx control round trip mismatch: %+v != %+v", got, req)
		}
	}
}

// TestMinorVersionTrailingBytes: decoders ignore unknown trailing
// payload — the wire's minor-version compatibility promise.
func TestMinorVersionTrailingBytes(t *testing.T) {
	rr := RangeReq{Header: Header{ID: 3}, Lo: []uint32{1}, Hi: []uint32{2}}
	extended := append(rr.Encode(), 0xde, 0xad, 0xbe, 0xef)
	got, err := DecodeRangeReq(extended)
	if err != nil {
		t.Fatalf("trailing bytes rejected: %v", err)
	}
	if got.ID != 3 || got.Lo[0] != 1 || got.Hi[0] != 2 {
		t.Fatal("decode with trailing bytes corrupted fields")
	}
}

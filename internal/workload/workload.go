// Package workload generates the data sets and query sets of the
// paper's experiments (Section 5.3.2): uniformly distributed points
// (experiment U), clustered points (experiment C: 50 small clusters
// of 100 points each) and diagonal points (experiment D: points
// uniformly distributed along the x = y line), together with range
// queries of controlled shape and volume at random locations.
//
// All generators are deterministic given their seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"probe/internal/geom"
	"probe/internal/zorder"
)

// Uniform generates n points uniformly distributed over grid g
// (experiment U).
func Uniform(g zorder.Grid, n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		coords := make([]uint32, g.Dims())
		for d := range coords {
			coords[d] = uint32(rng.Uint64() % g.Side())
		}
		pts[i] = geom.Point{ID: uint64(i), Coords: coords}
	}
	return pts
}

// Clustered generates clusters*perCluster points in small Gaussian
// clusters with the given standard deviation, centered uniformly at
// random (experiment C: 50 clusters of 100 points). Points falling
// outside the grid are clamped to its edge.
func Clustered(g zorder.Grid, clusters, perCluster int, stddev float64, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, clusters*perCluster)
	side := float64(g.Side())
	id := uint64(0)
	for c := 0; c < clusters; c++ {
		center := make([]float64, g.Dims())
		for d := range center {
			center[d] = rng.Float64() * side
		}
		for p := 0; p < perCluster; p++ {
			coords := make([]uint32, g.Dims())
			for d := range coords {
				v := center[d] + rng.NormFloat64()*stddev
				coords[d] = clamp(v, side)
			}
			pts = append(pts, geom.Point{ID: id, Coords: coords})
			id++
		}
	}
	return pts
}

// Diagonal generates n points uniformly distributed along the main
// diagonal of the space (experiment D), jittered by the given spread
// perpendicular to it.
func Diagonal(g zorder.Grid, n int, spread float64, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	side := float64(g.Side())
	pts := make([]geom.Point, n)
	for i := range pts {
		t := rng.Float64() * side
		coords := make([]uint32, g.Dims())
		for d := range coords {
			coords[d] = clamp(t+rng.NormFloat64()*spread, side)
		}
		pts[i] = geom.Point{ID: uint64(i), Coords: coords}
	}
	return pts
}

func clamp(v, side float64) uint32 {
	if v < 0 {
		return 0
	}
	if v >= side-1 {
		return uint32(side - 1)
	}
	return uint32(v)
}

// Dedupe removes points sharing identical coordinates, keeping the
// first occurrence; the paper's model has at most one tuple per
// pixel. Order is preserved.
func Dedupe(g zorder.Grid, pts []geom.Point) []geom.Point {
	seen := make(map[uint64]bool, len(pts))
	out := pts[:0:0]
	for _, p := range pts {
		z := g.ShuffleKey(p.Coords)
		if seen[z] {
			continue
		}
		seen[z] = true
		out = append(out, p)
	}
	return out
}

// QuerySpec describes one query family of the Section 5.3.2 sweep:
// rectangles of a given volume (as a fraction of the space) and
// aspect ratio (width : height = Aspect : 1), placed at random
// locations.
type QuerySpec struct {
	// Volume is the query's volume as a fraction of the space (0,1].
	Volume float64
	// Aspect is width/height. 1 is square; 0.5 is twice as tall as
	// wide; 16 is long and flat. For k > 2 dimensions the first axis
	// gets Aspect and the rest share the remaining volume equally.
	Aspect float64
}

// String implements fmt.Stringer.
func (q QuerySpec) String() string {
	return fmt.Sprintf("v=%.4f aspect=%g", q.Volume, q.Aspect)
}

// Sides returns the integer side lengths of a query with the spec's
// volume and aspect on grid g, each at least 1 and at most the grid
// side.
func (q QuerySpec) Sides(g zorder.Grid) ([]uint32, error) {
	if q.Volume <= 0 || q.Volume > 1 {
		return nil, fmt.Errorf("workload: volume %v outside (0,1]", q.Volume)
	}
	if q.Aspect <= 0 {
		return nil, fmt.Errorf("workload: aspect %v not positive", q.Aspect)
	}
	k := g.Dims()
	side := float64(g.Side())
	vol := q.Volume * math.Pow(side, float64(k))
	// base^k * aspect = vol, with dimension 0 scaled by aspect.
	base := math.Pow(vol/q.Aspect, 1/float64(k))
	f := make([]float64, k)
	for d := range f {
		f[d] = base
		if d == 0 {
			f[d] = base * q.Aspect
		}
	}
	// If a side exceeds the grid, clamp it and redistribute the lost
	// volume over the unclamped dimensions so equal-volume shape
	// comparisons stay fair (extreme aspects on small grids would
	// otherwise silently shrink the query).
	for iter := 0; iter < k; iter++ {
		excess := 1.0
		free := 0
		for _, s := range f {
			if s > side {
				excess *= s / side
			} else {
				free++
			}
		}
		if excess == 1.0 || free == 0 {
			break
		}
		scale := math.Pow(excess, 1/float64(free))
		for d := range f {
			if f[d] > side {
				f[d] = side
			} else {
				f[d] *= scale
			}
		}
	}
	sides := make([]uint32, k)
	for d := range sides {
		si := uint32(math.Round(f[d]))
		if si < 1 {
			si = 1
		}
		if uint64(si) > g.Side() {
			si = uint32(g.Side())
		}
		sides[d] = si
	}
	return sides, nil
}

// Queries places count queries of the given spec at random locations
// inside grid g.
func Queries(g zorder.Grid, spec QuerySpec, count int, seed int64) ([]geom.Box, error) {
	sides, err := spec.Sides(g)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	boxes := make([]geom.Box, count)
	for i := range boxes {
		lo := make([]uint32, g.Dims())
		hi := make([]uint32, g.Dims())
		for d := range lo {
			maxLo := uint32(g.Side()) - sides[d]
			var l uint32
			if maxLo > 0 {
				l = uint32(rng.Uint64() % uint64(maxLo+1))
			}
			lo[d] = l
			hi[d] = l + sides[d] - 1
		}
		boxes[i] = geom.Box{Lo: lo, Hi: hi}
	}
	return boxes, nil
}

// PartialMatches generates partial-match queries on grid g with the
// given restricted-dimension mask: restricted dimensions are pinned
// to random values, the rest span the whole axis (Section 5.3.1).
func PartialMatches(g zorder.Grid, restricted []bool, count int, seed int64) []geom.Box {
	rng := rand.New(rand.NewSource(seed))
	boxes := make([]geom.Box, count)
	for i := range boxes {
		value := make([]uint32, g.Dims())
		for d := range value {
			value[d] = uint32(rng.Uint64() % g.Side())
		}
		boxes[i] = geom.PartialMatchBox(g, restricted, value)
	}
	return boxes
}

// PaperSpecs returns the query sweep used for Tables S5-S7: the cross
// product of four volumes and seven aspect ratios, from long-and-flat
// through square to tall-and-narrow, echoing the paper's "queries of
// various rectangular shapes (and four different volumes)".
func PaperSpecs() []QuerySpec {
	volumes := []float64{0.01, 0.04, 0.09, 0.16}
	aspects := []float64{16, 4, 2, 1, 0.5, 0.25, 0.0625}
	specs := make([]QuerySpec, 0, len(volumes)*len(aspects))
	for _, v := range volumes {
		for _, a := range aspects {
			specs = append(specs, QuerySpec{Volume: v, Aspect: a})
		}
	}
	return specs
}

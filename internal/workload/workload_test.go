package workload

import (
	"math"
	"testing"

	"probe/internal/zorder"
)

func TestUniformDeterministicAndInRange(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	a := Uniform(g, 1000, 42)
	b := Uniform(g, 1000, 42)
	if len(a) != 1000 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i].ID != uint64(i) {
			t.Fatalf("ids not sequential")
		}
		for d, c := range a[i].Coords {
			if uint64(c) >= g.Side() {
				t.Fatalf("coord out of range")
			}
			if c != b[i].Coords[d] {
				t.Fatalf("not deterministic at %d", i)
			}
		}
	}
	c := Uniform(g, 1000, 43)
	same := 0
	for i := range a {
		if a[i].Coords[0] == c[i].Coords[0] && a[i].Coords[1] == c[i].Coords[1] {
			same++
		}
	}
	if same > 50 {
		t.Errorf("different seeds produced %d identical points", same)
	}
}

func TestClusteredShape(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	pts := Clustered(g, 50, 100, 5, 1)
	if len(pts) != 5000 {
		t.Fatalf("len = %d", len(pts))
	}
	// Points within one cluster should be near each other: measure
	// mean distance of consecutive points in the same cluster vs
	// across clusters.
	intra, inter := 0.0, 0.0
	for i := 1; i < len(pts); i++ {
		dx := float64(pts[i].Coords[0]) - float64(pts[i-1].Coords[0])
		dy := float64(pts[i].Coords[1]) - float64(pts[i-1].Coords[1])
		d := math.Hypot(dx, dy)
		if i%100 == 0 { // cluster boundary
			inter += d
		} else {
			intra += d
		}
	}
	intra /= float64(len(pts) - 50)
	inter /= 49
	if intra*3 > inter {
		t.Errorf("clusters not tight: intra %.1f vs inter %.1f", intra, inter)
	}
}

func TestDiagonalShape(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	pts := Diagonal(g, 2000, 3, 2)
	if len(pts) != 2000 {
		t.Fatalf("len = %d", len(pts))
	}
	off := 0.0
	for _, p := range pts {
		d := float64(p.Coords[0]) - float64(p.Coords[1])
		if d < 0 {
			d = -d
		}
		off += d
	}
	off /= float64(len(pts))
	if off > 10 {
		t.Errorf("points stray %.1f from the diagonal on average", off)
	}
}

func TestDedupe(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	pts := Uniform(g, 1000, 3) // heavy collisions on a 16x16 grid
	out := Dedupe(g, pts)
	if len(out) >= len(pts) {
		t.Errorf("expected collisions on a tiny grid")
	}
	seen := map[[2]uint32]bool{}
	for _, p := range out {
		key := [2]uint32{p.Coords[0], p.Coords[1]}
		if seen[key] {
			t.Fatalf("duplicate survived dedupe: %v", p)
		}
		seen[key] = true
	}
	if len(out) > 256 {
		t.Errorf("more deduped points than pixels")
	}
}

func TestQuerySpecSides(t *testing.T) {
	g := zorder.MustGrid(2, 10) // 1024x1024
	sides, err := (QuerySpec{Volume: 0.01, Aspect: 1}).Sides(g)
	if err != nil {
		t.Fatal(err)
	}
	// 1% of 1024^2 is a ~102x102 square.
	if sides[0] < 95 || sides[0] > 110 || sides[0] != sides[1] {
		t.Errorf("square sides = %v", sides)
	}
	sides, err = (QuerySpec{Volume: 0.01, Aspect: 4}).Sides(g)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(sides[0]) / float64(sides[1])
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("aspect-4 sides = %v (ratio %.2f)", sides, ratio)
	}
	vol := float64(sides[0]) * float64(sides[1]) / (1024.0 * 1024.0)
	if vol < 0.008 || vol > 0.012 {
		t.Errorf("volume = %.4f, want ~0.01", vol)
	}
}

func TestQuerySpecErrors(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	if _, err := (QuerySpec{Volume: 0, Aspect: 1}).Sides(g); err == nil {
		t.Errorf("zero volume accepted")
	}
	if _, err := (QuerySpec{Volume: 2, Aspect: 1}).Sides(g); err == nil {
		t.Errorf("volume > 1 accepted")
	}
	if _, err := (QuerySpec{Volume: 0.5, Aspect: 0}).Sides(g); err == nil {
		t.Errorf("zero aspect accepted")
	}
	if _, err := Queries(g, QuerySpec{Volume: -1, Aspect: 1}, 5, 1); err == nil {
		t.Errorf("Queries with bad spec accepted")
	}
}

func TestQueriesInBounds(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	for _, spec := range PaperSpecs() {
		boxes, err := Queries(g, spec, 5, 99)
		if err != nil {
			t.Fatal(err)
		}
		if len(boxes) != 5 {
			t.Fatalf("box count = %d", len(boxes))
		}
		for _, b := range boxes {
			for d := range b.Lo {
				if b.Lo[d] > b.Hi[d] || uint64(b.Hi[d]) >= g.Side() {
					t.Fatalf("spec %v: box %v out of bounds", spec, b)
				}
			}
		}
	}
}

func TestQueryExtremeAspectClamped(t *testing.T) {
	g := zorder.MustGrid(2, 4) // tiny 16x16 grid
	boxes, err := Queries(g, QuerySpec{Volume: 0.9, Aspect: 16}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range boxes {
		if uint64(b.Hi[0]) >= g.Side() || uint64(b.Hi[1]) >= g.Side() {
			t.Fatalf("clamping failed: %v", b)
		}
	}
}

func TestPartialMatches(t *testing.T) {
	g := zorder.MustGrid(3, 6)
	boxes := PartialMatches(g, []bool{true, false, true}, 10, 5)
	if len(boxes) != 10 {
		t.Fatalf("count = %d", len(boxes))
	}
	for _, b := range boxes {
		if b.Lo[0] != b.Hi[0] || b.Lo[2] != b.Hi[2] {
			t.Fatalf("restricted dims not pinned: %v", b)
		}
		if b.Lo[1] != 0 || uint64(b.Hi[1]) != g.Side()-1 {
			t.Fatalf("unrestricted dim not full: %v", b)
		}
	}
}

func TestPaperSpecs(t *testing.T) {
	specs := PaperSpecs()
	if len(specs) != 28 {
		t.Fatalf("PaperSpecs has %d entries, want 28 (4 volumes x 7 aspects)", len(specs))
	}
	vols := map[float64]bool{}
	for _, s := range specs {
		vols[s.Volume] = true
	}
	if len(vols) != 4 {
		t.Errorf("expected 4 distinct volumes, got %d", len(vols))
	}
	if specs[0].String() == "" {
		t.Errorf("QuerySpec.String empty")
	}
}

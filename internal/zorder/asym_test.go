package zorder

import (
	"math/rand"
	"testing"
)

func TestNewGridAsymValidation(t *testing.T) {
	if _, err := NewGridAsym(nil); err == nil {
		t.Errorf("empty bits accepted")
	}
	if _, err := NewGridAsym([]int{3, 0}); err == nil {
		t.Errorf("zero resolution accepted")
	}
	if _, err := NewGridAsym([]int{3, 33}); err == nil {
		t.Errorf("oversized resolution accepted")
	}
	if _, err := NewGridAsym([]int{32, 32, 32}); err == nil {
		t.Errorf("total > 64 accepted")
	}
	many := make([]int, 17)
	for i := range many {
		many[i] = 1
	}
	if _, err := NewGridAsym(many); err == nil {
		t.Errorf("17 dimensions accepted")
	}
	// Equal resolutions normalize to a symmetric grid.
	g, err := NewGridAsym([]int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if g != MustGrid(2, 4) {
		t.Errorf("equal-bit asymmetric grid should equal symmetric grid")
	}
	if !g.Symmetric() {
		t.Errorf("normalized grid should report symmetric")
	}
}

func TestAsymGridAccessors(t *testing.T) {
	g := MustGridAsym(3, 5)
	if g.Symmetric() {
		t.Errorf("asymmetric grid reports symmetric")
	}
	if g.Dims() != 2 || g.TotalBits() != 8 {
		t.Errorf("accessors wrong: %v", g)
	}
	if g.BitsOf(0) != 3 || g.BitsOf(1) != 5 {
		t.Errorf("BitsOf wrong")
	}
	if g.SideOf(0) != 8 || g.SideOf(1) != 32 {
		t.Errorf("SideOf wrong")
	}
	if g.Cells() != 256 {
		t.Errorf("Cells = %d", g.Cells())
	}
	if !g.Valid([]uint32{7, 31}) || g.Valid([]uint32{8, 0}) || g.Valid([]uint32{0, 32}) {
		t.Errorf("Valid wrong")
	}
	if g.String() == "" {
		t.Errorf("String empty")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Side on asymmetric grid should panic")
		}
	}()
	g.Side()
}

func TestAsymBitsPerDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("BitsPerDim on asymmetric grid should panic")
		}
	}()
	MustGridAsym(3, 5).BitsPerDim()
}

// TestAsymSplitOrder: splits cycle the dimensions and skip exhausted
// ones: for bits (2, 4) the order is x y x y y y.
func TestAsymSplitOrder(t *testing.T) {
	g := MustGridAsym(2, 4)
	want := []int{0, 1, 0, 1, 1, 1}
	order := g.SplitOrder()
	for j, w := range want {
		if int(order[j]) != w {
			t.Errorf("split %d = %d, want %d", j, order[j], w)
		}
		if g.SplitDim(j) != w {
			t.Errorf("SplitDim(%d) = %d, want %d", j, g.SplitDim(j), w)
		}
	}
}

func TestAsymShuffleRoundTrip(t *testing.T) {
	grids := []Grid{
		MustGridAsym(3, 5),
		MustGridAsym(1, 7),
		MustGridAsym(10, 2, 4),
		MustGridAsym(32, 16),
		MustGridAsym(2, 2, 2, 30),
	}
	rng := rand.New(rand.NewSource(101))
	for _, g := range grids {
		for trial := 0; trial < 300; trial++ {
			coords := make([]uint32, g.Dims())
			for d := range coords {
				coords[d] = uint32(rng.Uint64() % g.SideOf(d))
			}
			e := g.Shuffle(coords)
			if int(e.Len) != g.TotalBits() {
				t.Fatalf("%v: length %d", g, e.Len)
			}
			back := g.Unshuffle(e)
			for d := range coords {
				if back[d] != coords[d] {
					t.Fatalf("%v: round trip %v -> %v", g, coords, back)
				}
			}
		}
	}
}

// TestAsymZOrderIsSorted: increasing a coordinate increases the z key
// (monotonicity along axes holds on asymmetric grids too).
func TestAsymZOrderMonotone(t *testing.T) {
	g := MustGridAsym(3, 6)
	for y := uint32(0); y < 64; y += 5 {
		var prev uint64
		for x := uint32(0); x < 8; x++ {
			z := g.ShuffleKey([]uint32{x, y})
			if x > 0 && z <= prev {
				t.Fatalf("z not monotone in x at (%d,%d)", x, y)
			}
			prev = z
		}
	}
}

// TestAsymRegionConsistency: a pixel is inside an element's region
// iff the element contains its z value.
func TestAsymRegionConsistency(t *testing.T) {
	g := MustGridAsym(3, 5)
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(g.TotalBits() + 1)
		e := NewElement(rng.Uint64()&(1<<uint(n)-1), n)
		lo, hi := g.Region(e)
		for x := uint32(0); x < 8; x++ {
			for y := uint32(0); y < 32; y++ {
				inRegion := x >= lo[0] && x <= hi[0] && y >= lo[1] && y <= hi[1]
				contained := e.Contains(g.Shuffle([]uint32{x, y}))
				if inRegion != contained {
					t.Fatalf("element %v: pixel (%d,%d) region=%v contains=%v",
						e, x, y, inRegion, contained)
				}
			}
		}
	}
}

// TestAsymBigMinBruteForce: the skip primitive stays exact on
// asymmetric grids.
func TestAsymBigMinBruteForce(t *testing.T) {
	g := MustGridAsym(3, 5)
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 300; trial++ {
		lo := make([]uint32, 2)
		hi := make([]uint32, 2)
		for d := range lo {
			a := uint32(rng.Uint64() % g.SideOf(d))
			b := uint32(rng.Uint64() % g.SideOf(d))
			if a > b {
				a, b = b, a
			}
			lo[d], hi[d] = a, b
		}
		z := rng.Uint64() >> uint(64-g.TotalBits()) << uint(64-g.TotalBits())
		got, gok := g.BigMin(z, lo, hi)
		want, wok := bruteBigMin(g, z, lo, hi)
		if gok != wok || (gok && got != want) {
			t.Fatalf("BigMin(%x,%v,%v) = (%x,%v), want (%x,%v)", z, lo, hi, got, gok, want, wok)
		}
		gotL, lok := g.LitMax(z, lo, hi)
		wantL, wlok := bruteLitMax(g, z, lo, hi)
		if lok != wlok || (lok && gotL != wantL) {
			t.Fatalf("LitMax mismatch")
		}
	}
}

func TestAsymElementForRegionRoundTrip(t *testing.T) {
	g := MustGridAsym(2, 4)
	order := g.SplitOrder()
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(g.TotalBits() + 1)
		e := NewElement(rng.Uint64()&(1<<uint(n)-1), n)
		lo, _ := g.Region(e)
		m := make([]int, g.Dims())
		for j := 0; j < n; j++ {
			m[order[j]]++
		}
		got, err := g.ElementForRegion(lo, m)
		if err != nil {
			t.Fatalf("ElementForRegion: %v", err)
		}
		if got != e {
			t.Fatalf("round trip %v -> %v", e, got)
		}
	}
	// Unbalanced prefixes are rejected.
	if _, err := g.ElementForRegion([]uint32{0, 0}, []int{0, 1}); err == nil {
		t.Errorf("non-splitting region accepted")
	}
}

package zorder

// This file implements the "random access" optimization of the range
// search merge (Section 3.3): when the current point's z value falls
// outside the query box, BigMin finds the next z value that could
// possibly be inside, so the merge can skip parts of the space that
// cannot contribute to the result. LitMax is the symmetric operation
// for backward skipping.
//
// Both are implemented as a pruned descent of the implicit binary
// splitting tree: each tree node is an element, its two children are
// the halves produced by the next split. The descent maintains the
// node's coordinate region incrementally, so one call costs O(k*d)
// amortized per level visited.

// boxSearch carries the state of a BigMin/LitMax descent.
type boxSearch struct {
	g        Grid
	z        uint64
	order    [MaxBits]uint8
	qlo, qhi []uint32 // query box, inclusive
	rlo, rhi []uint32 // current node's region, mutated along the descent
}

func (s *boxSearch) disjoint() bool {
	for i := range s.qlo {
		if s.qlo[i] > s.rhi[i] || s.qhi[i] < s.rlo[i] {
			return true
		}
	}
	return false
}

func (s *boxSearch) contained() bool {
	for i := range s.qlo {
		if s.rlo[i] < s.qlo[i] || s.rhi[i] > s.qhi[i] {
			return false
		}
	}
	return true
}

// descend narrows the region to child b of the split at depth and
// returns the previous bound so the caller can restore it.
func (s *boxSearch) descend(depth, b int) (dim int, saved uint32) {
	dim = int(s.order[depth])
	half := (s.rhi[dim]-s.rlo[dim])/2 + 1
	if b == 0 {
		saved = s.rhi[dim]
		s.rhi[dim] = s.rlo[dim] + half - 1
	} else {
		saved = s.rlo[dim]
		s.rlo[dim] += half
	}
	return dim, saved
}

func (s *boxSearch) restore(dim, b int, saved uint32) {
	if b == 0 {
		s.rhi[dim] = saved
	} else {
		s.rlo[dim] = saved
	}
}

// bigMin returns the smallest full-resolution z key >= s.z whose pixel
// lies inside the query box and inside element e, or ok == false.
func (s *boxSearch) bigMin(e Element) (uint64, bool) {
	if e.MaxZ(s.g.TotalBits()) < s.z {
		return 0, false
	}
	if s.disjoint() {
		return 0, false
	}
	if e.MinZ() >= s.z && s.contained() {
		return e.MinZ(), true
	}
	// e cannot be a pixel here: a pixel that survives both pruning
	// tests is contained and has MinZ == MaxZ >= s.z.
	for b := 0; b < 2; b++ {
		dim, saved := s.descend(int(e.Len), b)
		z, ok := s.bigMin(e.Child(b))
		s.restore(dim, b, saved)
		if ok {
			return z, true
		}
	}
	return 0, false
}

// litMax returns the largest full-resolution z key <= s.z whose pixel
// lies inside the query box and inside element e, or ok == false.
func (s *boxSearch) litMax(e Element) (uint64, bool) {
	if e.MinZ() > s.z {
		return 0, false
	}
	if s.disjoint() {
		return 0, false
	}
	if e.MaxZ(s.g.TotalBits()) <= s.z && s.contained() {
		return e.MaxZ(s.g.TotalBits()), true
	}
	for b := 1; b >= 0; b-- {
		dim, saved := s.descend(int(e.Len), b)
		z, ok := s.litMax(e.Child(b))
		s.restore(dim, b, saved)
		if ok {
			return z, true
		}
	}
	return 0, false
}

func newBoxSearch(g Grid, z uint64, lo, hi []uint32) *boxSearch {
	s := &boxSearch{
		g: g, z: z,
		order: g.SplitOrder(),
		qlo:   lo, qhi: hi,
		rlo: make([]uint32, g.Dims()),
		rhi: make([]uint32, g.Dims()),
	}
	for i := range s.rhi {
		s.rhi[i] = uint32(g.SideOf(i) - 1)
	}
	return s
}

// BigMin returns the smallest full-resolution z key >= z whose pixel
// lies inside the box [lo, hi] (inclusive per dimension). ok is false
// when no such pixel exists. BigMin(0, lo, hi) yields the first z
// value inside the box.
func (g Grid) BigMin(z uint64, lo, hi []uint32) (uint64, bool) {
	if len(lo) != g.Dims() || len(hi) != g.Dims() {
		panic("zorder: BigMin box arity mismatch")
	}
	return newBoxSearch(g, z, lo, hi).bigMin(Element{})
}

// LitMax returns the largest full-resolution z key <= z whose pixel
// lies inside the box [lo, hi] (inclusive per dimension). ok is false
// when no such pixel exists.
func (g Grid) LitMax(z uint64, lo, hi []uint32) (uint64, bool) {
	if len(lo) != g.Dims() || len(hi) != g.Dims() {
		panic("zorder: LitMax box arity mismatch")
	}
	return newBoxSearch(g, z, lo, hi).litMax(Element{})
}

// InBox reports whether the pixel with the given full-resolution z key
// lies inside the box [lo, hi].
func (g Grid) InBox(z uint64, lo, hi []uint32) bool {
	coords := make([]uint32, g.Dims())
	g.UnshuffleInto(Element{Bits: z, Len: uint8(g.TotalBits())}, coords)
	for i := range coords {
		if coords[i] < lo[i] || coords[i] > hi[i] {
			return false
		}
	}
	return true
}

package zorder

import (
	"math/rand"
	"testing"
)

// bruteBigMin computes BigMin by scanning every pixel of the grid.
func bruteBigMin(g Grid, z uint64, lo, hi []uint32) (uint64, bool) {
	best := uint64(0)
	found := false
	coords := make([]uint32, g.Dims())
	var walk func(dim int)
	walk = func(dim int) {
		if dim == g.Dims() {
			zz := g.ShuffleKey(coords)
			if zz >= z && (!found || zz < best) {
				best, found = zz, true
			}
			return
		}
		for c := lo[dim]; c <= hi[dim]; c++ {
			coords[dim] = c
			walk(dim + 1)
		}
	}
	walk(0)
	return best, found
}

func bruteLitMax(g Grid, z uint64, lo, hi []uint32) (uint64, bool) {
	best := uint64(0)
	found := false
	coords := make([]uint32, g.Dims())
	var walk func(dim int)
	walk = func(dim int) {
		if dim == g.Dims() {
			zz := g.ShuffleKey(coords)
			if zz <= z && (!found || zz > best) {
				best, found = zz, true
			}
			return
		}
		for c := lo[dim]; c <= hi[dim]; c++ {
			coords[dim] = c
			walk(dim + 1)
		}
	}
	walk(0)
	return best, found
}

func randBox(rng *rand.Rand, g Grid) (lo, hi []uint32) {
	lo = make([]uint32, g.Dims())
	hi = make([]uint32, g.Dims())
	for i := range lo {
		a := uint32(rng.Uint64() % g.Side())
		b := uint32(rng.Uint64() % g.Side())
		if a > b {
			a, b = b, a
		}
		lo[i], hi[i] = a, b
	}
	return lo, hi
}

// TestBigMinAgainstBruteForce is the central correctness property of
// the skip optimization: BigMin must return exactly the smallest
// in-box z value >= z.
func TestBigMinAgainstBruteForce(t *testing.T) {
	for _, g := range []Grid{MustGrid(1, 5), MustGrid(2, 3), MustGrid(3, 2)} {
		rng := rand.New(rand.NewSource(int64(g.Dims())))
		for trial := 0; trial < 400; trial++ {
			lo, hi := randBox(rng, g)
			var z uint64
			if g.TotalBits() < 64 {
				z = rng.Uint64() % (1 << uint(g.TotalBits()))
				z <<= uint(64 - g.TotalBits())
			} else {
				z = rng.Uint64()
			}
			got, gok := g.BigMin(z, lo, hi)
			want, wok := bruteBigMin(g, z, lo, hi)
			if gok != wok || (gok && got != want) {
				t.Fatalf("%v BigMin(%x, %v, %v) = (%x,%v), want (%x,%v)",
					g, z, lo, hi, got, gok, want, wok)
			}
			gotL, lok := g.LitMax(z, lo, hi)
			wantL, wlok := bruteLitMax(g, z, lo, hi)
			if lok != wlok || (lok && gotL != wantL) {
				t.Fatalf("%v LitMax(%x, %v, %v) = (%x,%v), want (%x,%v)",
					g, z, lo, hi, gotL, lok, wantL, wlok)
			}
		}
	}
}

func TestBigMinWholeSpace(t *testing.T) {
	g := MustGrid(2, 4)
	lo := []uint32{0, 0}
	hi := []uint32{15, 15}
	// In the whole space every z >= z is a match, so BigMin(z) == z
	// rounded up to a valid key (all keys are valid here).
	z := g.ShuffleKey([]uint32{7, 9})
	got, ok := g.BigMin(z, lo, hi)
	if !ok || got != z {
		t.Errorf("BigMin in whole space should be identity")
	}
}

func TestBigMinExhaustedBox(t *testing.T) {
	g := MustGrid(2, 3)
	lo := []uint32{1, 1}
	hi := []uint32{2, 2}
	// A z beyond the box's last pixel yields no match.
	last := g.ShuffleKey([]uint32{2, 2})
	if _, ok := g.BigMin(last+1, lo, hi); ok {
		t.Errorf("BigMin past the box should fail")
	}
	if _, ok := g.LitMax(g.ShuffleKey([]uint32{1, 1})-1, lo, hi); ok {
		t.Errorf("LitMax before the box should fail")
	}
}

func TestBigMinFirstInBox(t *testing.T) {
	g := MustGrid(2, 3)
	// Figure 1's query: 1 <= X <= 3, 0 <= Y <= 4. The z-least pixel is
	// the one whose shuffled value is minimal; check against brute force.
	lo := []uint32{1, 0}
	hi := []uint32{3, 4}
	got, ok := g.BigMin(0, lo, hi)
	want, _ := bruteBigMin(g, 0, lo, hi)
	if !ok || got != want {
		t.Errorf("first-in-box = %x, want %x", got, want)
	}
	if !g.InBox(got, lo, hi) {
		t.Errorf("BigMin result not in box")
	}
}

func TestInBox(t *testing.T) {
	g := MustGrid(2, 3)
	lo := []uint32{1, 0}
	hi := []uint32{3, 4}
	if !g.InBox(g.ShuffleKey([]uint32{3, 4}), lo, hi) {
		t.Errorf("corner should be in box")
	}
	if g.InBox(g.ShuffleKey([]uint32{4, 4}), lo, hi) {
		t.Errorf("outside point reported in box")
	}
}

func TestBigMinPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("BigMin with wrong arity should panic")
		}
	}()
	MustGrid(2, 3).BigMin(0, []uint32{1}, []uint32{2, 3})
}

func BenchmarkBigMin(b *testing.B) {
	g := MustGrid(2, 16)
	lo := []uint32{1000, 2000}
	hi := []uint32{30000, 2500}
	rng := rand.New(rand.NewSource(7))
	zs := make([]uint64, 1024)
	for i := range zs {
		zs[i] = rng.Uint64() >> uint(64-g.TotalBits()) << uint(64-g.TotalBits())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BigMin(zs[i%len(zs)], lo, hi)
	}
}

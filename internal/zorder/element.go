package zorder

import (
	"fmt"
	"strings"
)

// Element is a region of the grid obtained by recursive splitting,
// identified by its z value: a bitstring of Len bits stored
// left-justified in Bits (bit 63 holds the first bit; unused low bits
// are zero).
//
// The empty element (Len == 0) is the whole space. A full-length
// element (Len == k*d) is a single pixel.
//
// Elements are the objects manipulated by all approximate-geometry
// algorithms: the only possible relationships between two elements are
// containment and precedence in z order; partial overlap cannot occur
// (Section 3.2 of the paper).
type Element struct {
	Bits uint64
	Len  uint8
}

// NewElement builds an element from the low n bits of v (so callers
// can write natural literals: NewElement(0b001, 3)).
func NewElement(v uint64, n int) Element {
	if n < 0 || n > MaxBits {
		panic(fmt.Sprintf("zorder: element length %d out of range", n))
	}
	if n == 0 {
		return Element{}
	}
	return Element{Bits: v << uint(64-n), Len: uint8(n)}
}

// ParseElement parses a binary string such as "00110" into an element.
func ParseElement(s string) (Element, error) {
	if len(s) > MaxBits {
		return Element{}, fmt.Errorf("zorder: element %q longer than %d bits", s, MaxBits)
	}
	var bits uint64
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
		case '1':
			bits |= 1 << uint(63-i)
		default:
			return Element{}, fmt.Errorf("zorder: element %q contains non-binary byte %q", s, s[i])
		}
	}
	return Element{Bits: bits, Len: uint8(len(s))}, nil
}

// MustParseElement is ParseElement panicking on error, for tests and
// fixed literals.
func MustParseElement(s string) Element {
	e, err := ParseElement(s)
	if err != nil {
		panic(err)
	}
	return e
}

// String renders the element as a binary string, e.g. "001". The whole
// space renders as "ε".
func (e Element) String() string {
	if e.Len == 0 {
		return "ε"
	}
	var b strings.Builder
	for i := 0; i < int(e.Len); i++ {
		if e.Bits&(1<<uint(63-i)) != 0 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// mask returns a mask of the n highest bits.
func mask(n uint8) uint64 {
	if n == 0 {
		return 0
	}
	return ^uint64(0) << uint(64-n)
}

// Compare orders elements lexicographically on their bitstrings: a
// proper prefix precedes its extensions. It returns -1, 0 or +1.
func (e Element) Compare(f Element) int {
	n := e.Len
	if f.Len < n {
		n = f.Len
	}
	m := mask(n)
	a, b := e.Bits&m, f.Bits&m
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case e.Len < f.Len:
		return -1
	case e.Len > f.Len:
		return 1
	}
	return 0
}

// Precedes reports whether e strictly precedes f in z order
// (lexicographic order on bitstrings). This is the `precedes` operator
// of the element object class (Section 4).
func (e Element) Precedes(f Element) bool { return e.Compare(f) < 0 }

// Contains reports whether e contains f, i.e. e's z value is a prefix
// of f's. Every element contains itself. This is the `contains`
// operator of the element object class (Section 4).
func (e Element) Contains(f Element) bool {
	if f.Len < e.Len {
		return false
	}
	m := mask(e.Len)
	return e.Bits&m == f.Bits&m
}

// Disjoint reports whether e and f share no pixels. Because partial
// overlap is impossible, two elements are disjoint exactly when
// neither contains the other.
func (e Element) Disjoint(f Element) bool {
	return !e.Contains(f) && !f.Contains(e)
}

// MinZ returns the smallest full-resolution z value (as a
// left-justified uint64 key) of any pixel inside the element: the z
// value of its "lower corner" in z order.
func (e Element) MinZ() uint64 { return e.Bits }

// MaxZ returns the largest full-resolution z value inside the element,
// given that full resolution is total bits long: the element's prefix
// followed by ones. The pair (MinZ, MaxZ) is the [zlo, zhi] record of
// the paper's range-search algorithm (Section 3.3).
func (e Element) MaxZ(total int) uint64 {
	if total < int(e.Len) {
		panic(fmt.Sprintf("zorder: element of %d bits longer than total %d", e.Len, total))
	}
	return e.Bits | (mask(uint8(total)) &^ mask(e.Len))
}

// Child returns the sub-element obtained by appending bit b (0 or 1).
func (e Element) Child(b int) Element {
	if e.Len >= MaxBits {
		panic("zorder: cannot split a 64-bit element")
	}
	c := Element{Bits: e.Bits, Len: e.Len + 1}
	if b != 0 {
		c.Bits |= 1 << uint(63-e.Len)
	}
	return c
}

// Parent returns the element with the last bit removed. The whole
// space is its own parent.
func (e Element) Parent() Element {
	if e.Len == 0 {
		return e
	}
	p := Element{Len: e.Len - 1}
	p.Bits = e.Bits & mask(p.Len)
	return p
}

// Bit returns bit i (0-based from the start) of the z value.
func (e Element) Bit(i int) int {
	if i < 0 || i >= int(e.Len) {
		panic(fmt.Sprintf("zorder: bit index %d out of %d", i, e.Len))
	}
	return int(e.Bits >> uint(63-i) & 1)
}

// IsPixel reports whether the element is a single pixel of g.
func (e Element) IsPixel(g Grid) bool { return int(e.Len) == g.TotalBits() }

// PixelCount returns the number of pixels of grid g covered by the
// element.
func (e Element) PixelCount(g Grid) uint64 {
	free := g.TotalBits() - int(e.Len)
	if free < 0 {
		panic("zorder: element longer than grid resolution")
	}
	if free == 64 {
		return 0 // 2^64 overflows; callers special-case the whole space
	}
	return 1 << uint(free)
}

// CompareElements is a convenience ordering function for sorting
// slices of elements with sort.Slice or slices.SortFunc.
func CompareElements(a, b Element) int { return a.Compare(b) }

package zorder

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewGridValidation(t *testing.T) {
	cases := []struct {
		k, d int
		ok   bool
	}{
		{2, 3, true},
		{2, 32, true},
		{3, 21, true},
		{3, 22, false},
		{1, 32, true},
		{1, 33, false},
		{0, 4, false},
		{2, 0, false},
		{-1, 4, false},
		{4, 16, true},
		{5, 13, false},
	}
	for _, c := range cases {
		_, err := NewGrid(c.k, c.d)
		if (err == nil) != c.ok {
			t.Errorf("NewGrid(%d,%d): err=%v, want ok=%v", c.k, c.d, err, c.ok)
		}
	}
}

func TestGridAccessors(t *testing.T) {
	g := MustGrid(2, 3)
	if g.Dims() != 2 || g.BitsPerDim() != 3 || g.TotalBits() != 6 {
		t.Fatalf("accessors wrong: %v", g)
	}
	if g.Side() != 8 {
		t.Errorf("Side = %d, want 8", g.Side())
	}
	if g.Cells() != 64 {
		t.Errorf("Cells = %d, want 64", g.Cells())
	}
	if MustGrid(2, 32).Cells() != 0 {
		t.Errorf("64-bit grid Cells should report 0 (overflow sentinel)")
	}
	if !g.Valid([]uint32{7, 7}) || g.Valid([]uint32{8, 0}) || g.Valid([]uint32{1}) {
		t.Errorf("Valid misbehaves")
	}
}

func TestSplitDimCycles(t *testing.T) {
	g := MustGrid(3, 4)
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if g.SplitDim(i) != w {
			t.Errorf("SplitDim(%d) = %d, want %d", i, g.SplitDim(i), w)
		}
	}
}

func TestParseAndString(t *testing.T) {
	for _, s := range []string{"0", "1", "001", "01101101", "0000000000000001"} {
		e, err := ParseElement(s)
		if err != nil {
			t.Fatalf("ParseElement(%q): %v", s, err)
		}
		if e.String() != s {
			t.Errorf("round trip %q -> %q", s, e.String())
		}
	}
	if (Element{}).String() != "ε" {
		t.Errorf("empty element should render as ε")
	}
	if _, err := ParseElement("01x"); err == nil {
		t.Errorf("ParseElement should reject non-binary input")
	}
	if _, err := ParseElement(string(make([]byte, 65))); err == nil {
		t.Errorf("ParseElement should reject >64 bits")
	}
}

func TestNewElementMatchesParse(t *testing.T) {
	if NewElement(0b001, 3) != MustParseElement("001") {
		t.Errorf("NewElement(0b001,3) != parse(001)")
	}
	if NewElement(0, 0) != (Element{}) {
		t.Errorf("zero-length element should be empty")
	}
}

func TestCompareLexicographic(t *testing.T) {
	// From the paper: a prefix precedes its extensions, and order is
	// lexicographic on left-justified bitstrings.
	ordered := []string{"", "0", "00", "001", "0011", "01", "0110", "1", "10", "11"}
	for i := range ordered {
		for j := range ordered {
			a, b := MustParseElement(ordered[i]), MustParseElement(ordered[j])
			got := a.Compare(b)
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%q,%q) = %d, want %d", ordered[i], ordered[j], got, want)
			}
			if a.Precedes(b) != (want < 0) {
				t.Errorf("Precedes(%q,%q) inconsistent with Compare", ordered[i], ordered[j])
			}
		}
	}
}

func TestContains(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"", "0110", true},
		{"", "", true},
		{"0", "0110", true},
		{"01", "0110", true},
		{"0110", "0110", true},
		{"0110", "011", false},
		{"1", "0110", false},
		{"010", "0110", false},
	}
	for _, c := range cases {
		a, b := MustParseElement(c.a), MustParseElement(c.b)
		if got := a.Contains(b); got != c.want {
			t.Errorf("Contains(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestNoPartialOverlap verifies the paper's key structural claim
// (Section 3.2): the only possible relationships between elements are
// containment and precedence; overlap other than containment cannot
// occur. We check that Disjoint is exactly "neither contains" and that
// disjoint elements have disjoint [MinZ, MaxZ] ranges.
func TestNoPartialOverlap(t *testing.T) {
	g := MustGrid(2, 3)
	rng := rand.New(rand.NewSource(1))
	randElem := func() Element {
		n := rng.Intn(g.TotalBits() + 1)
		return NewElement(rng.Uint64()&(1<<uint(n)-1), n)
	}
	for i := 0; i < 5000; i++ {
		a, b := randElem(), randElem()
		alo, ahi := a.MinZ(), a.MaxZ(g.TotalBits())
		blo, bhi := b.MinZ(), b.MaxZ(g.TotalBits())
		rangesOverlap := alo <= bhi && blo <= ahi
		if rangesOverlap == a.Disjoint(b) {
			t.Fatalf("elements %v,%v: range overlap %v but Disjoint %v",
				a, b, rangesOverlap, a.Disjoint(b))
		}
		if rangesOverlap && !(a.Contains(b) || b.Contains(a)) {
			t.Fatalf("partial overlap detected between %v and %v", a, b)
		}
	}
}

func TestMinMaxZ(t *testing.T) {
	g := MustGrid(2, 3)
	e := MustParseElement("001") // the large element of Figure 2/3
	if e.MinZ() != MustParseElement("001000").Bits {
		t.Errorf("MinZ wrong")
	}
	if e.MaxZ(g.TotalBits()) != MustParseElement("001111").Bits {
		t.Errorf("MaxZ wrong")
	}
	// The whole space spans everything.
	whole := Element{}
	if whole.MinZ() != 0 || whole.MaxZ(6) != MustParseElement("111111").Bits {
		t.Errorf("whole-space z range wrong")
	}
}

// TestConsecutiveZValues reproduces Figure 3: all full-resolution z
// values inside an element are consecutive and share the element's
// prefix.
func TestConsecutiveZValues(t *testing.T) {
	g := MustGrid(2, 3)
	e := MustParseElement("001")
	var inside []uint64
	for x := uint32(0); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			p := g.Shuffle([]uint32{x, y})
			if e.Contains(p) {
				inside = append(inside, p.Bits)
			}
		}
	}
	if len(inside) != int(e.PixelCount(g)) {
		t.Fatalf("element covers %d pixels, want %d", len(inside), e.PixelCount(g))
	}
	sort.Slice(inside, func(i, j int) bool { return inside[i] < inside[j] })
	if inside[0] != e.MinZ() || inside[len(inside)-1] != e.MaxZ(g.TotalBits()) {
		t.Errorf("extremes %x..%x don't match MinZ/MaxZ", inside[0], inside[len(inside)-1])
	}
	step := uint64(1) << uint(64-g.TotalBits())
	for i := 1; i < len(inside); i++ {
		if inside[i]-inside[i-1] != step {
			t.Errorf("z values not consecutive at %d", i)
		}
	}
}

func TestChildParentBit(t *testing.T) {
	e := MustParseElement("01")
	if e.Child(0) != MustParseElement("010") || e.Child(1) != MustParseElement("011") {
		t.Errorf("Child wrong")
	}
	if e.Child(1).Parent() != e {
		t.Errorf("Parent wrong")
	}
	if (Element{}).Parent() != (Element{}) {
		t.Errorf("whole space must be its own parent")
	}
	f := MustParseElement("0110")
	bits := []int{0, 1, 1, 0}
	for i, w := range bits {
		if f.Bit(i) != w {
			t.Errorf("Bit(%d) = %d, want %d", i, f.Bit(i), w)
		}
	}
}

func TestPixelCount(t *testing.T) {
	g := MustGrid(2, 3)
	if got := MustParseElement("001").PixelCount(g); got != 8 {
		t.Errorf("PixelCount(001) = %d, want 8", got)
	}
	if got := MustParseElement("001101").PixelCount(g); got != 1 {
		t.Errorf("pixel PixelCount = %d, want 1", got)
	}
	if got := (Element{}).PixelCount(g); got != 64 {
		t.Errorf("whole space PixelCount = %d, want 64", got)
	}
	if !MustParseElement("001101").IsPixel(g) || MustParseElement("001").IsPixel(g) {
		t.Errorf("IsPixel wrong")
	}
}

// Property: Compare is a total order consistent with containment:
// a container compares <= everything it contains.
func TestCompareContainsConsistency(t *testing.T) {
	f := func(av, bv uint64, an, bn uint8) bool {
		a := NewElement(av&(1<<uint(an%17)-1), int(an%17))
		b := NewElement(bv&(1<<uint(bn%17)-1), int(bn%17))
		if a.Contains(b) && a.Compare(b) > 0 {
			return false
		}
		if a.Compare(b) == 0 && b.Compare(a) != 0 {
			return false
		}
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

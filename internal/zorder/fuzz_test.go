package zorder

import "testing"

// Native fuzz targets. `go test` runs the seed corpus as regular
// tests; `go test -fuzz=FuzzShuffleRoundTrip ./internal/zorder` digs
// deeper.

func FuzzShuffleRoundTrip(f *testing.F) {
	f.Add(uint32(3), uint32(5), uint8(3))
	f.Add(uint32(0), uint32(0), uint8(1))
	f.Add(uint32(1<<31), uint32(7), uint8(32))
	f.Fuzz(func(t *testing.T, x, y uint32, dRaw uint8) {
		d := int(dRaw%32) + 1
		g, err := NewGrid(2, d)
		if err != nil {
			t.Skip()
		}
		x = uint32(uint64(x) % g.Side())
		y = uint32(uint64(y) % g.Side())
		e := g.Shuffle([]uint32{x, y})
		back := g.Unshuffle(e)
		if back[0] != x || back[1] != y {
			t.Fatalf("round trip (%d,%d) -> %v on d=%d", x, y, back, d)
		}
		if e != g.Shuffle2(x, y) {
			t.Fatalf("Shuffle2 disagrees at (%d,%d) d=%d", x, y, d)
		}
	})
}

func FuzzBigMinInvariants(f *testing.F) {
	f.Add(uint32(1), uint32(3), uint32(0), uint32(4), uint64(0))
	f.Add(uint32(0), uint32(7), uint32(0), uint32(7), uint64(1)<<60)
	f.Fuzz(func(t *testing.T, x1, x2, y1, y2 uint32, z uint64) {
		g := MustGrid(2, 4)
		side := uint32(g.Side())
		x1, x2, y1, y2 = x1%side, x2%side, y1%side, y2%side
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		lo := []uint32{x1, y1}
		hi := []uint32{x2, y2}
		z = z >> uint(64-g.TotalBits()) << uint(64-g.TotalBits())
		got, ok := g.BigMin(z, lo, hi)
		want, wok := bruteBigMin(g, z, lo, hi)
		if ok != wok || (ok && got != want) {
			t.Fatalf("BigMin(%x, %v, %v) = (%x,%v), want (%x,%v)", z, lo, hi, got, ok, want, wok)
		}
		if ok {
			if got < z {
				t.Fatalf("BigMin went backwards")
			}
			if !g.InBox(got, lo, hi) {
				t.Fatalf("BigMin result outside box")
			}
		}
	})
}

// FuzzZOrderJoinInvariants checks the properties the spatial join's
// sequence merge and z-prefix partitioner build on: Compare agrees
// with the [MinZ, MaxZ] interval view of elements, and containment is
// exactly interval nesting.
func FuzzZOrderJoinInvariants(f *testing.F) {
	f.Add(uint64(0b001), uint8(3), uint64(0b0011), uint8(4))
	f.Add(uint64(0), uint8(0), uint64(0xffff), uint8(16))
	f.Fuzz(func(t *testing.T, av uint64, an uint8, bv uint64, bn uint8) {
		a := NewElement(av&(1<<uint(an%17)-1), int(an%17))
		b := NewElement(bv&(1<<uint(bn%17)-1), int(bn%17))
		if a.MinZ() > a.MaxZ(MaxBits) {
			t.Fatalf("%v: MinZ > MaxZ", a)
		}
		// Sorting by Compare never decreases MinZ: the merge consumes
		// items in nondecreasing MinZ order.
		if a.Compare(b) <= 0 && a.MinZ() > b.MinZ() {
			t.Fatalf("%v <= %v but MinZ %x > %x", a, b, a.MinZ(), b.MinZ())
		}
		// Containment == interval nesting; disjoint == interval
		// disjointness (partial interval overlap cannot occur, §3.2).
		nested := a.MinZ() <= b.MinZ() && b.MaxZ(MaxBits) <= a.MaxZ(MaxBits)
		if a.Contains(b) != nested {
			t.Fatalf("Contains(%v, %v) = %v but interval nesting = %v", a, b, a.Contains(b), nested)
		}
		intervalsDisjoint := a.MaxZ(MaxBits) < b.MinZ() || b.MaxZ(MaxBits) < a.MinZ()
		if a.Disjoint(b) != intervalsDisjoint {
			t.Fatalf("Disjoint(%v, %v) = %v but intervals disjoint = %v",
				a, b, a.Disjoint(b), intervalsDisjoint)
		}
	})
}

func FuzzElementContainsCompare(f *testing.F) {
	f.Add(uint64(0b001), uint8(3), uint64(0b0011), uint8(4))
	f.Fuzz(func(t *testing.T, av uint64, an uint8, bv uint64, bn uint8) {
		a := NewElement(av&(1<<uint(an%17)-1), int(an%17))
		b := NewElement(bv&(1<<uint(bn%17)-1), int(bn%17))
		// Containment implies non-positive comparison.
		if a.Contains(b) && a.Compare(b) > 0 {
			t.Fatalf("container %v sorts after contained %v", a, b)
		}
		// Antisymmetry.
		if a.Compare(b) != -b.Compare(a) {
			t.Fatalf("Compare not antisymmetric")
		}
		// Disjoint == neither contains.
		if a.Disjoint(b) == (a.Contains(b) || b.Contains(a)) {
			t.Fatalf("Disjoint inconsistent for %v, %v", a, b)
		}
	})
}

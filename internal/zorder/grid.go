// Package zorder implements z values: the variable-length bitstrings,
// produced by bit interleaving, that identify the regions obtained by
// recursively splitting a k-dimensional grid (Orenstein, SIGMOD 1986,
// Section 3).
//
// A grid has resolution 2^d1 x ... x 2^dk over k dimensions (the
// paper's assumption of equal resolutions is the common case, and
// asymmetric resolutions are supported as the natural generalization
// discussed in [OREN85]). Splitting always halves a region, and the
// split direction cycles through the dimensions starting with
// dimension 0, skipping dimensions whose bits are exhausted. Each
// split contributes one bit to the region's z value; interleaving all
// bits of all coordinates yields the z value of a single pixel.
//
// Z values are kept left-justified in a uint64 (bit 63 is the first
// bit of the string), so lexicographic order on bitstrings of equal
// length is numeric order on the uint64. The total bit count must not
// exceed 64.
package zorder

import "fmt"

// MaxBits is the maximum total number of interleaved bits.
const MaxBits = 64

// MaxAsymDims is the maximum dimensionality of an asymmetric grid.
const MaxAsymDims = 16

// Grid describes a k-dimensional grid. In the symmetric case every
// dimension has d bits of resolution (coordinates in [0, 2^d));
// asymmetric grids give each dimension its own resolution.
// Coordinates are uint32, so resolutions are at most 32 bits. Grid is
// a comparable value type.
type Grid struct {
	k int // number of dimensions
	d int // bits per dimension (symmetric); 0 for asymmetric grids
	// bits holds per-dimension resolutions for asymmetric grids
	// (zeroed for symmetric grids, keeping == comparisons meaningful).
	bits  [MaxAsymDims]uint8
	total int // total z-value length
}

// NewGrid returns a symmetric grid with k dimensions and d bits per
// dimension. It returns an error if k or d is non-positive or k*d
// exceeds MaxBits.
func NewGrid(k, d int) (Grid, error) {
	if k <= 0 {
		return Grid{}, fmt.Errorf("zorder: dimensionality %d is not positive", k)
	}
	if d <= 0 || d > 32 {
		return Grid{}, fmt.Errorf("zorder: resolution %d bits outside [1,32]", d)
	}
	if k*d > MaxBits {
		return Grid{}, fmt.Errorf("zorder: k*d = %d exceeds %d bits", k*d, MaxBits)
	}
	return Grid{k: k, d: d, total: k * d}, nil
}

// MustGrid is like NewGrid but panics on error. It is intended for
// constant configurations in tests and examples.
func MustGrid(k, d int) Grid {
	g, err := NewGrid(k, d)
	if err != nil {
		panic(err)
	}
	return g
}

// NewGridAsym returns a grid whose dimension i has bits[i] bits of
// resolution (coordinates in [0, 2^bits[i])). At most MaxAsymDims
// dimensions; the total bit count must not exceed MaxBits. Equal
// resolutions yield a grid identical to NewGrid's.
func NewGridAsym(bits []int) (Grid, error) {
	if len(bits) == 0 {
		return Grid{}, fmt.Errorf("zorder: no dimensions")
	}
	if len(bits) > MaxAsymDims {
		return Grid{}, fmt.Errorf("zorder: %d dimensions exceeds %d for asymmetric grids", len(bits), MaxAsymDims)
	}
	total := 0
	symmetric := true
	for i, b := range bits {
		if b <= 0 || b > 32 {
			return Grid{}, fmt.Errorf("zorder: dimension %d resolution %d outside [1,32]", i, b)
		}
		if b != bits[0] {
			symmetric = false
		}
		total += b
	}
	if total > MaxBits {
		return Grid{}, fmt.Errorf("zorder: total %d bits exceeds %d", total, MaxBits)
	}
	if symmetric {
		return NewGrid(len(bits), bits[0])
	}
	g := Grid{k: len(bits), total: total}
	for i, b := range bits {
		g.bits[i] = uint8(b)
	}
	return g, nil
}

// MustGridAsym is NewGridAsym panicking on error.
func MustGridAsym(bits ...int) Grid {
	g, err := NewGridAsym(bits)
	if err != nil {
		panic(err)
	}
	return g
}

// Dims returns the number of dimensions k.
func (g Grid) Dims() int { return g.k }

// Symmetric reports whether every dimension has the same resolution.
func (g Grid) Symmetric() bool { return g.d != 0 }

// BitsPerDim returns the per-dimension resolution of a symmetric
// grid. It panics on asymmetric grids; use BitsOf instead.
func (g Grid) BitsPerDim() int {
	if g.d == 0 {
		panic("zorder: BitsPerDim on asymmetric grid; use BitsOf")
	}
	return g.d
}

// BitsOf returns the resolution of dimension i in bits.
func (g Grid) BitsOf(i int) int {
	if g.d != 0 {
		return g.d
	}
	return int(g.bits[i])
}

// TotalBits returns the length of a full-resolution z value.
func (g Grid) TotalBits() int { return g.total }

// Side returns the number of grid cells along one dimension of a
// symmetric grid, 2^d. It panics on asymmetric grids; use SideOf.
func (g Grid) Side() uint64 {
	if g.d == 0 {
		panic("zorder: Side on asymmetric grid; use SideOf")
	}
	return 1 << uint(g.d)
}

// SideOf returns the number of grid cells along dimension i.
func (g Grid) SideOf(i int) uint64 { return 1 << uint(g.BitsOf(i)) }

// Cells returns the total number of pixels in the grid. For a total
// of 64 bits the result overflows to 0; callers that need the exact
// count should special-case TotalBits() == 64.
func (g Grid) Cells() uint64 {
	if g.total == 64 {
		return 0
	}
	return 1 << uint(g.total)
}

// Valid reports whether the coordinates lie inside the grid.
func (g Grid) Valid(coords []uint32) bool {
	if len(coords) != g.k {
		return false
	}
	for i, c := range coords {
		if uint64(c) >= g.SideOf(i) {
			return false
		}
	}
	return true
}

// SplitDim returns the dimension discriminated by the split at the
// given depth (0-based): splits cycle x, y, z, x, y, z, ..., skipping
// dimensions whose resolution is exhausted.
func (g Grid) SplitDim(depth int) int {
	if g.d != 0 {
		return depth % g.k
	}
	var seq splitSequence
	seq.init(g)
	dim := 0
	for j := 0; ; j++ {
		dim = seq.next()
		if j == depth {
			return dim
		}
	}
}

// splitSequence iterates the split dimensions of a grid in order,
// skipping exhausted dimensions. It replaces repeated SplitDim calls
// on hot paths (O(1) amortized per split instead of O(depth)).
type splitSequence struct {
	g         Grid
	remaining [MaxAsymDims]uint8
	cursor    int
	sym       bool
}

func (s *splitSequence) init(g Grid) {
	s.g = g
	s.cursor = 0
	s.sym = g.d != 0
	if !s.sym {
		for i := 0; i < g.k; i++ {
			s.remaining[i] = g.bits[i]
		}
	}
}

// next returns the dimension of the next split. Calling it more than
// TotalBits times is undefined.
func (s *splitSequence) next() int {
	if s.sym {
		d := s.cursor % s.g.k
		s.cursor++
		return d
	}
	for {
		d := s.cursor % s.g.k
		s.cursor++
		if s.remaining[d] > 0 {
			s.remaining[d]--
			return d
		}
	}
}

// String implements fmt.Stringer.
func (g Grid) String() string {
	if g.d != 0 {
		return fmt.Sprintf("grid(k=%d,d=%d)", g.k, g.d)
	}
	return fmt.Sprintf("grid(bits=%v)", g.bits[:g.k])
}

// SplitOrder fills order[:TotalBits()] with the dimension split at
// each depth: the precomputed form of SplitDim for hot recursive
// descents.
func (g Grid) SplitOrder() [MaxBits]uint8 {
	var order [MaxBits]uint8
	var seq splitSequence
	seq.init(g)
	for j := 0; j < g.total; j++ {
		order[j] = uint8(seq.next())
	}
	return order
}

package zorder

import "fmt"

// Shuffle computes the full-resolution z value of a pixel by
// interleaving the bits of its coordinates, starting with dimension 0
// (x first, as in Figure 2 of the paper). The result is a pixel
// element of length TotalBits.
//
// Bit j of the z value (j = 0 is the first bit) belongs to the
// dimension split at depth j and carries that coordinate's
// next-most-significant unconsumed bit.
func (g Grid) Shuffle(coords []uint32) Element {
	if !g.Valid(coords) {
		panic(fmt.Sprintf("zorder: coordinates %v invalid for %v", coords, g))
	}
	var bits uint64
	var seq splitSequence
	seq.init(g)
	var used [MaxAsymDims]uint8
	for j := 0; j < g.total; j++ {
		dim := seq.next()
		bit := g.BitsOf(dim) - 1 - int(used[dim])
		used[dim]++
		if coords[dim]>>uint(bit)&1 != 0 {
			bits |= 1 << uint(63-j)
		}
	}
	return Element{Bits: bits, Len: uint8(g.total)}
}

// ShuffleKey is Shuffle returning only the uint64 key (the
// left-justified z value), the form stored in B+-tree entries.
func (g Grid) ShuffleKey(coords []uint32) uint64 { return g.Shuffle(coords).Bits }

// Shuffle2 is a fast path for symmetric 2-d grids.
func (g Grid) Shuffle2(x, y uint32) Element {
	if g.k != 2 || g.d == 0 {
		panic("zorder: Shuffle2 requires a symmetric 2-d grid")
	}
	bits := interleave2(x) << 1
	bits |= interleave2(y)
	// The interleaved pattern occupies the low 2*d bits in the order
	// x(d-1) y(d-1) ... x0 y0; left-justify it.
	return Element{Bits: bits << uint(64-2*g.d), Len: uint8(2 * g.d)}
}

// interleave2 spreads the low 32 bits of v so that bit i moves to bit
// 2i (the classic Morton spreading by magic masks).
func interleave2(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// compact2 is the inverse of interleave2.
func compact2(x uint64) uint32 {
	x &= 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0f0f0f0f0f0f0f0f
	x = (x | x>>4) & 0x00ff00ff00ff00ff
	x = (x | x>>8) & 0x0000ffff0000ffff
	x = (x | x>>16) & 0x00000000ffffffff
	return uint32(x)
}

// Unshuffle recovers the pixel coordinates from a full-resolution z
// value. It is the inverse of Shuffle.
func (g Grid) Unshuffle(e Element) []uint32 {
	coords := make([]uint32, g.k)
	g.UnshuffleInto(e, coords)
	return coords
}

// UnshuffleInto is Unshuffle writing into a caller-provided slice to
// avoid allocation on hot paths.
func (g Grid) UnshuffleInto(e Element, coords []uint32) {
	if int(e.Len) != g.total {
		panic(fmt.Sprintf("zorder: unshuffle of %d-bit element on %v", e.Len, g))
	}
	if len(coords) != g.k {
		panic("zorder: UnshuffleInto slice has wrong length")
	}
	for i := range coords {
		coords[i] = 0
	}
	var seq splitSequence
	seq.init(g)
	var used [MaxAsymDims]uint8
	for j := 0; j < g.total; j++ {
		dim := seq.next()
		bit := g.BitsOf(dim) - 1 - int(used[dim])
		used[dim]++
		if e.Bits>>uint(63-j)&1 != 0 {
			coords[dim] |= 1 << uint(bit)
		}
	}
}

// UnshuffleKey recovers coordinates from a uint64 z key.
func (g Grid) UnshuffleKey(z uint64) []uint32 {
	return g.Unshuffle(Element{Bits: z, Len: uint8(g.total)})
}

// Rank returns the position of a pixel along the z curve as an
// ordinary integer: the interleaved bits right-justified. This matches
// Figure 4 of the paper ([3, 5] -> 011011 = 27 on an 8x8 grid).
func (g Grid) Rank(coords []uint32) uint64 {
	e := g.Shuffle(coords)
	if g.total == 64 {
		return e.Bits
	}
	return e.Bits >> uint(64-g.total)
}

// Region returns, for each dimension, the inclusive coordinate range
// [lo, hi] covered by the element: the element's bits give an m_i-bit
// prefix of each coordinate i, and the region spans all completions of
// those prefixes (Section 3.1).
func (g Grid) Region(e Element) (lo, hi []uint32) {
	lo = make([]uint32, g.k)
	hi = make([]uint32, g.k)
	g.RegionInto(e, lo, hi)
	return lo, hi
}

// RegionInto is Region writing into caller-provided slices.
func (g Grid) RegionInto(e Element, lo, hi []uint32) {
	if int(e.Len) > g.total {
		panic("zorder: element longer than grid resolution")
	}
	for i := range lo {
		lo[i] = 0
	}
	var seq splitSequence
	seq.init(g)
	var m [MaxAsymDims]uint8 // bits consumed per dimension
	for j := 0; j < int(e.Len); j++ {
		dim := seq.next()
		if e.Bits>>uint(63-j)&1 != 0 {
			lo[dim] |= 1 << uint(g.BitsOf(dim)-1-int(m[dim]))
		}
		m[dim]++
	}
	for dim := 0; dim < g.k; dim++ {
		free := uint(g.BitsOf(dim) - int(m[dim]))
		hi[dim] = lo[dim] | (1<<free - 1)
	}
}

// ElementForRegion computes the z value for a region given, for each
// dimension, the common prefix length m[i] and the coordinate prefix
// carried in lo. It is the `shuffle` operator of the element object
// class (Section 4) generalized from pixels to regions. The region
// must be one obtainable by recursive splitting: the per-dimension
// prefix lengths must match the split sequence's first sum(m) steps.
func (g Grid) ElementForRegion(lo []uint32, m []int) (Element, error) {
	if len(lo) != g.k || len(m) != g.k {
		return Element{}, fmt.Errorf("zorder: region arity mismatch")
	}
	totalPrefix := 0
	for i, mi := range m {
		if mi < 0 || mi > g.BitsOf(i) {
			return Element{}, fmt.Errorf("zorder: prefix length %d out of [0,%d]", mi, g.BitsOf(i))
		}
		totalPrefix += mi
	}
	// The prefix lengths must be exactly what the split sequence
	// produces after totalPrefix splits.
	var seq splitSequence
	seq.init(g)
	var want [MaxAsymDims]uint8
	for j := 0; j < totalPrefix; j++ {
		want[seq.next()]++
	}
	for dim, mi := range m {
		if mi != int(want[dim]) {
			return Element{}, fmt.Errorf("zorder: region with prefix lengths %v is not a splitting region", m)
		}
	}
	var bits uint64
	seq.init(g)
	var used [MaxAsymDims]uint8
	for j := 0; j < totalPrefix; j++ {
		dim := seq.next()
		bit := g.BitsOf(dim) - 1 - int(used[dim])
		used[dim]++
		if lo[dim]>>uint(bit)&1 != 0 {
			bits |= 1 << uint(63-j)
		}
	}
	return Element{Bits: bits, Len: uint8(totalPrefix)}, nil
}

package zorder

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFigure4Rank checks the worked example of Figure 4:
// [3, 5] -> (011, 101) -> 011011 = 27 on an 8x8 grid.
func TestFigure4Rank(t *testing.T) {
	g := MustGrid(2, 3)
	if got := g.Rank([]uint32{3, 5}); got != 27 {
		t.Errorf("Rank([3,5]) = %d, want 27", got)
	}
	// Interleaving starts with x: [1,0] -> 10 -> 2, [0,1] -> 01 -> 1.
	g1 := MustGrid(2, 1)
	if g1.Rank([]uint32{1, 0}) != 2 || g1.Rank([]uint32{0, 1}) != 1 {
		t.Errorf("interleaving does not start with x")
	}
}

// TestZCurveShape verifies the recursive N shape of Figure 4: the four
// pixels of rank 0..3 on a 2-bit grid are (0,0),(0,1),(1,0),(1,1) —
// i.e. the curve visits the lower-left quadrant's N before moving on.
func TestZCurveShape(t *testing.T) {
	g := MustGrid(2, 2)
	wantOrder := [][2]uint32{
		{0, 0}, {0, 1}, {1, 0}, {1, 1}, // lower-left 2x2 block
		{0, 2}, {0, 3}, {1, 2}, {1, 3}, // upper-left
		{2, 0}, {2, 1}, {3, 0}, {3, 1}, // lower-right
		{2, 2}, {2, 3}, {3, 2}, {3, 3}, // upper-right
	}
	for rank, p := range wantOrder {
		if got := g.Rank([]uint32{p[0], p[1]}); got != uint64(rank) {
			t.Errorf("Rank(%v) = %d, want %d", p, got, rank)
		}
	}
}

func TestShuffleUnshuffleRoundTrip(t *testing.T) {
	grids := []Grid{MustGrid(1, 8), MustGrid(2, 3), MustGrid(2, 16), MustGrid(3, 7), MustGrid(4, 10), MustGrid(2, 32), MustGrid(1, 32)}
	rng := rand.New(rand.NewSource(2))
	for _, g := range grids {
		for i := 0; i < 200; i++ {
			coords := make([]uint32, g.Dims())
			for j := range coords {
				coords[j] = uint32(rng.Uint64() % g.Side())
			}
			e := g.Shuffle(coords)
			if int(e.Len) != g.TotalBits() {
				t.Fatalf("%v: shuffle length %d", g, e.Len)
			}
			back := g.Unshuffle(e)
			for j := range coords {
				if back[j] != coords[j] {
					t.Fatalf("%v: round trip %v -> %v", g, coords, back)
				}
			}
			if g.ShuffleKey(coords) != e.Bits {
				t.Fatalf("ShuffleKey mismatch")
			}
			back2 := g.UnshuffleKey(e.Bits)
			for j := range coords {
				if back2[j] != coords[j] {
					t.Fatalf("UnshuffleKey mismatch")
				}
			}
		}
	}
}

func TestShuffle2MatchesShuffle(t *testing.T) {
	for _, d := range []int{1, 3, 8, 16, 31, 32} {
		g := MustGrid(2, d)
		rng := rand.New(rand.NewSource(int64(d)))
		for i := 0; i < 300; i++ {
			x := uint32(rng.Uint64() % g.Side())
			y := uint32(rng.Uint64() % g.Side())
			if g.Shuffle2(x, y) != g.Shuffle([]uint32{x, y}) {
				t.Fatalf("d=%d: Shuffle2(%d,%d) != Shuffle", d, x, y)
			}
		}
	}
}

func TestShuffle2PanicsOn3D(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Shuffle2 on 3d grid should panic")
		}
	}()
	MustGrid(3, 4).Shuffle2(1, 2)
}

func TestInterleaveCompactInverse(t *testing.T) {
	f := func(v uint32) bool { return compact2(interleave2(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMonotoneAlongCurve: z order restricted to a single dimension is
// the usual numeric order (a consequence of bit interleaving).
func TestMonotoneAlongCurve(t *testing.T) {
	g := MustGrid(2, 4)
	var prev uint64
	for x := uint32(0); x < 16; x++ {
		z := g.ShuffleKey([]uint32{x, 5})
		if x > 0 && z <= prev {
			t.Fatalf("z not monotone in x at %d", x)
		}
		prev = z
	}
	for y := uint32(0); y < 16; y++ {
		z := g.ShuffleKey([]uint32{5, y})
		if y > 0 && z <= prev {
			t.Fatalf("z not monotone in y at %d", y)
		}
		prev = z
	}
}

// TestRegionFigure2 checks the region extents of the large element of
// Figure 2: z value 001 covers 2<=X<=3, 0<=Y<=3 on the 8x8 grid.
func TestRegionFigure2(t *testing.T) {
	g := MustGrid(2, 3)
	lo, hi := g.Region(MustParseElement("001"))
	if lo[0] != 2 || hi[0] != 3 || lo[1] != 0 || hi[1] != 3 {
		t.Errorf("Region(001) = [%v %v], want [2..3, 0..3]", lo, hi)
	}
	// The whole space.
	lo, hi = g.Region(Element{})
	if lo[0] != 0 || hi[0] != 7 || lo[1] != 0 || hi[1] != 7 {
		t.Errorf("Region(ε) wrong: [%v %v]", lo, hi)
	}
	// A pixel.
	lo, hi = g.Region(g.Shuffle([]uint32{6, 1}))
	if lo[0] != 6 || hi[0] != 6 || lo[1] != 1 || hi[1] != 1 {
		t.Errorf("pixel region wrong: [%v %v]", lo, hi)
	}
}

// TestRegionCoversExactlyContainedPixels: a pixel is inside an
// element's region iff the element contains the pixel's z value.
func TestRegionCoversExactlyContainedPixels(t *testing.T) {
	g := MustGrid(2, 3)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(g.TotalBits() + 1)
		e := NewElement(rng.Uint64()&(1<<uint(n)-1), n)
		lo, hi := g.Region(e)
		for x := uint32(0); x < 8; x++ {
			for y := uint32(0); y < 8; y++ {
				inRegion := x >= lo[0] && x <= hi[0] && y >= lo[1] && y <= hi[1]
				contained := e.Contains(g.Shuffle([]uint32{x, y}))
				if inRegion != contained {
					t.Fatalf("element %v: pixel (%d,%d) region=%v contains=%v", e, x, y, inRegion, contained)
				}
			}
		}
	}
}

// TestElementForRegionRoundTrip: Region and ElementForRegion are
// inverses on elements (the shuffle/unshuffle pair of Section 4).
func TestElementForRegionRoundTrip(t *testing.T) {
	g := MustGrid(2, 3)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(g.TotalBits() + 1)
		e := NewElement(rng.Uint64()&(1<<uint(n)-1), n)
		lo, _ := g.Region(e)
		m := make([]int, g.Dims())
		q, r := n/g.Dims(), n%g.Dims()
		for dim := range m {
			m[dim] = q
			if dim < r {
				m[dim] = q + 1
			}
		}
		got, err := g.ElementForRegion(lo, m)
		if err != nil {
			t.Fatalf("ElementForRegion(%v,%v): %v", lo, m, err)
		}
		if got != e {
			t.Fatalf("round trip %v -> %v", e, got)
		}
	}
}

func TestElementForRegionRejectsUnbalanced(t *testing.T) {
	g := MustGrid(2, 3)
	if _, err := g.ElementForRegion([]uint32{0, 0}, []int{0, 2}); err == nil {
		t.Errorf("unbalanced prefix lengths should be rejected")
	}
	if _, err := g.ElementForRegion([]uint32{0, 0}, []int{4, 0}); err == nil {
		t.Errorf("prefix longer than d should be rejected")
	}
	if _, err := g.ElementForRegion([]uint32{0}, []int{1}); err == nil {
		t.Errorf("arity mismatch should be rejected")
	}
}

// TestFigure2ElementConstruction reproduces the caption of Figure 2:
// the element covering [2:3, 0:3] has z value 001, built by
// interleaving the common prefixes 01 (x) and 0 (y).
func TestFigure2ElementConstruction(t *testing.T) {
	g := MustGrid(2, 3)
	e, err := g.ElementForRegion([]uint32{2, 0}, []int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if e != MustParseElement("001") {
		t.Errorf("element for [2:3,0:3] = %v, want 001", e)
	}
}

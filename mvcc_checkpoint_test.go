package probe_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"probe"
	"probe/internal/disk"
	"probe/internal/disk/faultfs"
)

// TestCheckpointVsInsertRace pins down the Checkpoint/writer contract
// (see DB.Checkpoint's doc): a checkpoint racing a stream of inserts
// must capture a committed root only — never a half-built version.
// For a set of seeded schedules it runs an insert stream (sequential
// ids, so every committed version is exactly the prefix {1..k})
// concurrently with a checkpoint loop on a fault-injecting
// filesystem, crashes at a seeded write operation, recovers from the
// crash image, and asserts the recovered database is an exact id
// prefix with intact tree invariants — a torn root or a root with
// unflushed children would break one or the other.
func TestCheckpointVsInsertRace(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runCheckpointRace(t, seed)
		})
	}
}

func runCheckpointRace(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fsys := faultfs.New()
	db, err := probe.Open(probe.MustGrid(2, 8),
		probe.WithDurability("probe.db"), probe.WithFS(fsys),
		probe.WithPageSize(256), probe.WithPoolPages(8))
	if err != nil {
		t.Fatal(err)
	}
	fsys.Arm(faultfs.Plan{Seed: seed, CrashAt: 10 + rng.Intn(400)})

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // the insert stream
		defer wg.Done()
		for id := uint64(1); id <= 300; id++ {
			if fsys.Crashed() {
				return
			}
			if err := db.Insert(probe.Pt2(id, uint32(id%256), uint32((id*7)%256))); err != nil {
				return
			}
		}
	}()
	go func() { // the checkpoint loop
		defer wg.Done()
		for i := 0; i < 100 && !fsys.Crashed(); i++ {
			if _, err := db.Checkpoint(); err != nil {
				return
			}
		}
	}()
	wg.Wait()
	if !fsys.Crashed() {
		t.Skip("schedule finished before the crash point; covered by other seeds")
	}

	img := fsys.CrashImage()
	rec, err := probe.Open(probe.MustGrid(2, 8),
		probe.WithDurability("probe.db"), probe.WithFS(img))
	if err != nil {
		var ce *disk.ChecksumError
		if errors.As(err, &ce) {
			t.Fatalf("recovery refused with checksum error (no corruption was injected): %v", err)
		}
		t.Fatalf("recovery failed: %v", err)
	}
	defer rec.Close()

	// The recovered state must be an exact prefix {1..k}: the inserts
	// commit ids in order, so any committed root is a prefix, and a
	// checkpoint that captured anything else would surface here.
	seen := map[uint64]bool{}
	max := uint64(0)
	if err := rec.Scan(func(p probe.Point) bool {
		seen[p.ID] = true
		if p.ID > max {
			max = p.ID
		}
		return true
	}); err != nil {
		t.Fatalf("scan of recovered database: %v", err)
	}
	if uint64(len(seen)) != max {
		t.Fatalf("recovered %d points with max id %d: not a committed prefix", len(seen), max)
	}
	for id := uint64(1); id <= max; id++ {
		if !seen[id] {
			t.Fatalf("recovered prefix of %d points is missing id %d", max, id)
		}
	}
	if err := rec.Index().Tree().CheckInvariants(); err != nil {
		t.Fatalf("recovered tree invariants: %v", err)
	}
}

// TestCloseWhileSnapshotReading exercises the Close half of the MVCC
// contract: a Close issued while an untraced snapshot read is in
// flight must wait the read out — the read completes against its
// pinned version with no error — and only then release the store;
// reads arriving after Close fail with ErrClosed.
func TestCloseWhileSnapshotReading(t *testing.T) {
	db, err := probe.Open(probe.MustGrid(2, 8), probe.WithLeafCapacity(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := db.Insert(probe.Pt2(uint64(i+1), uint32(i%256), uint32((i*3)%256))); err != nil {
			t.Fatal(err)
		}
	}

	started := make(chan struct{})
	unblock := make(chan struct{})
	readDone := make(chan error, 1)
	var once sync.Once
	go func() {
		n := 0
		_, err := db.RangeSearchFunc(probe.Box2(0, 255, 0, 255), func(probe.Point) bool {
			once.Do(func() { close(started) })
			<-unblock
			n++
			return true
		})
		if err == nil && n != 200 {
			err = fmt.Errorf("streamed %d of 200 points", n)
		}
		readDone <- err
	}()

	<-started
	closeDone := make(chan error, 1)
	go func() { closeDone <- db.Close() }()

	// Close must block behind the in-flight read.
	select {
	case err := <-closeDone:
		t.Fatalf("Close returned (%v) while a snapshot read was still streaming", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(unblock)
	if err := <-readDone; err != nil {
		t.Fatalf("in-flight read failed across Close: %v", err)
	}
	if err := <-closeDone; err != nil {
		t.Fatalf("Close: %v", err)
	}

	// After Close: reads fail fast with ErrClosed, accessors zero.
	if _, _, err := db.RangeSearch(probe.Box2(0, 10, 0, 10)); !errors.Is(err, probe.ErrClosed) {
		t.Fatalf("RangeSearch after Close: %v, want ErrClosed", err)
	}
	if err := db.Scan(func(probe.Point) bool { return true }); !errors.Is(err, probe.ErrClosed) {
		t.Fatalf("Scan after Close: %v, want ErrClosed", err)
	}
	if db.Len() != 0 || db.LeafPages() != 0 {
		t.Fatalf("Len/LeafPages after Close: %d/%d, want 0/0", db.Len(), db.LeafPages())
	}
	if mv := db.MVCCStats(); mv != (probe.MVCCStats{}) {
		t.Fatalf("MVCCStats after Close: %+v, want zero", mv)
	}
}

// TestReadersDoNotStallBehindWriter is the liveness half of the MVCC
// tentpole at the API layer: while a writer holds the write path busy,
// untraced reads keep completing — they pin a committed version and
// never queue behind the database mutex. (The experiment harness's
// mixed benchmark quantifies the same property; this test just proves
// it cheaply under -race.)
func TestReadersDoNotStallBehindWriter(t *testing.T) {
	db, err := probe.Open(probe.MustGrid(2, 8), probe.WithLeafCapacity(8))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 500; i++ {
		if err := db.Insert(probe.Pt2(uint64(i+1), uint32(i%256), uint32((i*11)%256))); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	started := make(chan struct{})
	var writerOps int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // a writer hammering the write path
		defer wg.Done()
		var once sync.Once
		defer once.Do(func() { close(started) })
		id := uint64(1 << 32)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Insert(probe.Pt2(id, uint32(id%256), uint32(id%251))); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			id++
			writerOps++
			once.Do(func() { close(started) })
		}
	}()
	// On a single-CPU box the read batch below can finish before the
	// writer goroutine is ever scheduled; wait for its first commit so
	// the reads really overlap the write stream.
	<-started

	// Readers must make progress while the writer runs: a fixed batch
	// of reads has to finish long before any plausible serialization
	// schedule would allow.
	reads := 0
	deadline := time.Now().Add(10 * time.Second)
	for reads < 200 && time.Now().Before(deadline) {
		if _, _, err := db.RangeSearch(probe.Box2(0, 127, 0, 127)); err != nil {
			t.Fatalf("read %d: %v", reads, err)
		}
		reads++
	}
	close(stop)
	wg.Wait()
	if reads < 200 {
		t.Fatalf("only %d of 200 reads completed while writer ran", reads)
	}
	if writerOps == 0 {
		t.Fatal("writer made no progress")
	}
}

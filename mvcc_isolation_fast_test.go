//go:build !slow

package probe_test

// mvccHarnessSchedules is the number of seeded mixed read/write
// schedules the MVCC isolation property harness runs in the default
// test configuration. The -tags slow sweep raises it.
const mvccHarnessSchedules = 250

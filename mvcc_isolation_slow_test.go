//go:build slow

package probe_test

// mvccHarnessSchedules under -tags slow: the deep sweep the CI
// mvcc-stress job runs.
const mvccHarnessSchedules = 1200

package probe_test

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"probe"
)

// This file is the MVCC isolation property harness (docs/mvcc.md):
// for hundreds of seeded schedules it runs one writer applying a
// random insert/delete workload concurrently with reader goroutines
// that pin snapshots and run range searches against them, and asserts
// that every snapshot read equals a serial-oracle replay of the
// schedule prefix that produced the pinned version:
//
//   - the writer records, after each committed write, the exact point
//     set of the version it published (keyed by the version sequence
//     number — the serial oracle);
//   - each reader records (pinned seq, query box, result ids) for
//     every search it runs, under all three merge strategies;
//   - after the goroutines join, each observation is replayed against
//     the oracle state of its pinned seq: any divergence — a point
//     from a later version, a point missing from the pinned one, a
//     torn mix of two versions — fails the schedule;
//   - a long reader pins one snapshot before the writer starts and
//     queries it after the writer has finished: the answer must be
//     the initial state, untouched by every intervening commit;
//   - when everything is released, explicit garbage collection must
//     drain the version chain completely (no retained versions or
//     pages, no pinned snapshots) and the surviving tree must pass
//     its structural invariants.
//
// Failing seeds are appended to $MVCC_SEED_FILE (CI archives it).

// mvccStep is one writer operation of a generated schedule.
type mvccStep struct {
	op   int // 0 insert, 1 delete (some live point), 2 delete missing
	id   uint64
	x, y uint32
	n    int
}

func genMVCCSteps(rng *rand.Rand) []mvccStep {
	n := 80 + rng.Intn(120)
	steps := make([]mvccStep, n)
	nextID := uint64(1)
	for i := range steps {
		r := rng.Intn(100)
		switch {
		case r < 65:
			steps[i] = mvccStep{op: 0, id: nextID,
				x: uint32(rng.Intn(256)), y: uint32(rng.Intn(256))}
			nextID++
		case r < 90:
			steps[i] = mvccStep{op: 1, n: rng.Intn(1 << 30)}
		default:
			steps[i] = mvccStep{op: 2, id: 1 << 50,
				x: uint32(rng.Intn(256)), y: uint32(rng.Intn(256))}
		}
	}
	return steps
}

// mvccObs is one snapshot read a reader goroutine performed: the
// version it pinned, what it asked, and what it saw.
type mvccObs struct {
	seq      uint64
	lo, hi   [2]uint32
	strategy probe.Strategy
	ids      []uint64
	count    int // snapshot Len() at the same pin
}

// recordMVCCFailureSeed appends a failing seed to $MVCC_SEED_FILE so
// CI can archive it for reproduction.
func recordMVCCFailureSeed(seed int64) {
	path := os.Getenv("MVCC_SEED_FILE")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	fmt.Fprintf(f, "probe mvcc seed=%d\n", seed)
	f.Close()
}

func TestMVCCIsolationProperty(t *testing.T) {
	schedules := mvccHarnessSchedules
	if testing.Short() {
		schedules /= 10
	}
	for seed := int64(0); seed < int64(schedules); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runOneMVCCSchedule(t, seed)
			if t.Failed() {
				recordMVCCFailureSeed(seed)
			}
		})
	}
}

func runOneMVCCSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	steps := genMVCCSteps(rng)

	db, err := probe.Open(probe.MustGrid(2, 8),
		probe.WithLeafCapacity(4+rng.Intn(8)), probe.WithPoolPages(64))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Seed the database with an initial point set so the long reader
	// has something to defend against the writer.
	model := dbModel{}
	for i := 0; i < 10+rng.Intn(20); i++ {
		id := uint64(1<<40) + uint64(i)
		x, y := uint32(rng.Intn(256)), uint32(rng.Intn(256))
		if err := db.Insert(probe.Pt2(id, x, y)); err != nil {
			t.Fatal(err)
		}
		model[id] = [2]uint32{x, y}
	}

	// The serial oracle: hist[seq] is the exact point set of the
	// version with that sequence number. Single writer, so each
	// successful write advances the seq by exactly one and the state
	// read back right after the write is unambiguous.
	hist := map[uint64]dbModel{db.MVCCStats().Seq: model.clone()}
	var histMu sync.Mutex

	longSnap := db.Index().Snapshot()
	longSeq := longSnap.Seq()
	defer longSnap.Release()

	var wg sync.WaitGroup
	writerDone := make(chan struct{})

	wg.Add(1)
	go func() { // the writer
		defer wg.Done()
		defer close(writerDone)
		for _, st := range steps {
			switch st.op {
			case 0:
				if err := db.Insert(probe.Pt2(st.id, st.x, st.y)); err == nil {
					model[st.id] = [2]uint32{st.x, st.y}
				} else {
					continue
				}
			case 1:
				ids := model.liveIDs()
				if len(ids) == 0 {
					continue
				}
				id := ids[st.n%len(ids)]
				xy := model[id]
				ok, err := db.Delete(probe.Pt2(id, xy[0], xy[1]))
				if err != nil || !ok {
					continue
				}
				delete(model, id)
			case 2:
				// Deleting an absent key must not publish a version.
				if ok, _ := db.Delete(probe.Pt2(st.id, st.x, st.y)); ok {
					t.Errorf("delete of absent id %d reported success", st.id)
				}
				continue
			}
			histMu.Lock()
			hist[db.MVCCStats().Seq] = model.clone()
			histMu.Unlock()
		}
	}()

	strategies := []probe.Strategy{probe.MergeDecomposed, probe.MergeLazy, probe.SkipBigMin}
	const readers = 3
	obsCh := make(chan []mvccObs, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rrng := rand.New(rand.NewSource(seed*31 + int64(g)))
			var obs []mvccObs
			for i := 0; ; i++ {
				if i > 0 { // always record at least one observation
					select {
					case <-writerDone:
						obsCh <- obs
						return
					default:
					}
				}
				snap := db.Index().Snapshot()
				o := mvccObs{
					seq:      snap.Seq(),
					strategy: strategies[rrng.Intn(len(strategies))],
					count:    snap.Len(),
				}
				x1, x2 := uint32(rrng.Intn(256)), uint32(rrng.Intn(256))
				y1, y2 := uint32(rrng.Intn(256)), uint32(rrng.Intn(256))
				if x1 > x2 {
					x1, x2 = x2, x1
				}
				if y1 > y2 {
					y1, y2 = y2, y1
				}
				o.lo, o.hi = [2]uint32{x1, y1}, [2]uint32{x2, y2}
				pts, _, err := snap.RangeSearch(probe.Box2(x1, x2, y1, y2), o.strategy)
				snap.Release()
				if err != nil {
					t.Errorf("reader %d: range search at seq %d: %v", g, o.seq, err)
					obsCh <- obs
					return
				}
				for _, p := range pts {
					o.ids = append(o.ids, p.ID)
				}
				obs = append(obs, o)
			}
		}(g)
	}
	wg.Wait()
	close(obsCh)

	// Replay every observation against the serial oracle at its
	// pinned version.
	checked := 0
	for obs := range obsCh {
		for _, o := range obs {
			want, ok := hist[o.seq]
			if !ok {
				t.Fatalf("reader pinned seq %d, which the writer never recorded", o.seq)
			}
			if o.count != len(want) {
				t.Fatalf("snapshot at seq %d has Len %d, oracle says %d", o.seq, o.count, len(want))
			}
			oracle := map[uint64]bool{}
			for id, xy := range want {
				if xy[0] >= o.lo[0] && xy[0] <= o.hi[0] && xy[1] >= o.lo[1] && xy[1] <= o.hi[1] {
					oracle[id] = true
				}
			}
			if len(o.ids) != len(oracle) {
				t.Fatalf("seq %d strategy %v box [%d,%d]x[%d,%d]: read %d points, serial oracle says %d",
					o.seq, o.strategy, o.lo[0], o.hi[0], o.lo[1], o.hi[1], len(o.ids), len(oracle))
			}
			for _, id := range o.ids {
				if !oracle[id] {
					t.Fatalf("seq %d: snapshot read returned point %d outside its version", o.seq, id)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("readers recorded no observations; harness broken")
	}

	// The long reader: its snapshot must still answer with the initial
	// state, however many versions committed meanwhile.
	initial := hist[longSeq]
	got := dbModel{}
	if _, err := longSnap.RangeSearchFunc(probe.Box2(0, 255, 0, 255), probe.MergeLazy,
		func(p probe.Point) bool {
			got[p.ID] = [2]uint32{p.Coords[0], p.Coords[1]}
			return true
		}); err != nil {
		t.Fatalf("long reader scan: %v", err)
	}
	if err := matchDBState(got, initial); err != nil {
		t.Fatalf("long reader diverged from its pinned version %d: %v", longSeq, err)
	}
	longSnap.Release()

	// With every snapshot released, explicit GC must drain the chain.
	db.Index().Tree().CollectGarbage()
	mv := db.MVCCStats()
	if mv.PinnedSnapshots != 0 || mv.RetainedVersions != 0 || mv.RetainedPages != 0 {
		t.Fatalf("version chain not drained after release: %+v", mv)
	}
	if mv.FreeFailures != 0 {
		t.Fatalf("GC failed to free %d pages: %+v", mv.FreeFailures, mv)
	}
	if err := db.Index().Tree().CheckInvariants(); err != nil {
		t.Fatalf("surviving tree invariants: %v", err)
	}

	// And the surviving live state must equal the final oracle state.
	final := dbModel{}
	if err := db.Scan(func(p probe.Point) bool {
		final[p.ID] = [2]uint32{p.Coords[0], p.Coords[1]}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if err := matchDBState(final, model); err != nil {
		t.Fatalf("final state diverged from serial replay: %v", err)
	}
}

package probe_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"probe"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// obsTestDB builds a deterministic database: a diagonal-ish lattice
// of points bulk-loaded into packed pages, so every counter in these
// tests is reproducible run to run.
func obsTestDB(t *testing.T) *probe.DB {
	t.Helper()
	g := probe.MustGrid(2, 8)
	var pts []probe.Point
	id := uint64(1)
	for x := uint32(0); x < 256; x += 5 {
		for y := uint32(0); y < 256; y += 11 {
			pts = append(pts, probe.Pt2(id, x, (y+x/3)%256))
			id++
		}
	}
	db, err := probe.Open(g, probe.WithPageSize(512), probe.WithPoolPages(16), probe.WithBulkLoad(pts))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestTracedRangeSearchMatchesLegacy asserts the invariant the trace
// layer promises: the span counters — counted independently inside
// the B+-tree and decomposition cursors — equal the legacy
// SearchStats counters computed in the core merge loops.
func TestTracedRangeSearchMatchesLegacy(t *testing.T) {
	db := obsTestDB(t)
	box := probe.Box2(40, 170, 30, 140)
	for _, strat := range []probe.Strategy{probe.MergeDecomposed, probe.MergeLazy, probe.SkipBigMin} {
		tr := probe.NewTrace("q")
		pts, stats, err := db.RangeSearch(box, probe.WithStrategy(strat), probe.WithTrace(tr))
		if err != nil {
			t.Fatal(err)
		}
		kids := tr.Children()
		if len(kids) != 1 || kids[0].Name() != "range-search" {
			t.Fatalf("%v: trace children = %v", strat, kids)
		}
		sp := kids[0]
		if got := sp.Get(probe.CounterResults); int(got) != stats.Results || stats.Results != len(pts) {
			t.Errorf("%v: span results %d, stats %d, points %d", strat, got, stats.Results, len(pts))
		}
		if got := sp.Get(probe.CounterDataPages); int(got) != stats.DataPages {
			t.Errorf("%v: span data-pages %d, stats %d", strat, got, stats.DataPages)
		}
		// Seeks are counted inside the B+-tree cursor at each SeekGE;
		// the legacy counter increments at the core call sites. They
		// must agree exactly.
		if got := sp.Get(probe.CounterSeeks); int(got) != stats.Seeks {
			t.Errorf("%v: span seeks %d, stats %d", strat, got, stats.Seeks)
		}
		// Elements: strategies A and B count generated elements (B via
		// the decompose cursor, independently of the legacy counter);
		// strategy C counts BigMin computations instead.
		elems := sp.Get(probe.CounterElements) + sp.Get(probe.CounterBigMinSkips)
		if int(elems) != stats.Elements {
			t.Errorf("%v: span elements+skips %d, stats elements %d", strat, elems, stats.Elements)
		}
		if strat == probe.SkipBigMin && sp.Get(probe.CounterElements) != 0 {
			t.Errorf("skip-bigmin generated elements: %d", sp.Get(probe.CounterElements))
		}
		if sp.Get(probe.CounterLeafScans) < sp.Get(probe.CounterSeeks) {
			t.Errorf("%v: fewer leaf scans (%d) than seeks (%d)", strat,
				sp.Get(probe.CounterLeafScans), sp.Get(probe.CounterSeeks))
		}
	}
}

// TestTracedPoolAttribution asserts buffer-pool and physical-I/O
// activity lands on the operation span and the unified stats.
func TestTracedPoolAttribution(t *testing.T) {
	db := obsTestDB(t)
	if err := db.DropCaches(); err != nil {
		t.Fatal(err)
	}
	tr := probe.NewTrace("cold")
	_, stats, err := db.RangeSearch(probe.Box2(0, 255, 0, 255), probe.WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	if stats.PoolGets == 0 || stats.PoolMisses == 0 || stats.PhysReads == 0 {
		t.Fatalf("cold traced query attributed no pool/phys activity: %+v", stats)
	}
	if stats.PoolGets != stats.PoolHits+stats.PoolMisses {
		t.Errorf("gets %d != hits %d + misses %d", stats.PoolGets, stats.PoolHits, stats.PoolMisses)
	}
	if stats.PoolMisses != stats.PhysReads {
		t.Errorf("misses %d != physical reads %d", stats.PoolMisses, stats.PhysReads)
	}
	// Untraced queries leave attribution fields zero.
	_, stats2, err := db.RangeSearch(probe.Box2(0, 255, 0, 255))
	if err != nil {
		t.Fatal(err)
	}
	if stats2.PoolGets != 0 || stats2.PhysReads != 0 {
		t.Errorf("untraced query has attributed I/O: %+v", stats2)
	}
}

// joinInputs builds two deterministic z-sorted element relations.
func joinInputs(t *testing.T) (a, b []probe.Item) {
	t.Helper()
	g := probe.MustGrid(2, 8)
	id := uint64(1)
	for x := uint32(0); x < 200; x += 23 {
		for _, e := range probe.DecomposeBox(g, probe.Box2(x, x+40, x/2, x/2+60)) {
			a = append(a, probe.Item{Elem: e, ID: id})
		}
		id++
	}
	id = 1
	for y := uint32(0); y < 200; y += 31 {
		for _, e := range probe.DecomposeBox(g, probe.Box2(y/2, y/2+50, y, y+35)) {
			b = append(b, probe.Item{Elem: e, ID: id})
		}
		id++
	}
	probe.SortItems(a)
	probe.SortItems(b)
	return a, b
}

// TestTracedJoinMatchesLegacy asserts the sequential join's span
// counters equal the legacy JoinStats.
func TestTracedJoinMatchesLegacy(t *testing.T) {
	a, b := joinInputs(t)
	tr := probe.NewTrace("join")
	pairs, stats, err := probe.SpatialJoin(a, b, probe.WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	kids := tr.Children()
	if len(kids) != 1 || kids[0].Name() != "spatial-join" {
		t.Fatalf("trace children = %v", kids)
	}
	sp := kids[0]
	if got := sp.Get(probe.CounterRawPairs); int(got) != stats.RawPairs {
		t.Errorf("span raw pairs %d, stats %d", got, stats.RawPairs)
	}
	if got := sp.Get(probe.CounterDistinctPairs); int(got) != stats.DistinctPairs || stats.DistinctPairs != len(pairs) {
		t.Errorf("span distinct %d, stats %d, pairs %d", got, stats.DistinctPairs, len(pairs))
	}
	if got := sp.Get(probe.CounterItemsLeft); int(got) != stats.LeftItems || int(got) != len(a) {
		t.Errorf("span items-left %d, stats %d, input %d", got, stats.LeftItems, len(a))
	}
	if got := sp.Get(probe.CounterItemsRight); int(got) != stats.RightItems {
		t.Errorf("span items-right %d, stats %d", got, stats.RightItems)
	}
	// Every input item is consumed exactly once by the merge.
	if got := sp.Get(probe.CounterMergeSteps); int(got) != len(a)+len(b) {
		t.Errorf("merge steps %d, want %d", got, len(a)+len(b))
	}
}

// TestTracedParallelJoinShards asserts the parallel join's per-shard
// spans partition the work: shard counters sum to the parent totals
// and the distinct pair set matches the sequential join.
func TestTracedParallelJoinShards(t *testing.T) {
	a, b := joinInputs(t)
	seq, seqStats, err := probe.SpatialJoin(a, b)
	if err != nil {
		t.Fatal(err)
	}
	tr := probe.NewTrace("join")
	par, stats, err := probe.SpatialJoin(a, b,
		probe.WithWorkers(3), probe.WithPartitionPrefix(4), probe.WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) || stats.DistinctPairs != seqStats.DistinctPairs {
		t.Fatalf("parallel distinct pairs %d, sequential %d", stats.DistinctPairs, seqStats.DistinctPairs)
	}
	kids := tr.Children()
	if len(kids) != 1 || kids[0].Name() != "spatial-join-parallel" {
		t.Fatalf("trace children = %v", kids)
	}
	sp := kids[0]
	shards := sp.Children()
	if stats.Shards == 0 || len(shards) != stats.Shards {
		t.Fatalf("shard spans %d, stats.Shards %d", len(shards), stats.Shards)
	}
	var shardRaw, shardItems, shardSteps int64
	for _, sh := range shards {
		shardRaw += sh.Get(probe.CounterRawPairs)
		shardItems += sh.Get(probe.CounterItemsLeft) + sh.Get(probe.CounterItemsRight)
		shardSteps += sh.Get(probe.CounterMergeSteps)
	}
	if int(shardRaw) != stats.RawPairs {
		t.Errorf("shard raw pairs sum %d, stats %d", shardRaw, stats.RawPairs)
	}
	if shardSteps != shardItems {
		t.Errorf("shard merge steps %d != shard items %d", shardSteps, shardItems)
	}
	// Replication accounting: shard items exceed the inputs by exactly
	// the replicated count.
	wantRepl := shardItems - int64(len(a)+len(b))
	if wantRepl < 0 {
		wantRepl = 0
	}
	if int64(stats.ReplicatedItems) != wantRepl {
		t.Errorf("replicated items %d, want %d", stats.ReplicatedItems, wantRepl)
	}
	// Each counter lives at exactly one level of the span tree, so the
	// subtree totals aggregate without double counting: raw pairs and
	// items are recorded only on the shard spans (Total == shard sums),
	// shard-level facts only on the join span.
	if n := sp.Total(probe.CounterRawPairs); int(n) != stats.RawPairs {
		t.Errorf("Total raw pairs %d, stats %d", n, stats.RawPairs)
	}
	totalItems := sp.Total(probe.CounterItemsLeft) + sp.Total(probe.CounterItemsRight)
	if totalItems != shardItems {
		t.Errorf("Total items %d != shard item sum %d (parent must not re-count)", totalItems, shardItems)
	}
	if n := sp.Total(probe.CounterDistinctPairs); int(n) != stats.DistinctPairs {
		t.Errorf("Total distinct pairs %d, stats %d", n, stats.DistinctPairs)
	}
}

// TestExplainAnalyzeMatchesLegacy asserts the per-operator actuals
// equal the legacy counters from running the same query directly.
func TestExplainAnalyzeMatchesLegacy(t *testing.T) {
	db := obsTestDB(t)
	// Small box: the index scan wins, and its actuals must equal a
	// direct range search counter for counter.
	box := probe.Box2(10, 60, 60, 110)
	res, err := db.ExplainAnalyze(box)
	if err != nil {
		t.Fatal(err)
	}
	if res.Access != "index-scan" {
		t.Fatalf("small box chose %q, want index-scan", res.Access)
	}
	_, legacy, err := db.RangeSearch(box)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Search() != legacy.Search() {
		t.Errorf("explain-analyze stats %+v, legacy %+v", res.Stats.Search(), legacy.Search())
	}
	if res.Stats.Results != len(res.Points) {
		t.Errorf("stats results %d, points %d", res.Stats.Results, len(res.Points))
	}
	if res.Trace.Get(probe.CounterDataPages) != int64(res.Stats.DataPages) {
		t.Errorf("trace data-pages %d, stats %d", res.Trace.Get(probe.CounterDataPages), res.Stats.DataPages)
	}
	// Huge box: the sequential scan wins; its result set must still
	// match a direct range search exactly.
	wide := probe.Box2(0, 255, 0, 255)
	res2, err := db.ExplainAnalyze(wide)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Access != "seq-scan" {
		t.Fatalf("full-space box chose %q, want seq-scan", res2.Access)
	}
	_, legacy2, err := db.RangeSearch(wide)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Results != legacy2.Results || len(res2.Points) != legacy2.Results {
		t.Errorf("seq-scan results %d (points %d), index results %d",
			res2.Stats.Results, len(res2.Points), legacy2.Results)
	}
}

// TestExplainAnalyzeGolden locks the deterministic rendering down to
// a golden file (run with -update to regenerate).
func TestExplainAnalyzeGolden(t *testing.T) {
	db := obsTestDB(t)
	if err := db.DropCaches(); err != nil {
		t.Fatal(err)
	}
	res, err := db.ExplainAnalyze(probe.Box2(32, 96, 32, 96), probe.WithStrategy(probe.SkipBigMin))
	if err != nil {
		t.Fatal(err)
	}
	got := res.String()
	path := filepath.Join("testdata", "explain_analyze.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("explain-analyze rendering drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestMetricsRegistry asserts DB operations accumulate in the
// expvar-compatible registry.
func TestMetricsRegistry(t *testing.T) {
	db := obsTestDB(t)
	box := probe.Box2(0, 50, 0, 50)
	if _, _, err := db.RangeSearch(box); err != nil {
		t.Fatal(err)
	}
	tr := probe.NewTrace("q")
	if _, _, err := db.RangeSearch(box, probe.WithTrace(tr)); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if got := m.Int("range-search.count").Value(); got != 2 {
		t.Errorf("range-search.count = %d, want 2", got)
	}
	if got := m.Int("range-search.data-pages").Value(); got <= 0 {
		t.Errorf("range-search.data-pages = %d, want > 0 (traced op merged)", got)
	}
	s := m.String()
	if len(s) == 0 || s[0] != '{' {
		t.Errorf("registry String not a JSON object: %q", s)
	}
}

// TestNoopTraceZeroAllocs proves the disabled-tracer path allocates
// nothing: all span methods on a nil *Trace are free.
func TestNoopTraceZeroAllocs(t *testing.T) {
	var tr *probe.Trace
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Inc(probe.CounterSeeks)
		tr.Add(probe.CounterDataPages, 7)
		tr.End()
		_ = tr.Get(probe.CounterSeeks)
	})
	if allocs != 0 {
		t.Fatalf("nil trace allocates %v per op, want 0", allocs)
	}
}

// BenchmarkRangeSearchUntraced measures the untraced fast path end to
// end; compare with BenchmarkRangeSearchTraced for tracing overhead.
func BenchmarkRangeSearchUntraced(b *testing.B) {
	db := benchDB(b)
	box := probe.Box2(40, 170, 30, 140)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.RangeSearch(box); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRangeSearchTraced measures the same query with a live
// trace attached.
func BenchmarkRangeSearchTraced(b *testing.B) {
	db := benchDB(b)
	box := probe.Box2(40, 170, 30, 140)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := probe.NewTrace("bench")
		if _, _, err := db.RangeSearch(box, probe.WithTrace(tr)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDB(b *testing.B) *probe.DB {
	b.Helper()
	g := probe.MustGrid(2, 8)
	var pts []probe.Point
	id := uint64(1)
	for x := uint32(0); x < 256; x += 5 {
		for y := uint32(0); y < 256; y += 11 {
			pts = append(pts, probe.Pt2(id, x, (y+x/3)%256))
			id++
		}
	}
	db, err := probe.Open(g, probe.WithBulkLoad(pts))
	if err != nil {
		b.Fatal(err)
	}
	return db
}

package probe

import (
	"context"

	"probe/internal/disk"
)

// This file defines the functional options accepted by the three
// variadic entry points of the redesigned API:
//
//	Open(g, ...Option)                  — database construction
//	DB.RangeSearch(box, ...QueryOption) — range queries
//	SpatialJoin(a, b, ...JoinOption)    — spatial joins
//
// The legacy Options struct implements Option, so pre-redesign calls
// like Open(g, Options{PageSize: 1024}) keep compiling unchanged.

// openConfig is the resolved configuration of one Open call.
type openConfig struct {
	pageSize     int
	poolPages    int
	leafCapacity int
	bulk         []Point
	bulkSet      bool
	durPath      string
	fsys         disk.FS
	trace        *Trace
}

// Option configures Open.
type Option interface {
	applyOpen(*openConfig)
}

type openOptionFunc func(*openConfig)

func (f openOptionFunc) applyOpen(c *openConfig) { f(c) }

// applyOpen makes the legacy Options struct a valid Option: zero
// fields are left at their defaults, exactly as before.
func (o Options) applyOpen(c *openConfig) {
	if o.PageSize != 0 {
		c.pageSize = o.PageSize
	}
	if o.PoolPages != 0 {
		c.poolPages = o.PoolPages
	}
	if o.LeafCapacity != 0 {
		c.leafCapacity = o.LeafCapacity
	}
}

// WithPageSize sets the simulated disk page size in bytes [4096].
func WithPageSize(bytes int) Option {
	return openOptionFunc(func(c *openConfig) { c.pageSize = bytes })
}

// WithPoolPages sets the buffer pool capacity in pages [256].
func WithPoolPages(pages int) Option {
	return openOptionFunc(func(c *openConfig) { c.poolPages = pages })
}

// WithLeafCapacity caps points per index leaf page [derived from the
// page size].
func WithLeafCapacity(points int) Option {
	return openOptionFunc(func(c *openConfig) { c.leafCapacity = points })
}

// WithBulkLoad builds the index bottom-up from pts with fully packed
// pages (about 30% fewer data pages than one-at-a-time insertion) —
// what OpenPacked did.
func WithBulkLoad(pts []Point) Option {
	return openOptionFunc(func(c *openConfig) { c.bulk = pts; c.bulkSet = true })
}

// WithDurability places the database on a crash-safe paged store at
// path (write-ahead log at path+".wal") instead of the in-memory
// simulated disk. A fresh path creates the database; an existing one
// recovers it — including after a crash. Changes become durable at
// DB.Checkpoint (and DB.Close); a crash rolls back to the last
// checkpoint, never to a corrupt or partial state.
func WithDurability(path string) Option {
	return openOptionFunc(func(c *openConfig) { c.durPath = path })
}

// WithFS substitutes the filesystem a durable database lives on. The
// crash-recovery harness uses it to inject deterministic fault
// schedules (internal/disk/faultfs); production code leaves it alone.
func WithFS(fsys disk.FS) Option {
	return openOptionFunc(func(c *openConfig) { c.fsys = fsys })
}

// queryConfig is the resolved configuration of one range search.
type queryConfig struct {
	strategy Strategy
	trace    *Trace
	ctx      context.Context
}

// QueryOption configures DB.RangeSearch and the other point-query
// entry points.
type QueryOption interface {
	applyQuery(*queryConfig)
}

type queryOptionFunc func(*queryConfig)

func (f queryOptionFunc) applyQuery(c *queryConfig) { f(c) }

// WithStrategy selects the range-search variant [MergeLazy].
func WithStrategy(s Strategy) QueryOption {
	return queryOptionFunc(func(c *queryConfig) { c.strategy = s })
}

// joinConfig is the resolved configuration of one spatial join.
type joinConfig struct {
	workers    int
	prefixBits int
	parallel   bool
	trace      *Trace
	ctx        context.Context
}

// JoinOption configures SpatialJoin.
type JoinOption interface {
	applyJoin(*joinConfig)
}

type joinOptionFunc func(*joinConfig)

func (f joinOptionFunc) applyJoin(c *joinConfig) { f(c) }

// WithWorkers executes the join with a pool of n workers over
// z-prefix partitions of the inputs (see docs/parallelism.md);
// n <= 0 selects runtime.GOMAXPROCS. Without this option the join is
// sequential. The distinct pair set is identical either way.
func WithWorkers(n int) JoinOption {
	return joinOptionFunc(func(c *joinConfig) { c.workers = n; c.parallel = true })
}

// WithPartitionPrefix sets the z-prefix length at which a parallel
// join cuts the inputs into shards (up to 2^bits of them); zero or
// negative derives it from the worker count. It implies WithWorkers'
// parallel execution.
func WithPartitionPrefix(bits int) JoinOption {
	return joinOptionFunc(func(c *joinConfig) { c.prefixBits = bits; c.parallel = true })
}

// TraceOption attributes an operation's work to an execution trace.
// It satisfies both QueryOption and JoinOption, so one WithTrace call
// works for range searches and joins alike.
type TraceOption struct {
	t *Trace
}

// WithTrace attributes the operation's work to a child span of t:
// operator counters, buffer-pool activity, and physical I/O all land
// on the trace, and the returned QueryStats gains its attributed
// pool/phys fields. A nil t is valid and disables tracing.
func WithTrace(t *Trace) TraceOption { return TraceOption{t: t} }

func (o TraceOption) applyQuery(c *queryConfig) { c.trace = o.t }

func (o TraceOption) applyJoin(c *joinConfig) { c.trace = o.t }

// applyOpen makes WithTrace an Option too: a durable Open attributes
// its recovery work (pages replayed from the log) to a child span.
func (o TraceOption) applyOpen(c *openConfig) { c.trace = o.t }

// ContextOption places an operation under a cancellation context. It
// satisfies both QueryOption and JoinOption, so one WithContext call
// works for range searches, proximity queries, and joins alike.
type ContextOption struct {
	ctx context.Context
}

// WithContext runs the operation under ctx: once the context is
// cancelled or its deadline passes, the operation stops promptly —
// the B+-tree cursor checks at every page-load boundary (so at most
// one further page is read), the decomposition cursor at every
// element generation, and the join merge every few hundred steps —
// and returns the context's error. Cancellation releases all latches
// and buffer-pool state as usual; the database remains fully usable.
//
// The context is checked as the operation enters the database —
// untraced reads check it right after pinning their snapshot, writers
// and traced operations right after acquiring the database mutex — so
// an operation cancelled while still queued behind a writer returns
// without touching the index. A nil ctx is valid and means "never
// cancelled".
func WithContext(ctx context.Context) ContextOption { return ContextOption{ctx: ctx} }

func (o ContextOption) applyQuery(c *queryConfig) { c.ctx = o.ctx }

func (o ContextOption) applyJoin(c *joinConfig) { c.ctx = o.ctx }

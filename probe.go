// Package probe is a spatial query processing library reproducing
// Orenstein's SIGMOD 1986 paper "Spatial Query Processing in an
// Object-Oriented Database System" (the PROBE project's approximate
// geometry).
//
// Spatial objects are approximated on a 2^d x ... x 2^d grid and
// decomposed into "elements" — the variable-length bitstrings
// produced by recursive splitting with bit interleaving (z order).
// Because elements relate only by containment or precedence, spatial
// queries reduce to merges of z-ordered sequences, which stock
// database machinery (a B+-tree plus an LRU buffer pool) executes
// efficiently.
//
// The package exposes the element object class of the paper's
// Section 4 (shuffle, unshuffle, decompose, precedes, contains), a
// paged point index with the range-search merge in its three
// optimization levels, the spatial join R[zr <> zs]S, and the
// Section 6 algorithms (polygon overlay, connected component
// labelling, CAD interference detection).
//
// Quick start:
//
//	g := probe.MustGrid(2, 10)                 // 1024 x 1024 space
//	db, _ := probe.Open(g)
//	db.Insert(probe.Pt2(1, 30, 40))
//	pts, stats, _ := db.RangeSearch(probe.Box2(0, 100, 0, 100))
//
// Every query entry point accepts functional options and returns the
// unified QueryStats record. To see how a query executed, attach a
// Trace (WithTrace) or ask for the full plan-with-actuals via
// DB.ExplainAnalyze.
package probe

import (
	"context"
	"errors"
	"sync"

	"probe/internal/btree"
	"probe/internal/conncomp"
	"probe/internal/core"
	"probe/internal/decompose"
	"probe/internal/disk"
	"probe/internal/geom"
	"probe/internal/interfere"
	"probe/internal/obs"
	"probe/internal/overlay"
	"probe/internal/planner"
	"probe/internal/zorder"
)

// Re-exported fundamental types. See the internal packages'
// documentation for full method sets.
type (
	// Grid is a k-dimensional grid with d bits per dimension.
	Grid = zorder.Grid
	// Element is a z-value bitstring naming a splitting region.
	Element = zorder.Element
	// Box is an axis-parallel query box with inclusive bounds.
	Box = geom.Box
	// Point is an identified grid point.
	Point = geom.Point
	// Object is a spatial object exposing the Inside/Outside/Crosses
	// classification oracle that drives decomposition.
	Object = geom.Object
	// Polygon is a simple 2-d polygon object.
	Polygon = geom.Polygon
	// Vertex is a polygon vertex.
	Vertex = geom.Vertex
	// Disk is a k-dimensional ball object.
	Disk = geom.Disk
	// Raster is a bitmap-backed object (for precise grid data).
	Raster = geom.Raster
	// DecomposeOptions tunes decomposition resolution.
	DecomposeOptions = decompose.Options
	// Strategy selects a range-search variant.
	Strategy = core.Strategy
	// SearchStats reports the work a range search performed.
	//
	// Deprecated: query entry points now return the unified
	// QueryStats, which carries the same fields; use it directly or
	// project the legacy view with QueryStats.Search.
	SearchStats = core.SearchStats
	// Item is one element of a decomposed object relation.
	Item = core.Item
	// Pair is a pair of overlapping object ids from a spatial join.
	Pair = core.Pair
	// JoinStats reports spatial-join statistics.
	//
	// Deprecated: query entry points now return the unified
	// QueryStats, which carries the same fields; use it directly or
	// project the legacy view with QueryStats.Join.
	JoinStats = core.JoinStats
	// Component is one labelled connected component.
	Component = conncomp.Component
	// Part is a CAD part for interference detection.
	Part = interfere.Part
)

// Range-search strategies (Section 3.3's successive optimizations).
const (
	// MergeDecomposed materializes the query's element sequence and
	// merges it against the point sequence.
	MergeDecomposed = core.MergeDecomposed
	// MergeLazy generates query elements on demand during the merge.
	MergeLazy = core.MergeLazy
	// SkipBigMin skips directly to the next in-box z value.
	SkipBigMin = core.SkipBigMin
)

// NewGrid returns a grid with k dimensions and d bits per dimension
// (d <= 32, k*d <= 64).
func NewGrid(k, d int) (Grid, error) { return zorder.NewGrid(k, d) }

// MustGrid is NewGrid panicking on error.
func MustGrid(k, d int) Grid { return zorder.MustGrid(k, d) }

// NewGridAsym returns a grid with per-dimension resolutions (the
// generalization of the paper's equal-resolution assumption): e.g.
// NewGridAsym([]int{10, 10, 9}) is a 1024 x 1024 x 512 space.
func NewGridAsym(bits []int) (Grid, error) { return zorder.NewGridAsym(bits) }

// MustGridAsym is NewGridAsym panicking on error.
func MustGridAsym(bits ...int) Grid { return zorder.MustGridAsym(bits...) }

// NewBox builds a box from inclusive per-dimension bounds.
func NewBox(lo, hi []uint32) (Box, error) { return geom.NewBox(lo, hi) }

// Box2 builds a 2-d box.
func Box2(xlo, xhi, ylo, yhi uint32) Box { return geom.Box2(xlo, xhi, ylo, yhi) }

// Pt2 builds a 2-d point.
func Pt2(id uint64, x, y uint32) Point { return geom.Pt2(id, x, y) }

// Decompose approximates a spatial object as its z-ordered element
// sequence (the decompose operator of Section 4).
func Decompose(g Grid, obj Object, opts DecomposeOptions) ([]Element, error) {
	return decompose.Object(g, obj, opts)
}

// DecomposeBox decomposes a box at full resolution.
func DecomposeBox(g Grid, b Box) []Element { return decompose.Box(g, b) }

// Condense canonicalizes a z-ordered element sequence, merging
// complete sibling pairs.
func Condense(elems []Element) []Element { return decompose.Condense(elems) }

// SortItems sorts a decomposed relation into the z order the spatial
// join requires.
func SortItems(items []Item) { core.SortItems(items) }

// SpatialJoin computes R[zr <> zs]S over two z-sorted element
// relations, returning distinct overlapping object pairs. By default
// the join is the sequential stack-based merge; WithWorkers switches
// to parallel execution over z-prefix partitions, WithPartitionPrefix
// tunes the cut depth, and WithTrace attributes the work — including
// one child span per shard when parallel — to an execution trace.
func SpatialJoin(a, b []Item, opts ...JoinOption) ([]Pair, QueryStats, error) {
	var jc joinConfig
	for _, o := range opts {
		o.applyJoin(&jc)
	}
	var sp *Trace
	if jc.trace != nil {
		name := "spatial-join"
		if jc.parallel {
			name = "spatial-join-parallel"
		}
		sp = jc.trace.Child(name)
		defer sp.End()
	}
	var (
		pairs []Pair
		js    core.JoinStats
		err   error
	)
	if jc.parallel {
		cfg := core.ParallelJoinConfig{Workers: jc.workers, PrefixBits: jc.prefixBits}
		pairs, js, err = core.SpatialJoinParallelDistinctCtx(jc.ctx, a, b, cfg, sp)
	} else {
		pairs, js, err = core.SpatialJoinDistinctCtx(jc.ctx, a, b, sp)
	}
	qs := joinQueryStats(js)
	qs.addSpanIO(sp)
	return pairs, qs, err
}

// ParallelJoinConfig tunes the core parallel join: the worker count
// (degree of parallelism) and the z-prefix length at which the inputs
// are partitioned.
type ParallelJoinConfig = core.ParallelJoinConfig

// SpatialJoinParallel is SpatialJoin executed by a pool of workers
// over z-prefix partitions of the inputs (see docs/parallelism.md).
// workers <= 0 selects runtime.GOMAXPROCS. The distinct pair set is
// identical to SpatialJoin's.
//
// Deprecated: use SpatialJoin(a, b, WithWorkers(workers)).
func SpatialJoinParallel(a, b []Item, workers int) ([]Pair, QueryStats, error) {
	return SpatialJoin(a, b, WithWorkers(workers))
}

// Union, Intersect, Subtract and XOR are the polygon-overlay set
// operations on decomposed regions (Section 6).
func Union(a, b []Element) ([]Element, error)     { return overlay.Union(a, b) }
func Intersect(a, b []Element) ([]Element, error) { return overlay.Intersect(a, b) }
func Subtract(a, b []Element) ([]Element, error)  { return overlay.Subtract(a, b) }
func XOR(a, b []Element) ([]Element, error)       { return overlay.XOR(a, b) }

// Area returns the number of pixels a region covers.
func Area(g Grid, elems []Element) uint64 { return overlay.Area(g, elems) }

// LabelComponents labels the 4-connected components of a 2-d region
// and returns the components with their areas (Section 6).
func LabelComponents(g Grid, elems []Element) ([]Component, error) {
	res, err := conncomp.Label(g, elems)
	if err != nil {
		return nil, err
	}
	return res.Components, nil
}

// DetectInterference finds intersecting part pairs using a
// spatial-join broad phase and exact polygon refinement (Section 6).
// maxLen caps the decomposition resolution (0 = full).
func DetectInterference(g Grid, parts []Part, maxLen int) ([]interfere.Pair, interfere.Stats, error) {
	return interfere.Detect(g, parts, maxLen)
}

// Options tunes a DB. Zero values select the defaults in brackets.
// Options implements Option, so it can be passed directly to Open;
// the individual With* options are the preferred spelling.
type Options struct {
	// PageSize is the simulated disk page size in bytes [4096].
	PageSize int
	// PoolPages is the buffer pool capacity in pages [256].
	PoolPages int
	// LeafCapacity caps points per index leaf page [derived from
	// PageSize].
	LeafCapacity int
}

// DB is a spatial database over one grid: a z-ordered point index on
// simulated paged storage. DB is safe for concurrent use.
//
// The index is multi-versioned (see docs/mvcc.md): every untraced
// read query — RangeSearch, RangeSearchFunc, PartialMatch, Nearest,
// Scan — pins a snapshot of the newest committed tree version and runs
// against it without blocking, and without being blocked by, writers.
// Writers (Insert, InsertAll, Delete, DeleteBox) and maintenance
// operations (Checkpoint, DropCaches, Close) serialize among
// themselves on db.mu. Traced queries (WithTrace) also serialize on
// db.mu: span attribution attaches to one global slot on the pool and
// the store, so traced page-access counts stay exactly reproducible,
// the paper's reported metric.
type DB struct {
	// mu serializes writers, maintenance and traced operations.
	mu sync.Mutex
	// stateMu guards db.closed against the snapshot read path: reads
	// hold it shared for their whole query; Close takes it exclusively
	// after its final checkpoint, so the store is never released under
	// a running read.
	stateMu sync.RWMutex

	grid      Grid
	store     spanStore
	rs        *disk.RecoverableStore // non-nil iff opened WithDurability
	pool      *disk.Pool
	index     *core.Index
	metrics   *obs.Registry
	txMetrics *obs.Registry // transaction counters (probe_tx_*)

	closed    bool // written under db.mu AND stateMu
	recovered bool
	recovery  disk.RecoveryInfo
}

// spanStore is the store contract DB needs: paged I/O plus per-span
// counter attribution. Both disk.MemStore (the default simulated
// disk) and disk.RecoverableStore (WithDurability) satisfy it.
type spanStore interface {
	disk.Store
	AttachSpan(*obs.Span) *obs.Span
}

// Open creates a spatial database over grid g. With no options it is
// empty with default page size, pool capacity and leaf capacity;
// WithPageSize, WithPoolPages and WithLeafCapacity tune those, and
// WithBulkLoad builds the index bottom-up from an initial point set.
// The legacy Options struct is itself an Option, so existing
// Open(g, Options{...}) calls keep working.
//
// By default the database lives on an in-memory simulated disk and
// vanishes with the process. WithDurability(path) places it on a
// crash-safe paged store instead: if path exists the database is
// recovered (grid and options must agree with what is on disk), and
// DB.Checkpoint/DB.Close bound what a crash can lose. See
// docs/durability.md.
func Open(g Grid, opts ...Option) (*DB, error) {
	cfg := openConfig{pageSize: disk.DefaultPageSize, poolPages: 256}
	for _, o := range opts {
		o.applyOpen(&cfg)
	}
	if cfg.durPath != "" {
		return openDurable(g, cfg)
	}
	store, err := disk.NewMemStore(cfg.pageSize)
	if err != nil {
		return nil, err
	}
	pool, err := disk.NewPool(store, cfg.poolPages, disk.LRU)
	if err != nil {
		return nil, err
	}
	var ix *core.Index
	if cfg.bulkSet {
		ix, err = core.NewIndexBulk(pool, g, core.IndexConfig{LeafCapacity: cfg.leafCapacity}, cfg.bulk, 0)
	} else {
		ix, err = core.NewIndex(pool, g, core.IndexConfig{LeafCapacity: cfg.leafCapacity})
	}
	if err != nil {
		return nil, err
	}
	return &DB{grid: g, store: store, pool: pool, index: ix,
		metrics: obs.NewRegistry(), txMetrics: newTxMetrics()}, nil
}

// ErrClosed is returned by every DB operation attempted after Close.
//
// The close-while-querying contract: writers and traced operations
// serialize with Close on db.mu; snapshot reads hold stateMu shared
// for their whole query and Close takes it exclusively before
// releasing the store. Either way Close never yanks the store out
// from under a running operation — it blocks until in-flight
// operations finish (cancel them first via WithContext for a prompt
// close), and every operation that starts after Close fails with
// ErrClosed before touching the index or the store. The network
// server's drain sequence is built on exactly this contract.
var ErrClosed = errors.New("probe: database is closed")

// usableLocked verifies, under db.mu (write/traced path) or a shared
// stateMu (snapshot read path), that the database is open and the
// operation's context (nil = none) is still live; every entry point
// calls it before touching the index. An operation cancelled while
// queued behind a mutex therefore fails here, without touching any
// pages.
func (db *DB) usableLocked(ctx context.Context) error {
	if db.closed {
		return ErrClosed
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// beginOp starts per-operation attribution under db.mu: when the
// caller supplied a trace, a child span named op is created and
// attached to the buffer pool and the store, so page and I/O activity
// lands on it. It returns the span (nil when untraced — the whole
// attribution path then costs nothing).
func (db *DB) beginOp(op string, t *Trace) *Trace {
	if t == nil {
		return nil
	}
	sp := t.Child(op)
	db.pool.AttachSpan(sp)
	db.store.AttachSpan(sp)
	return sp
}

// endOp seals the operation span, detaches it from the pool and the
// store, and folds the operation into the metrics registry: the
// "<op>.count" cumulative counter always bumps, and span counters
// merge under "<op>.<counter>" when traced.
func (db *DB) endOp(op string, sp *Trace) {
	if sp != nil {
		db.pool.AttachSpan(nil)
		db.store.AttachSpan(nil)
		sp.End()
	}
	db.metrics.AddSpan(op, sp)
}

// beginRead enters the snapshot read path: it takes stateMu shared,
// verifies the database is usable, and pins the newest committed index
// version. The caller runs its whole query against the returned
// snapshot and must call release exactly once — it unpins the version
// and drops stateMu. Untraced reads use this path and so never touch
// db.mu: they neither block behind a running writer nor delay one.
func (db *DB) beginRead(ctx context.Context) (*core.IndexSnapshot, func(), error) {
	db.stateMu.RLock()
	if err := db.usableLocked(ctx); err != nil {
		db.stateMu.RUnlock()
		return nil, nil, err
	}
	snap := db.index.Snapshot()
	return snap, func() { snap.Release(); db.stateMu.RUnlock() }, nil
}

// Metrics returns the database's cumulative metrics registry. Every
// operation bumps "<op>.count"; traced operations additionally merge
// their span counters under "<op>.<counter>". The registry and its
// individual counters satisfy expvar.Var, so they can be published
// with expvar.Publish for scraping.
func (db *DB) Metrics() *Metrics { return db.metrics }

// PoolInfo describes the buffer pool's occupancy at one instant:
// its fixed capacity, how many frames are resident, and how many of
// those are pinned by in-flight operations. Scrape-time state for
// monitoring (the admin endpoint exports it as gauges).
type PoolInfo struct {
	Capacity int // frames the pool may hold
	Resident int // frames currently held
	Pinned   int // resident frames pinned by an operation
}

// PoolInfo snapshots the buffer pool's occupancy. Zero after Close.
func (db *DB) PoolInfo() PoolInfo {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return PoolInfo{}
	}
	return PoolInfo{
		Capacity: db.pool.Capacity(),
		Resident: db.pool.Resident(),
		Pinned:   db.pool.Pinned(),
	}
}

// MVCCStats re-exports the index tree's multi-version counters: the
// committed version sequence number, pinned snapshots, retained
// superseded versions/pages awaiting garbage collection, and pages
// freed so far. Scrape-time state for monitoring (the admin endpoint
// exports the gauges). Zero after Close.
type MVCCStats = btree.MVCCStats

// MVCCStats snapshots the index's multi-version state.
func (db *DB) MVCCStats() MVCCStats {
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	if db.closed {
		return MVCCStats{}
	}
	return db.index.Tree().MVCCStats()
}

// Grid returns the database's grid.
func (db *DB) Grid() Grid { return db.grid }

// Len returns the number of indexed points (0 after Close). It reads
// the newest committed version and never blocks behind a writer.
func (db *DB) Len() int {
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	if db.closed {
		return 0
	}
	return db.index.Len()
}

// Insert adds a point; (pixel, id) pairs must be unique. It is a
// one-shot auto-commit transaction: equivalent to an Update whose
// closure buffers a single insertion, committed before Insert
// returns. Multi-statement work should use Update/Begin directly.
func (db *DB) Insert(p Point) error {
	return db.updateAuto(nil, func(tx *Tx) error { return tx.Insert(p) })
}

// InsertAll adds many points as one auto-commit transaction: either
// every point is inserted and published as one atomic commit, or —
// on the first error — none are.
func (db *DB) InsertAll(pts []Point) error {
	return db.updateAuto(nil, func(tx *Tx) error { return tx.InsertAll(pts) })
}

// Delete removes a point, reporting whether it was present. Like
// Insert it is a one-shot auto-commit transaction.
func (db *DB) Delete(p Point) (bool, error) {
	var found bool
	err := db.updateAuto(nil, func(tx *Tx) error {
		var err error
		found, err = tx.Delete(p)
		return err
	})
	return found, err
}

// DeleteBox removes every point inside the box, returning how many
// were deleted. It is one auto-commit transaction: the search and
// all deletions observe and publish one consistent state — either
// every point in the box is removed or, on error, none are.
func (db *DB) DeleteBox(box Box) (int, error) {
	var n int
	err := db.updateAuto(nil, func(tx *Tx) error {
		var err error
		n, err = tx.DeleteBox(box)
		return err
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// RangeSearch returns all points inside the box. The default
// strategy is MergeLazy; WithStrategy selects another, and WithTrace
// attributes the query's work — operator counters, buffer-pool
// activity, physical I/O — to an execution trace.
//
// An untraced RangeSearch runs on a pinned snapshot of the newest
// committed index version: it observes one consistent state end to
// end and neither blocks behind nor delays concurrent writers. A
// traced RangeSearch serializes on the database mutex so its
// page-access counts stay exactly attributable.
func (db *DB) RangeSearch(box Box, opts ...QueryOption) ([]Point, QueryStats, error) {
	qc := queryConfig{strategy: MergeLazy}
	for _, o := range opts {
		o.applyQuery(&qc)
	}
	if qc.trace == nil {
		var pts []Point
		var qs QueryStats
		err := db.viewAuto(qc.ctx, func(tx *Tx) error {
			defer db.metrics.AddSpan("range-search", nil)
			var err error
			pts, qs, err = tx.RangeSearch(box, opts...)
			return err
		})
		return pts, qs, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.usableLocked(qc.ctx); err != nil {
		return nil, QueryStats{}, err
	}
	sp := db.beginOp("range-search", qc.trace)
	defer db.endOp("range-search", sp)
	pts, ss, err := db.index.RangeSearchCtx(qc.ctx, box, qc.strategy, sp)
	qs := searchQueryStats(ss)
	qs.addSpanIO(sp)
	return pts, qs, err
}

// RangeSearchFunc streams every point inside the box to fn in z
// order, without materializing the result; returning false from fn
// stops the search early (with a nil error). It accepts the same
// options as RangeSearch — in particular WithContext, which makes it
// the entry point the network server streams large range searches
// through: result batches go out as the merge produces them, and a
// client cancel stops the merge within one page read.
//
// Untraced, fn runs on a pinned snapshot without holding the database
// mutex: a slow fn delays nothing but its own query (it does hold the
// snapshot's version pinned, deferring page reclamation, and briefly
// delays Close). Traced (WithTrace), fn runs with the database mutex
// held and a slow fn delays every writer and other traced operation.
func (db *DB) RangeSearchFunc(box Box, fn func(Point) bool, opts ...QueryOption) (QueryStats, error) {
	qc := queryConfig{strategy: MergeLazy}
	for _, o := range opts {
		o.applyQuery(&qc)
	}
	if qc.trace == nil {
		// One-shot read-only transaction. With an empty write-set the
		// overlay is pass-through, so fn streams straight from the
		// pinned snapshot's merge, unmaterialized.
		snap, release, err := db.beginRead(qc.ctx)
		if err != nil {
			return QueryStats{}, err
		}
		defer release()
		defer db.metrics.AddSpan("range-search", nil)
		ss, err := snap.RangeSearchFuncCtx(qc.ctx, box, qc.strategy, nil, fn)
		return searchQueryStats(ss), err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.usableLocked(qc.ctx); err != nil {
		return QueryStats{}, err
	}
	sp := db.beginOp("range-search", qc.trace)
	defer db.endOp("range-search", sp)
	ss, err := db.index.RangeSearchFuncCtx(qc.ctx, box, qc.strategy, sp, fn)
	qs := searchQueryStats(ss)
	qs.addSpanIO(sp)
	return qs, err
}

// RangeSearchWith runs a range search with an explicit strategy.
//
// Deprecated: use RangeSearch(box, WithStrategy(s)).
func (db *DB) RangeSearchWith(box Box, s Strategy) ([]Point, QueryStats, error) {
	return db.RangeSearch(box, WithStrategy(s))
}

// PartialMatch pins the restricted dimensions to the given values and
// leaves the rest unconstrained. It accepts the same options as
// RangeSearch and follows the same concurrency contract: untraced, it
// runs on a pinned snapshot without blocking behind writers.
func (db *DB) PartialMatch(restricted []bool, value []uint32, opts ...QueryOption) ([]Point, QueryStats, error) {
	qc := queryConfig{strategy: MergeLazy}
	for _, o := range opts {
		o.applyQuery(&qc)
	}
	if qc.trace == nil {
		snap, release, err := db.beginRead(qc.ctx)
		if err != nil {
			return nil, QueryStats{}, err
		}
		defer release()
		defer db.metrics.AddSpan("partial-match", nil)
		pts, ss, err := snap.PartialMatchCtx(qc.ctx, restricted, value, qc.strategy, nil)
		return pts, searchQueryStats(ss), err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.usableLocked(qc.ctx); err != nil {
		return nil, QueryStats{}, err
	}
	sp := db.beginOp("partial-match", qc.trace)
	defer db.endOp("partial-match", sp)
	pts, ss, err := db.index.PartialMatchCtx(qc.ctx, restricted, value, qc.strategy, sp)
	qs := searchQueryStats(ss)
	qs.addSpanIO(sp)
	return pts, qs, err
}

// LeafPages returns the number of data pages in the index (0 after
// Close). It reads the newest committed version and never blocks
// behind a writer.
func (db *DB) LeafPages() int {
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	if db.closed {
		return 0
	}
	return db.index.Tree().LeafPages()
}

// Scan streams every indexed point in z order to fn; returning false
// stops the scan. This is the sequential access over the point
// sequence P that all the merge algorithms build on. Scan runs on a
// pinned snapshot: it streams one consistent committed state however
// many writes land while it runs.
func (db *DB) Scan(fn func(Point) bool) error {
	snap, release, err := db.beginRead(nil)
	if err != nil {
		return err
	}
	defer release()
	box := geom.FullBox(db.grid)
	_, err = snap.RangeSearchFunc(box, MergeLazy, fn)
	return err
}

// DropCaches empties the buffer pool so subsequent page-access counts
// are cold.
func (db *DB) DropCaches() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.usableLocked(nil); err != nil {
		return err
	}
	return db.pool.Invalidate()
}

// IOStats returns the physical read/write counters of the simulated
// disk. It takes no DB mutex by design: MemStore guards its counters
// with its own lock, so the read is safe against concurrent
// operations, and skipping db.mu lets monitoring sample I/O while a
// long query holds the database lock (the same contract as
// disk.Pool.Stats). The snapshot may interleave with an in-flight
// operation's writes; counters never tear.
func (db *DB) IOStats() disk.IOStats { return db.store.Stats() }

// ResetIOStats zeroes the physical I/O counters. Like IOStats it
// relies on MemStore's own lock rather than db.mu, so a reset
// concurrent with a running operation yields counts attributable to
// neither before nor after — reset on an idle database when exact
// accounting matters.
func (db *DB) ResetIOStats() { db.store.ResetStats() }

// Index exposes the underlying index for advanced use (experiment
// harnesses, custom merges).
func (db *DB) Index() *core.Index { return db.index }

// Explain describes the access path the cost-based planner would pick
// for a range query, without running it (the DBMS-side optimization
// the paper's Section 2 calls for).
func (db *DB) Explain(box Box) (string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.usableLocked(nil); err != nil {
		return "", err
	}
	tab := &planner.Table{Name: "db", Index: db.index}
	plan, err := planner.PlanRange(tab, box, planner.Config{})
	if err != nil {
		return "", err
	}
	return plan.Description, nil
}

// Metric selects the distance for nearest-neighbor queries.
type Metric = core.Metric

// Neighbor is one nearest-neighbor result.
type Neighbor = core.Neighbor

// Nearest-neighbor metrics.
const (
	// Chebyshev is the L-infinity metric.
	Chebyshev = core.Chebyshev
	// Euclidean is the L2 metric.
	Euclidean = core.Euclidean
)

// Nearest returns the m indexed points nearest to q under the metric,
// implemented as expanding range queries (the Section 6 translation
// of proximity queries into overlap queries). It accepts the same
// options as RangeSearch and follows the same concurrency contract:
// untraced, every expansion round runs on one pinned snapshot, so the
// certified radius is sound even against concurrent inserts.
func (db *DB) Nearest(q []uint32, m int, metric Metric, opts ...QueryOption) ([]Neighbor, QueryStats, error) {
	qc := queryConfig{strategy: MergeLazy}
	for _, o := range opts {
		o.applyQuery(&qc)
	}
	if qc.trace == nil {
		var nbs []Neighbor
		var qs QueryStats
		err := db.viewAuto(qc.ctx, func(tx *Tx) error {
			defer db.metrics.AddSpan("nearest", nil)
			var err error
			nbs, qs, err = tx.Nearest(q, m, metric, opts...)
			return err
		})
		return nbs, qs, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.usableLocked(qc.ctx); err != nil {
		return nil, QueryStats{}, err
	}
	sp := db.beginOp("nearest", qc.trace)
	defer db.endOp("nearest", sp)
	nbs, ss, err := db.index.NearestCtx(qc.ctx, q, m, metric, qc.strategy)
	qs := searchQueryStats(ss)
	qs.addSpanIO(sp)
	return nbs, qs, err
}

// ContainsRegion reports whether region a covers every pixel of
// region b.
func ContainsRegion(a, b []Element) (bool, error) { return overlay.ContainsRegion(a, b) }

// OpenPacked creates a database bulk-loaded with the given points:
// the index is built bottom-up with fully packed pages (about 30%
// fewer data pages than one-at-a-time insertion).
//
// Deprecated: use Open(g, opts, WithBulkLoad(pts)).
func OpenPacked(g Grid, opts Options, pts []Point) (*DB, error) {
	return Open(g, opts, WithBulkLoad(pts))
}

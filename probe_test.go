package probe_test

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"probe"
)

func TestOpenDefaults(t *testing.T) {
	g := probe.MustGrid(2, 8)
	db, err := probe.Open(g, probe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Grid() != g || db.Len() != 0 {
		t.Errorf("fresh DB state wrong")
	}
	if db.LeafPages() != 1 {
		t.Errorf("fresh DB has %d leaf pages", db.LeafPages())
	}
}

func TestOpenBadOptions(t *testing.T) {
	g := probe.MustGrid(2, 8)
	if _, err := probe.Open(g, probe.Options{PageSize: 1}); err == nil {
		t.Errorf("tiny page size accepted")
	}
	if _, err := probe.Open(g, probe.Options{PoolPages: -1}); err == nil {
		t.Errorf("negative pool accepted")
	}
	if _, err := probe.Open(g, probe.Options{LeafCapacity: 1}); err == nil {
		t.Errorf("leaf capacity 1 accepted")
	}
}

func TestEndToEndRangeSearch(t *testing.T) {
	g := probe.MustGrid(2, 9)
	db, err := probe.Open(g, probe.Options{LeafCapacity: 20})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var pts []probe.Point
	for i := 0; i < 3000; i++ {
		pts = append(pts, probe.Pt2(uint64(i), uint32(rng.Intn(512)), uint32(rng.Intn(512))))
	}
	if err := db.InsertAll(pts); err != nil {
		t.Fatal(err)
	}
	box := probe.Box2(100, 300, 50, 180)
	want := map[uint64]bool{}
	for _, p := range pts {
		if box.ContainsPoint(p.Coords) {
			want[p.ID] = true
		}
	}
	for _, s := range []probe.Strategy{probe.MergeDecomposed, probe.MergeLazy, probe.SkipBigMin} {
		got, stats, err := db.RangeSearchWith(box, s)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d results, want %d", s, len(got), len(want))
		}
		for _, p := range got {
			if !want[p.ID] {
				t.Fatalf("%v: unexpected point %v", s, p)
			}
		}
		if stats.DataPages == 0 || stats.Results != len(got) {
			t.Fatalf("%v: stats wrong: %+v", s, stats)
		}
	}
}

func TestDeleteAndRequery(t *testing.T) {
	g := probe.MustGrid(2, 6)
	db, _ := probe.Open(g, probe.Options{})
	p := probe.Pt2(9, 10, 10)
	if err := db.Insert(p); err != nil {
		t.Fatal(err)
	}
	if ok, _ := db.Delete(p); !ok {
		t.Fatal("delete failed")
	}
	got, _, err := db.RangeSearch(probe.Box2(0, 63, 0, 63))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("deleted point still found")
	}
}

func TestPartialMatchFacade(t *testing.T) {
	g := probe.MustGrid(2, 6)
	db, _ := probe.Open(g, probe.Options{})
	for i := uint64(0); i < 64; i++ {
		db.Insert(probe.Pt2(i, uint32(i), uint32(i*7%64)))
	}
	got, _, err := db.PartialMatch([]bool{true, false}, []uint32{5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Coords[0] != 5 {
		t.Errorf("partial match = %v", got)
	}
}

func TestFacadeElementOps(t *testing.T) {
	g := probe.MustGrid(2, 3)
	// Figure 2: region [2:3, 0:3] has z value 001.
	elems := probe.DecomposeBox(g, probe.Box2(2, 3, 0, 3))
	if len(elems) != 1 || elems[0].String() != "001" {
		t.Fatalf("DecomposeBox = %v", elems)
	}
	e := elems[0]
	if !e.Contains(g.Shuffle([]uint32{3, 2})) {
		t.Errorf("contains failed")
	}
	whole, err := probe.Decompose(g, probe.Box2(0, 7, 0, 7), probe.DecomposeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if probe.Area(g, whole) != 64 {
		t.Errorf("whole-space area wrong")
	}
	if got := probe.Condense(whole); len(got) != 1 {
		t.Errorf("condense wrong")
	}
}

func TestFacadeOverlayAndComponents(t *testing.T) {
	g := probe.MustGrid(2, 5)
	a := probe.DecomposeBox(g, probe.Box2(0, 7, 0, 7))
	b := probe.DecomposeBox(g, probe.Box2(16, 23, 16, 23))
	both, err := probe.Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	comps, err := probe.LabelComponents(g, both)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	inter, err := probe.Intersect(a, b)
	if err != nil || len(inter) != 0 {
		t.Errorf("disjoint intersect wrong")
	}
	diff, err := probe.Subtract(both, a)
	if err != nil || probe.Area(g, diff) != 64 {
		t.Errorf("subtract wrong")
	}
	x, err := probe.XOR(a, b)
	if err != nil || probe.Area(g, x) != 128 {
		t.Errorf("xor wrong")
	}
}

func TestFacadeSpatialJoin(t *testing.T) {
	g := probe.MustGrid(2, 5)
	mk := func(id uint64, box probe.Box) []probe.Item {
		var items []probe.Item
		for _, e := range probe.DecomposeBox(g, box) {
			items = append(items, probe.Item{Elem: e, ID: id})
		}
		return items
	}
	left := append(mk(1, probe.Box2(0, 10, 0, 10)), mk(2, probe.Box2(20, 30, 20, 30))...)
	right := mk(7, probe.Box2(8, 22, 8, 22))
	probe.SortItems(left)
	probe.SortItems(right)
	pairs, stats, err := probe.SpatialJoin(left, right)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].A < pairs[j].A })
	if len(pairs) != 2 || pairs[0].A != 1 || pairs[1].A != 2 {
		t.Fatalf("join pairs = %v", pairs)
	}
	if stats.DistinctPairs != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestFacadeInterference(t *testing.T) {
	g := probe.MustGrid(2, 7)
	sq := func(cx, cy, half float64) probe.Polygon {
		p, _ := probeNewPolygon(cx, cy, half)
		return p
	}
	parts := []probe.Part{
		{ID: 1, Outline: sq(20, 20, 6)},
		{ID: 2, Outline: sq(25, 20, 6)},
		{ID: 3, Outline: sq(90, 90, 6)},
	}
	pairs, stats, err := probe.DetectInterference(g, parts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].A != 1 || pairs[0].B != 2 {
		t.Fatalf("pairs = %v (stats %+v)", pairs, stats)
	}
}

func probeNewPolygon(cx, cy, half float64) (probe.Polygon, error) {
	return probe.Polygon{V: []probe.Vertex{
		{X: cx - half, Y: cy - half},
		{X: cx + half, Y: cy - half},
		{X: cx + half, Y: cy + half},
		{X: cx - half, Y: cy + half},
	}}, nil
}

func TestCachesAndStats(t *testing.T) {
	g := probe.MustGrid(2, 8)
	db, _ := probe.Open(g, probe.Options{LeafCapacity: 10, PoolPages: 16})
	for i := uint64(0); i < 1000; i++ {
		db.Insert(probe.Pt2(i, uint32(i%256), uint32((i*37)%256)))
	}
	if err := db.DropCaches(); err != nil {
		t.Fatal(err)
	}
	db.ResetIOStats()
	if _, _, err := db.RangeSearch(probe.Box2(0, 255, 0, 255)); err != nil {
		t.Fatal(err)
	}
	if db.IOStats().Reads == 0 {
		t.Errorf("cold scan performed no physical reads")
	}
	if db.Index() == nil {
		t.Errorf("Index accessor nil")
	}
}

func TestFacadeNearest(t *testing.T) {
	g := probe.MustGrid(2, 8)
	db, _ := probe.Open(g, probe.Options{})
	db.InsertAll([]probe.Point{
		probe.Pt2(1, 10, 10), probe.Pt2(2, 12, 10), probe.Pt2(3, 200, 200),
	})
	ns, stats, err := db.Nearest([]uint32{11, 10}, 2, probe.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 2 || ns[0].Dist != 1 || ns[1].Dist != 1 {
		t.Fatalf("neighbors = %v", ns)
	}
	if stats.DataPages == 0 {
		t.Errorf("no page accesses recorded")
	}
	// Chebyshev distance of (12,10) from (11,10) is also 1.
	ns, _, _ = db.Nearest([]uint32{11, 10}, 3, probe.Chebyshev)
	if len(ns) != 3 || ns[2].Point.ID != 3 {
		t.Errorf("chebyshev neighbors wrong: %v", ns)
	}
}

func TestFacadeOpenPacked(t *testing.T) {
	g := probe.MustGrid(2, 8)
	var pts []probe.Point
	for i := 0; i < 2000; i++ {
		pts = append(pts, probe.Pt2(uint64(i), uint32(i%256), uint32((i*13)%256)))
	}
	packed, err := probe.OpenPacked(g, probe.Options{LeafCapacity: 20}, pts)
	if err != nil {
		t.Fatal(err)
	}
	loose, _ := probe.Open(g, probe.Options{LeafCapacity: 20})
	loose.InsertAll(pts)
	if packed.Len() != loose.Len() {
		t.Fatalf("lengths differ")
	}
	if packed.LeafPages() >= loose.LeafPages() {
		t.Errorf("packed db has %d pages, loose %d", packed.LeafPages(), loose.LeafPages())
	}
	a, _, _ := packed.RangeSearch(probe.Box2(10, 100, 10, 100))
	b, _, _ := loose.RangeSearch(probe.Box2(10, 100, 10, 100))
	if len(a) != len(b) {
		t.Errorf("results differ: %d vs %d", len(a), len(b))
	}
}

func TestFacadeContainsRegion(t *testing.T) {
	g := probe.MustGrid(2, 5)
	big := probe.DecomposeBox(g, probe.Box2(0, 20, 0, 20))
	small := probe.DecomposeBox(g, probe.Box2(3, 9, 3, 9))
	if ok, err := probe.ContainsRegion(big, small); err != nil || !ok {
		t.Errorf("containment not detected")
	}
	if ok, _ := probe.ContainsRegion(small, big); ok {
		t.Errorf("reverse containment reported")
	}
}

func TestFacadeAsymGrid(t *testing.T) {
	g, err := probe.NewGridAsym([]int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	db, err := probe.Open(g, probe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.Insert(probe.Pt2(1, 10, 200))
	box, err := probe.NewBox([]uint32{0, 100}, []uint32{15, 255})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := db.RangeSearch(box)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 1 {
		t.Errorf("asym facade query = %v", got)
	}
	if probe.MustGridAsym(3, 3) != probe.MustGrid(2, 3) {
		t.Errorf("equal-bit asym grid should normalize")
	}
}

func TestFacadeExplain(t *testing.T) {
	g := probe.MustGrid(2, 8)
	db, _ := probe.Open(g, probe.Options{LeafCapacity: 20})
	for i := 0; i < 2000; i++ {
		db.Insert(probe.Pt2(uint64(i), uint32(i%256), uint32((i*31)%256)))
	}
	desc, err := db.Explain(probe.Box2(0, 20, 0, 20))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "index scan") {
		t.Errorf("small box should explain as index scan: %s", desc)
	}
	desc, err = db.Explain(probe.Box2(0, 255, 0, 255))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "seq scan") {
		t.Errorf("whole-space box should explain as seq scan: %s", desc)
	}
}

func TestDeleteBox(t *testing.T) {
	g := probe.MustGrid(2, 7)
	db, _ := probe.Open(g, probe.Options{})
	for i := uint64(0); i < 500; i++ {
		db.Insert(probe.Pt2(i, uint32(i%128), uint32((i*17)%128)))
	}
	box := probe.Box2(0, 63, 0, 63)
	before, _, _ := db.RangeSearch(box)
	n, err := db.DeleteBox(box)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(before) || n == 0 {
		t.Fatalf("deleted %d, want %d", n, len(before))
	}
	after, _, _ := db.RangeSearch(box)
	if len(after) != 0 {
		t.Errorf("%d points survived DeleteBox", len(after))
	}
	if db.Len() != 500-n {
		t.Errorf("Len = %d", db.Len())
	}
}

// TestConcurrentAccess hammers the DB from many goroutines; run with
// -race to validate the serialization.
func TestConcurrentAccess(t *testing.T) {
	g := probe.MustGrid(2, 8)
	db, _ := probe.Open(g, probe.Options{LeafCapacity: 10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 300; i++ {
				id := uint64(w*1000 + i)
				p := probe.Pt2(id, uint32(rng.Intn(256)), uint32(rng.Intn(256)))
				if err := db.Insert(p); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if i%10 == 0 {
					if _, _, err := db.RangeSearch(probe.Box2(0, 127, 0, 127)); err != nil {
						t.Errorf("search: %v", err)
						return
					}
				}
				if i%25 == 0 {
					if _, err := db.Delete(p); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if db.Len() != 8*300-8*12 {
		t.Errorf("Len = %d", db.Len())
	}
}

func TestScan(t *testing.T) {
	g := probe.MustGrid(2, 6)
	db, _ := probe.Open(g, probe.Options{})
	for i := uint64(0); i < 200; i++ {
		db.Insert(probe.Pt2(i, uint32(i%64), uint32((i*11)%64)))
	}
	var prev uint64
	n := 0
	err := db.Scan(func(p probe.Point) bool {
		z := g.ShuffleKey(p.Coords)
		if n > 0 && z < prev {
			t.Fatalf("scan out of z order at %d", n)
		}
		prev = z
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("scan saw %d points", n)
	}
	// Early stop.
	n = 0
	db.Scan(func(probe.Point) bool { n++; return n < 10 })
	if n != 10 {
		t.Errorf("early stop delivered %d", n)
	}
}

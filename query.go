package probe

import (
	"context"

	"probe/internal/core"
	"probe/internal/geom"
	"probe/internal/planner"
	"probe/internal/query"
	"probe/internal/relation"
	"probe/internal/zorder"
)

// This file is the public face of the spatial query language
// (internal/query): Prepare/Query on DB and Tx, the prepared Stmt,
// and the re-exported result vocabulary. The language itself —
// grammar, typed errors, compilation — lives in internal/query;
// docs/query.md is the reference.

// Re-exported query-language types. A query result is a schema
// (columns) plus rows of typed values.
type (
	// QueryError is the typed error every malformed or unplannable
	// statement returns; Kind distinguishes parse from plan failures.
	QueryError = query.Error
	// QueryErrorKind is the failure class of a QueryError.
	QueryErrorKind = query.ErrorKind
	// QueryColumn is one column of a result schema.
	QueryColumn = relation.Column
	// QueryRow is one result row; values align with the columns.
	QueryRow = relation.Tuple
	// QueryValue is one typed cell: uint64 (ColID), int64 (ColInt),
	// float64 (ColFloat) or string (ColString).
	QueryValue = relation.Value
	// ColumnType is the type tag of a QueryColumn.
	ColumnType = relation.Type
)

// Query error kinds.
const (
	// QueryParseError marks lexical/syntactic failures.
	QueryParseError = query.KindParse
	// QueryPlanError marks semantic failures: the statement parsed but
	// cannot run against this database.
	QueryPlanError = query.KindPlan
)

// Column types a query result can carry.
const (
	ColID     = relation.TID
	ColInt    = relation.TInt
	ColFloat  = relation.TFloat
	ColString = relation.TString
)

// Stmt is a prepared statement: parsed, compiled against the
// database's grid, and bound to the DB or Tx that prepared it. A Stmt
// is immutable after Prepare and safe for concurrent Run calls (each
// run acquires its own engine view).
type Stmt struct {
	text   string
	parsed *query.Statement
	plan   *query.Plan
	binder engineBinder
}

// engineBinder acquires an execution engine for one statement run.
// DB pins one index snapshot for the whole statement; Tx answers from
// its transaction view (snapshot plus its own writes).
type engineBinder interface {
	bindEngine(ctx context.Context, stats *QueryStats) (query.Engine, func(), error)
}

// Prepare parses and compiles one spatial SQL statement against the
// database. Failures are *QueryError: parse errors carry the byte
// offset, plan errors the semantic complaint. The returned statement
// runs on a snapshot pinned per Run call, so it may be kept and
// re-run; each run observes the newest committed state.
func (db *DB) Prepare(text string) (*Stmt, error) {
	return prepare(db.grid, text, db)
}

// Prepare parses and compiles one statement against the transaction:
// runs observe the transaction's snapshot plus its own buffered
// writes.
func (tx *Tx) Prepare(text string) (*Stmt, error) {
	return prepare(tx.db.grid, text, tx)
}

func prepare(g Grid, text string, b engineBinder) (*Stmt, error) {
	st, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	plan, err := query.Compile(g, st.Select)
	if err != nil {
		return nil, err
	}
	return &Stmt{text: text, parsed: st, plan: plan, binder: b}, nil
}

// Text returns the statement's original text.
func (s *Stmt) Text() string { return s.text }

// Canonical returns the statement rendered in canonical form
// (uppercase keywords, normalized spacing).
func (s *Stmt) Canonical() string { return s.parsed.String() }

// IsExplain reports whether the statement is an EXPLAIN. Run executes
// the underlying SELECT regardless; callers that honor EXPLAIN check
// this first and call ExplainText instead.
func (s *Stmt) IsExplain() bool { return s.parsed.Explain }

// Columns returns the result schema of the underlying SELECT.
func (s *Stmt) Columns() []QueryColumn { return s.plan.Columns() }

// ExplainText renders the plan as an indented operator tree, the
// access-path leaf last, using the cost-based planner's choice where
// a cost model applies.
func (s *Stmt) ExplainText(ctx context.Context) (string, error) {
	var stats QueryStats
	eng, release, err := s.binder.bindEngine(ctx, &stats)
	if err != nil {
		return "", err
	}
	defer release()
	return s.plan.ExplainText(eng), nil
}

// Run executes the statement's SELECT, streaming rows to fn in plan
// order; fn returning false stops the query early. Streamable plans
// (pure index scans) deliver rows as the index merge produces them, so
// a cancelled ctx or false fn stops within about one page read; plans
// that need the whole input (aggregates, ORDER BY, DISTINCT, JOIN,
// NEAREST) materialize first. The returned stats accumulate every
// index scan the plan issued; Results counts the rows delivered.
func (s *Stmt) Run(ctx context.Context, fn func(QueryRow) bool) (QueryStats, error) {
	var stats QueryStats
	eng, release, err := s.binder.bindEngine(ctx, &stats)
	if err != nil {
		return QueryStats{}, err
	}
	defer release()
	rows := 0
	err = s.plan.Run(ctx, eng, func(t relation.Tuple) bool {
		rows++
		return fn(t)
	})
	stats.Results = rows
	return stats, err
}

// QueryResult is a fully materialized statement result. For EXPLAIN
// statements Explain holds the plan rendering and Rows is nil; for
// SELECT statements Explain is empty.
type QueryResult struct {
	Columns []QueryColumn
	Rows    []QueryRow
	Explain string
	Stats   QueryStats
}

// Query parses, compiles and executes one spatial SQL statement
// against the newest committed database state, materializing the
// result. It is the one-call convenience over Prepare + Run; use
// Prepare and Stmt.Run to stream large results. WHERE bounds are
// answered by one pinned index snapshot, so concurrent writers
// neither block nor distort the result.
func (db *DB) Query(ctx context.Context, text string) (*QueryResult, error) {
	s, err := db.Prepare(text)
	if err != nil {
		return nil, err
	}
	return s.result(ctx)
}

// Query parses, compiles and executes one statement against the
// transaction's view: its snapshot plus its own buffered writes.
func (tx *Tx) Query(ctx context.Context, text string) (*QueryResult, error) {
	s, err := tx.Prepare(text)
	if err != nil {
		return nil, err
	}
	return s.result(ctx)
}

// result materializes the statement: EXPLAIN renders, SELECT runs.
func (s *Stmt) result(ctx context.Context) (*QueryResult, error) {
	res := &QueryResult{Columns: s.Columns()}
	if s.IsExplain() {
		text, err := s.ExplainText(ctx)
		if err != nil {
			return nil, err
		}
		res.Explain = text
		return res, nil
	}
	stats, err := s.Run(ctx, func(row QueryRow) bool {
		res.Rows = append(res.Rows, row)
		return true
	})
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	return res, nil
}

// bindEngine (DB) enters the snapshot read path: the whole statement
// — every scan a join or multi-predicate plan issues — runs against
// one pinned version of the index, and the planner cost model is
// available for access-path choice.
func (db *DB) bindEngine(ctx context.Context, stats *QueryStats) (query.Engine, func(), error) {
	snap, release, err := db.beginRead(ctx)
	if err != nil {
		return nil, nil, err
	}
	eng := &dbEngine{
		grid:  db.grid,
		snap:  snap,
		table: &planner.Table{Name: query.TableName, Index: db.index},
		stats: stats,
	}
	done := func() {
		release()
		db.metrics.AddSpan("query", nil)
	}
	return eng, done, nil
}

// bindEngine (Tx) wraps the transaction view. Each scan revalidates
// the transaction (ended transactions fail with ErrTxDone), and the
// statement's ctx overrides the transaction's own for cancellation.
func (tx *Tx) bindEngine(ctx context.Context, stats *QueryStats) (query.Engine, func(), error) {
	return &txEngine{tx: tx, stats: stats}, func() {}, nil
}

// dbEngine runs plans against one pinned index snapshot.
type dbEngine struct {
	grid  Grid
	snap  *core.IndexSnapshot
	table *planner.Table
	stats *QueryStats
}

func (e *dbEngine) Grid() zorder.Grid     { return e.grid }
func (e *dbEngine) Table() *planner.Table { return e.table }

func (e *dbEngine) RangeFunc(ctx context.Context, box geom.Box, fn func(geom.Point) bool) error {
	ss, err := e.snap.RangeSearchFuncCtx(ctx, box, core.MergeLazy, nil, fn)
	e.stats.addSearch(ss)
	return err
}

func (e *dbEngine) Nearest(ctx context.Context, q []uint32, k int) ([]core.Neighbor, error) {
	nbs, ss, err := e.snap.NearestCtx(ctx, q, k, core.Euclidean, core.MergeLazy)
	e.stats.addSearch(ss)
	return nbs, err
}

// txEngine runs plans against a transaction's view: the pinned
// transaction snapshot overlaid with its buffered writes. No cost
// model — the overlay invalidates page counts — so plans fall back to
// fixed strategies (Table returns nil).
type txEngine struct {
	tx    *Tx
	stats *QueryStats
}

func (e *txEngine) Grid() zorder.Grid     { return e.tx.db.grid }
func (e *txEngine) Table() *planner.Table { return nil }

func (e *txEngine) opts(ctx context.Context) []QueryOption {
	if ctx == nil {
		return nil
	}
	return []QueryOption{WithContext(ctx)}
}

func (e *txEngine) RangeFunc(ctx context.Context, box geom.Box, fn func(geom.Point) bool) error {
	qs, err := e.tx.RangeSearchFunc(box, fn, e.opts(ctx)...)
	e.stats.accumulate(qs)
	return err
}

func (e *txEngine) Nearest(ctx context.Context, q []uint32, k int) ([]core.Neighbor, error) {
	nbs, qs, err := e.tx.Nearest(q, k, Euclidean, e.opts(ctx)...)
	e.stats.accumulate(qs)
	return nbs, err
}

// addSearch folds one scan's legacy search stats into the
// accumulating statement stats (Results is set by the statement, not
// per scan).
func (s *QueryStats) addSearch(ss core.SearchStats) {
	s.DataPages += ss.DataPages
	s.Seeks += ss.Seeks
	s.Elements += ss.Elements
}

// accumulate folds another operation's stats into s (Results
// excepted, as in addSearch).
func (s *QueryStats) accumulate(o QueryStats) {
	s.DataPages += o.DataPages
	s.Seeks += o.Seeks
	s.Elements += o.Elements
}

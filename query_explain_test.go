package probe_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"probe"
)

// explainTestDB builds a deterministic 2000-point database on a
// 1024x1024 grid so the cost-based planner's estimates — and with
// them the EXPLAIN rendering — are byte-stable across runs.
func explainTestDB(t *testing.T) *probe.DB {
	t.Helper()
	g, err := probe.NewGrid(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	db, err := probe.Open(g, probe.Options{LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	pts := make([]probe.Point, 2000)
	for i := range pts {
		x := uint32((i*389 + 17) % 1024)
		y := uint32((i*577 + 29) % 1024)
		pts[i] = probe.Pt2(uint64(i+1), x, y)
	}
	if err := db.InsertAll(pts); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestExplainGolden byte-compares EXPLAIN over the access-path
// strategy matrix against testdata/explain (regenerate with -update):
// cost-based index scan vs seq scan, nearest, both join strategies,
// grouping/ordering/limit/distinct operator stacks, the provably
// empty plan, and the fixed-strategy transaction-view lines.
func TestExplainGolden(t *testing.T) {
	db := explainTestDB(t)
	ctx := context.Background()

	cases := []struct {
		name string
		sql  string
		tx   bool
	}{
		{name: "index_scan", sql: "SELECT id, x, y FROM points WHERE CONTAINS(BOX(0, 99, 0, 99)) AND id != 7"},
		{name: "seq_scan", sql: "SELECT * FROM points"},
		{name: "nearest", sql: "SELECT id, dist FROM points WHERE NEAREST(POINT(512, 512), 5)"},
		{name: "join_nested_loop", sql: "SELECT region, id FROM points JOIN REGIONS(1 BOX(0, 40, 0, 40), 2 BOX(100, 140, 100, 140)) ON INTERSECTS"},
		{name: "join_merge", sql: "SELECT region, COUNT(*) AS n FROM points JOIN REGIONS(1 BOX(0, 1023, 0, 511), 2 BOX(0, 1023, 512, 1023), 3 BOX(0, 511, 0, 1023), 4 BOX(512, 1023, 0, 1023), 5 BOX(128, 895, 128, 895), 6 BOX(0, 1023, 0, 1023)) ON INTERSECTS GROUP BY region"},
		{name: "group_order_limit", sql: "SELECT x, COUNT(*) AS n FROM points WHERE CONTAINS(BOX(0, 511, 0, 511)) GROUP BY x ORDER BY n DESC, x LIMIT 5"},
		{name: "distinct_order", sql: "SELECT DISTINCT x FROM points WHERE x < 50 AND y >= 100 ORDER BY x"},
		{name: "empty", sql: "SELECT id FROM points WHERE x > 100 AND x < 50"},
		{name: "tx_index_scan", sql: "SELECT id FROM points WHERE CONTAINS(BOX(0, 99, 0, 99))", tx: true},
		{name: "tx_join", sql: "SELECT region, id FROM points JOIN REGIONS(1 BOX(0, 40, 0, 40)) ON INTERSECTS", tx: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var res *probe.QueryResult
			var err error
			if tc.tx {
				tx, txErr := db.Begin(ctx)
				if txErr != nil {
					t.Fatal(txErr)
				}
				defer tx.Rollback()
				res, err = tx.Query(ctx, "EXPLAIN "+tc.sql)
			} else {
				res, err = db.Query(ctx, "EXPLAIN "+tc.sql)
			}
			if err != nil {
				t.Fatal(err)
			}
			got := res.Explain
			path := filepath.Join("testdata", "explain", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN rendering drifted for %q:\n--- got ---\n%s--- want ---\n%s", tc.sql, got, want)
			}
		})
	}
}

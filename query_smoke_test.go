package probe

import (
	"context"
	"errors"
	"testing"
)

// TestQuerySmoke exercises the public query API end to end: DB.Query
// over every plan mode, EXPLAIN, typed errors, and a transaction
// statement observing its own writes.
func TestQuerySmoke(t *testing.T) {
	g := MustGrid(2, 4) // 16 x 16
	db, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, p := range []Point{Pt2(1, 1, 1), Pt2(2, 2, 3), Pt2(3, 8, 8), Pt2(4, 15, 15)} {
		if err := db.Insert(p); err != nil {
			t.Fatal(err)
		}
	}

	res, err := db.Query(context.Background(), "SELECT * FROM points WHERE CONTAINS(BOX(0, 7, 0, 7)) ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].(uint64) != 1 || res.Rows[1][0].(uint64) != 2 {
		t.Fatalf("range rows: %+v", res.Rows)
	}
	if len(res.Columns) != 3 || res.Columns[0].Name != "id" || res.Columns[1].Name != "x" {
		t.Fatalf("schema: %+v", res.Columns)
	}
	if res.Stats.Results != 2 {
		t.Fatalf("stats: %+v", res.Stats)
	}

	res, err = db.Query(context.Background(), "SELECT COUNT(*) AS n, MAX(x) FROM points")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].(int64) != 4 || res.Rows[0][1].(int64) != 15 {
		t.Fatalf("aggregate rows: %+v", res.Rows)
	}

	res, err = db.Query(context.Background(), "SELECT id, dist FROM points WHERE NEAREST(POINT(0, 0), 2)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].(uint64) != 1 {
		t.Fatalf("nearest rows: %+v", res.Rows)
	}

	res, err = db.Query(context.Background(),
		"SELECT region, COUNT(*) FROM points JOIN REGIONS(10 BOX(0, 7, 0, 7), 20 BOX(0, 15, 0, 15)) ON INTERSECTS GROUP BY region ORDER BY region")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1].(int64) != 2 || res.Rows[1][1].(int64) != 4 {
		t.Fatalf("join rows: %+v", res.Rows)
	}

	res, err = db.Query(context.Background(), "EXPLAIN SELECT * FROM points WHERE CONTAINS(BOX(0, 7, 0, 7))")
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain == "" || res.Rows != nil {
		t.Fatalf("explain result: %+v", res)
	}

	var qe *QueryError
	if _, err = db.Query(context.Background(), "SELECT FROM points"); !errors.As(err, &qe) || qe.Kind != QueryParseError {
		t.Fatalf("parse error: %v", err)
	}
	if _, err = db.Query(context.Background(), "SELECT nope FROM points"); !errors.As(err, &qe) || qe.Kind != QueryPlanError {
		t.Fatalf("plan error: %v", err)
	}

	// A transaction's statements see its own writes and the snapshot,
	// not later commits.
	tx, err := db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	if err := tx.Insert(Pt2(5, 4, 4)); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(Pt2(6, 5, 5)); err != nil { // committed after the tx snapshot
		t.Fatal(err)
	}
	res, err = tx.Query(context.Background(), "SELECT COUNT(*) FROM points")
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0][0].(int64); n != 5 {
		t.Fatalf("tx count = %d, want 5 (snapshot 4 + own write)", n)
	}
}

package probe

import (
	"probe/internal/core"
	"probe/internal/obs"
)

// QueryStats is the unified statistics record every stats-returning
// probe entry point yields. It subsumes the four legacy shapes —
// core.SearchStats, core.JoinStats, disk.PoolStats and disk.IOStats —
// under one flat struct, keeping the legacy field names so code that
// read SearchStats.DataPages or JoinStats.DistinctPairs compiles
// unchanged against the new API.
//
// Only the fields relevant to an operation are populated: a range
// search fills the search group, a join the join group. The buffer
// pool and physical I/O groups are attributed per operation and are
// populated only when the operation ran with a Trace (WithTrace);
// untraced operations leave them zero rather than pay for
// attribution.
type QueryStats struct {
	// Range search (legacy core.SearchStats).

	// DataPages is the number of distinct leaf pages touched: the
	// paper's "(data) pages accessed" metric.
	DataPages int
	// Seeks counts random accesses into the point sequence.
	Seeks int
	// Elements counts box elements consumed (strategies A and B) or
	// BigMin computations (strategy C).
	Elements int
	// Results is the number of points reported.
	Results int

	// Spatial join (legacy core.JoinStats).

	// LeftItems and RightItems are the join input sizes in elements.
	LeftItems, RightItems int
	// RawPairs counts pairs before the deduplicating projection.
	RawPairs int
	// DistinctPairs counts pairs after it.
	DistinctPairs int
	// Shards is the number of z-prefix partitions a parallel join
	// cut the inputs into (traced parallel joins only; zero for
	// sequential or untraced joins).
	Shards int
	// ReplicatedItems is the parallel join's net partitioning
	// overhead: items processed across shards in excess of the inputs,
	// clamped at zero. Ancestor replication raises it; one-sided
	// shards pruned before joining lower it (traced parallel joins
	// only).
	ReplicatedItems int

	// Buffer pool, attributed to this operation (legacy
	// disk.PoolStats; traced operations only).

	PoolGets       uint64
	PoolHits       uint64
	PoolMisses     uint64
	PoolEvictions  uint64
	PoolWriteBacks uint64

	// Physical page I/O, attributed to this operation (legacy
	// disk.IOStats reads/writes; traced operations only).

	PhysReads  uint64
	PhysWrites uint64

	// Durability, attributed to this operation (databases opened
	// WithDurability; traced operations only).

	// WALAppends and WALSyncs count write-ahead-log records appended
	// and group fsyncs issued while this operation ran.
	WALAppends uint64
	WALSyncs   uint64
	// PagesRecovered counts page images replayed from the log
	// (nonzero only on the span of a recovering Open).
	PagesRecovered uint64
	// ChecksumFailures counts reads that failed page verification
	// during this operation.
	ChecksumFailures uint64
}

// Efficiency returns the paper's efficiency measure: how much
// relevant data was on each retrieved page, as results divided by
// retrieved capacity.
func (s QueryStats) Efficiency(leafCapacity int) float64 {
	if s.DataPages == 0 {
		return 0
	}
	return float64(s.Results) / float64(s.DataPages*leafCapacity)
}

// HitRate returns PoolHits/PoolGets, or 0 when no pool activity was
// attributed (untraced operations).
func (s QueryStats) HitRate() float64 {
	if s.PoolGets == 0 {
		return 0
	}
	return float64(s.PoolHits) / float64(s.PoolGets)
}

// Search projects the legacy core.SearchStats view.
func (s QueryStats) Search() SearchStats {
	return SearchStats{
		DataPages: s.DataPages,
		Seeks:     s.Seeks,
		Elements:  s.Elements,
		Results:   s.Results,
	}
}

// Join projects the legacy core.JoinStats view.
func (s QueryStats) Join() JoinStats {
	return JoinStats{
		LeftItems:     s.LeftItems,
		RightItems:    s.RightItems,
		RawPairs:      s.RawPairs,
		DistinctPairs: s.DistinctPairs,
	}
}

// searchQueryStats lifts legacy search stats into the unified shape.
func searchQueryStats(ss core.SearchStats) QueryStats {
	return QueryStats{
		DataPages: ss.DataPages,
		Seeks:     ss.Seeks,
		Elements:  ss.Elements,
		Results:   ss.Results,
	}
}

// joinQueryStats lifts legacy join stats into the unified shape.
func joinQueryStats(js core.JoinStats) QueryStats {
	return QueryStats{
		LeftItems:     js.LeftItems,
		RightItems:    js.RightItems,
		RawPairs:      js.RawPairs,
		DistinctPairs: js.DistinctPairs,
	}
}

// addSpanIO copies the span-attributed buffer-pool and physical-I/O
// counters (and, for joins, the partitioning counters) into s. A nil
// span leaves s unchanged.
func (s *QueryStats) addSpanIO(sp *obs.Span) {
	if sp == nil {
		return
	}
	s.PoolGets = uint64(sp.Total(obs.PoolGets))
	s.PoolHits = uint64(sp.Total(obs.PoolHits))
	s.PoolMisses = uint64(sp.Total(obs.PoolMisses))
	s.PoolEvictions = uint64(sp.Total(obs.PoolEvictions))
	s.PoolWriteBacks = uint64(sp.Total(obs.PoolWriteBacks))
	s.PhysReads = uint64(sp.Total(obs.PhysReads))
	s.PhysWrites = uint64(sp.Total(obs.PhysWrites))
	s.WALAppends = uint64(sp.Total(obs.WALAppends))
	s.WALSyncs = uint64(sp.Total(obs.WALSyncs))
	s.PagesRecovered = uint64(sp.Total(obs.PagesRecovered))
	s.ChecksumFailures = uint64(sp.Total(obs.ChecksumFailures))
	s.Shards = int(sp.Get(obs.Shards))
	s.ReplicatedItems = int(sp.Get(obs.ReplicatedItems))
}

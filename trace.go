package probe

import (
	"time"

	"probe/internal/obs"
)

// Trace is a hierarchical execution trace: a tree of named spans,
// each carrying a wall-clock duration and a set of typed counters
// (pages read, elements generated, pairs emitted, ...). Create one
// with NewTrace, pass it to a query via WithTrace, and inspect it
// afterwards with Render, Counters, or Children.
//
// A nil *Trace is a valid no-op: every method is safe to call on it
// and costs nothing (no allocations, no atomics). That is how the
// untraced fast path stays free.
type Trace = obs.Span

// A Counter identifies one typed counter on a Trace span (see the
// obs package for the full set).
type CounterID = obs.Counter

// Counter identifiers, re-exported for reading Trace counters via
// Get and Total.
const (
	// CounterElements counts decomposition elements generated.
	CounterElements = obs.Elements
	// CounterBigMinSkips counts BigMin computations (strategy C).
	CounterBigMinSkips = obs.BigMinSkips
	// CounterSeeks counts random accesses into the point sequence.
	CounterSeeks = obs.Seeks
	// CounterDataPages counts distinct leaf pages touched.
	CounterDataPages = obs.DataPages
	// CounterResults counts points reported.
	CounterResults = obs.Results
	// CounterNodeVisits counts internal B+-tree nodes crossed.
	CounterNodeVisits = obs.NodeVisits
	// CounterLeafScans counts leaf pages loaded (rescans included).
	CounterLeafScans = obs.LeafScans
	// CounterPoolGets/Hits/Misses/Evictions/WriteBacks count
	// buffer-pool activity attributed to the span.
	CounterPoolGets       = obs.PoolGets
	CounterPoolHits       = obs.PoolHits
	CounterPoolMisses     = obs.PoolMisses
	CounterPoolEvictions  = obs.PoolEvictions
	CounterPoolWriteBacks = obs.PoolWriteBacks
	// CounterPhysReads/Writes count physical page I/O attributed to
	// the span.
	CounterPhysReads  = obs.PhysReads
	CounterPhysWrites = obs.PhysWrites
	// CounterRawPairs and CounterDistinctPairs count join output
	// before and after the deduplicating projection.
	CounterRawPairs      = obs.RawPairs
	CounterDistinctPairs = obs.DistinctPairs
	// CounterMergeSteps counts items the join merge consumed.
	CounterMergeSteps = obs.MergeSteps
	// CounterItemsLeft and CounterItemsRight are join input sizes.
	CounterItemsLeft  = obs.ItemsLeft
	CounterItemsRight = obs.ItemsRight
	// CounterShards and CounterReplicatedItems describe the parallel
	// join's partitioning.
	CounterShards          = obs.Shards
	CounterReplicatedItems = obs.ReplicatedItems
)

// NewTrace creates the root span of a new execution trace.
func NewTrace(name string) *Trace { return obs.New(name) }

// NewSealedTrace creates a leaf span with a fixed, already-measured
// duration. A coordinator grafting externally-timed work — a backend
// call, a merge phase — into its own trace builds the grafted nodes
// this way.
func NewSealedTrace(name string, dur time.Duration) *Trace { return obs.NewSealed(name, dur) }

// EncodeTrace serializes a span tree in the canonical binary form the
// wire protocol's TRACE frame carries. A nil trace encodes to nil.
func EncodeTrace(t *Trace) []byte { return obs.EncodeSpan(t) }

// DecodeTrace parses a canonical span-tree encoding back into a
// sealed Trace. Empty input decodes to nil; malformed input is
// rejected.
func DecodeTrace(b []byte) (*Trace, error) { return obs.DecodeSpan(b) }

// NewTraceID mints a nonzero random distributed-trace ID.
func NewTraceID() uint64 { return obs.NewTraceID() }

// TraceIDString renders a trace ID in the canonical 16-hex-digit form
// log lines and /debug/traces use, so IDs grep-correlate across every
// node a request touched.
func TraceIDString(id uint64) string { return obs.TraceIDString(id) }

// Metrics is an expvar-compatible registry of named cumulative
// counters: every DB operation bumps "<op>.count", and traced
// operations additionally merge their span counters under
// "<op>.<counter>". Registry.String renders the whole registry as a
// JSON object, and *Registry (like its individual Ints) satisfies
// expvar.Var, so it can be published with expvar.Publish.
type Metrics = obs.Registry

package probe

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"probe/internal/btree"
	"probe/internal/core"
	"probe/internal/geom"
	"probe/internal/obs"
)

// Multi-statement transactions (docs/transactions.md). A Tx pins one
// committed MVCC version of the index for every read and buffers its
// writes in a private write-set overlaid on that snapshot, so a
// transaction reads its own uncommitted writes but is invisible to
// every other reader until Commit. Commit runs first-committer-wins
// validation against every version published after the pinned one and
// applies the whole write-set as a single atomic tree publication —
// one root swap, so a crash recovers either all of the transaction or
// none of it. Rollback just unpins the snapshot.
//
// A Tx is not safe for concurrent use by multiple goroutines; open
// one per goroutine (snapshots make them cheap).

// Sentinel errors of the transaction API. The wire protocol maps
// ErrTxConflict to the typed CONFLICT error frame, and the network
// client surfaces the same sentinels.
var (
	// ErrTxConflict is returned by Commit when first-committer-wins
	// validation fails: another transaction (or an auto-commit write)
	// committed a change to a key in this transaction's write-set
	// after its snapshot was pinned. Retry the whole transaction.
	ErrTxConflict = errors.New("probe: transaction conflict")
	// ErrTxAborted is returned by operations on a transaction that has
	// already ended — committed, rolled back, or aborted by the server
	// (idle timeout, disconnect, drain).
	ErrTxAborted = errors.New("probe: transaction has ended")
	// ErrTxReadOnly is returned by write operations on a View
	// transaction.
	ErrTxReadOnly = errors.New("probe: read-only transaction")
)

// txKey identifies a point in the write-set overlay: its z value plus
// its id, the same identity the index key carries.
type txKey struct{ z, id uint64 }

// txEntry is the net overlay state of one key: the point, whether it
// is live after the buffered writes, and whether the pinned snapshot
// contains it (fixed at first touch; used for Len accounting).
type txEntry struct {
	p      Point
	live   bool
	inSnap bool
}

// Tx is a multi-statement transaction. Reads (RangeSearch,
// RangeSearchFunc, Nearest, Scan, Len) observe the pinned snapshot
// with the transaction's own buffered writes overlaid; writes
// (Insert, InsertAll, Delete, DeleteBox) buffer into the write-set
// and touch the shared index only at Commit.
type Tx struct {
	db  *DB
	ctx context.Context

	snap     *core.IndexSnapshot
	writable bool
	done     bool
	locked   bool // created under db.mu (auto-commit); Commit must not re-lock
	metered  bool // counts in the probe_tx_* registry

	writes  []core.PointMutation // buffered mutations, in statement order
	overlay map[txKey]txEntry    // net per-key state for read-your-writes
}

// newTxMetrics builds the probe_tx_* registry with every series
// pre-registered, so the exported metric surface is identical on an
// idle database and one that has run transactions.
func newTxMetrics() *obs.Registry {
	r := obs.NewRegistry()
	r.Int("begun")
	r.Int("committed")
	r.Int("aborted")
	r.Int("conflicts")
	r.Histogram("commit-latency")
	return r
}

// newTx pins the current committed version. The caller must have
// established that the database is usable (stateMu shared or db.mu).
func (db *DB) newTx(ctx context.Context, writable, locked, metered bool) *Tx {
	tx := &Tx{db: db, ctx: ctx, snap: db.index.Snapshot(),
		writable: writable, locked: locked, metered: metered}
	if metered {
		db.txMetrics.Int("begun").Add(1)
	}
	return tx
}

// Begin starts a writable transaction whose snapshot is the newest
// committed version. The caller must end it with exactly one Commit
// or Rollback (Rollback after a failed Commit is a no-op, so
// `defer tx.Rollback()` is safe). Begin does not serialize with
// writers: any number of transactions may be open at once, and
// conflicts surface at Commit. Prefer the Update closure, which
// handles the end-of-transaction bookkeeping.
func (db *DB) Begin(ctx context.Context) (*Tx, error) {
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	if err := db.usableLocked(ctx); err != nil {
		return nil, err
	}
	return db.newTx(ctx, true, false, true), nil
}

// View runs fn inside a read-only transaction: every read in fn
// observes one committed version, however many writes commit
// meanwhile. The transaction ends when fn returns; its error (nil or
// not) is returned.
func (db *DB) View(ctx context.Context, fn func(*Tx) error) error {
	db.stateMu.RLock()
	err := db.usableLocked(ctx)
	var tx *Tx
	if err == nil {
		tx = db.newTx(ctx, false, false, true)
	}
	db.stateMu.RUnlock()
	if err != nil {
		return err
	}
	defer tx.Rollback()
	if err := fn(tx); err != nil {
		return err
	}
	return tx.Commit()
}

// Update runs fn inside a writable transaction and commits it when fn
// returns nil; a non-nil error (or a panic) rolls the transaction
// back. Commit may fail with ErrTxConflict, in which case the whole
// closure can simply be retried.
func (db *DB) Update(ctx context.Context, fn func(*Tx) error) error {
	tx, err := db.Begin(ctx)
	if err != nil {
		return err
	}
	defer tx.Rollback() // no-op after a successful Commit
	if err := fn(tx); err != nil {
		return err
	}
	return tx.Commit()
}

// updateAuto is the one-shot auto-commit path behind the classic
// write entry points (Insert, InsertAll, Delete, DeleteBox): it runs
// fn in a writable transaction created and committed under db.mu, so
// no other commit can interleave and first-committer-wins validation
// trivially passes — the classic entry points keep their exact
// pre-transaction semantics (duplicate inserts fail with the
// duplicate-key error, never with ErrTxConflict).
func (db *DB) updateAuto(ctx context.Context, fn func(*Tx) error) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.usableLocked(ctx); err != nil {
		return err
	}
	tx := db.newTx(ctx, true, true, false)
	defer tx.Rollback()
	if err := fn(tx); err != nil {
		return err
	}
	return tx.Commit()
}

// viewAuto is the one-shot read path behind the classic untraced
// query entry points: a read-only transaction around a single
// statement.
func (db *DB) viewAuto(ctx context.Context, fn func(*Tx) error) error {
	db.stateMu.RLock()
	if err := db.usableLocked(ctx); err != nil {
		db.stateMu.RUnlock()
		return err
	}
	tx := db.newTx(ctx, false, false, false)
	db.stateMu.RUnlock()
	defer tx.Rollback()
	return fn(tx)
}

// begin enters one transaction statement: it rejects ended
// transactions, then holds the database open (stateMu shared) for the
// statement's duration. ctx is the statement's effective context.
func (tx *Tx) begin(ctx context.Context) (func(), error) {
	if tx.done {
		return nil, ErrTxAborted
	}
	tx.db.stateMu.RLock()
	if err := tx.db.usableLocked(ctx); err != nil {
		tx.db.stateMu.RUnlock()
		return nil, err
	}
	return tx.db.stateMu.RUnlock, nil
}

// statementCtx resolves a statement's context: a WithContext option
// overrides the transaction's own.
func (tx *Tx) statementCtx(qc *queryConfig) context.Context {
	if qc.ctx != nil {
		return qc.ctx
	}
	return tx.ctx
}

// Seq returns the committed version sequence the transaction's
// snapshot pins — its read timestamp.
func (tx *Tx) Seq() uint64 { return tx.snap.Seq() }

// Writable reports whether the transaction accepts writes.
func (tx *Tx) Writable() bool { return tx.writable }

// Pending returns the number of buffered write statements.
func (tx *Tx) Pending() int { return len(tx.writes) }

// keyOf validates the point against the grid and returns its overlay
// key.
func (tx *Tx) keyOf(p Point) (txKey, error) {
	if !tx.db.grid.Valid(p.Coords) {
		return txKey{}, fmt.Errorf("core: point %v outside %v", p, tx.db.grid)
	}
	return txKey{z: tx.db.grid.ShuffleKey(p.Coords), id: p.ID}, nil
}

// setOverlay records the net state of a key, fixing inSnap on first
// touch.
func (tx *Tx) setOverlay(k txKey, p Point, live, inSnap bool) {
	if tx.overlay == nil {
		tx.overlay = make(map[txKey]txEntry)
	}
	if e, ok := tx.overlay[k]; ok {
		inSnap = e.inSnap
	}
	tx.overlay[k] = txEntry{p: p, live: live, inSnap: inSnap}
}

// Insert buffers a point insertion. Duplicates are checked against
// the transaction's view (snapshot plus buffered writes), so
// inserting a key deleted earlier in the same transaction succeeds
// and re-inserting a live one fails with the duplicate-key error.
func (tx *Tx) Insert(p Point) error {
	release, err := tx.begin(tx.ctx)
	if err != nil {
		return err
	}
	defer release()
	if !tx.writable {
		return ErrTxReadOnly
	}
	k, err := tx.keyOf(p)
	if err != nil {
		return err
	}
	inSnap := false
	if e, ok := tx.overlay[k]; ok {
		if e.live {
			return btree.ErrDuplicateKey
		}
		inSnap = e.inSnap
	} else {
		inSnap, err = tx.snap.Contains(p)
		if err != nil {
			return err
		}
		if inSnap {
			return btree.ErrDuplicateKey
		}
	}
	tx.setOverlay(k, p, true, inSnap)
	tx.writes = append(tx.writes, core.PointMutation{Point: p})
	return nil
}

// InsertAll buffers many point insertions, failing on the first
// error (earlier points of the batch stay buffered).
func (tx *Tx) InsertAll(pts []Point) error {
	for _, p := range pts {
		if err := tx.Insert(p); err != nil {
			return fmt.Errorf("probe: insert point %d: %w", p.ID, err)
		}
	}
	return nil
}

// Delete buffers a point deletion, reporting whether the point is
// present in the transaction's view (read-your-writes: a point
// inserted earlier in the transaction can be deleted, and deleting
// the same point twice reports false the second time). Deleting an
// absent point buffers nothing.
func (tx *Tx) Delete(p Point) (bool, error) {
	release, err := tx.begin(tx.ctx)
	if err != nil {
		return false, err
	}
	defer release()
	if !tx.writable {
		return false, ErrTxReadOnly
	}
	k, err := tx.keyOf(p)
	if err != nil {
		return false, err
	}
	inSnap := false
	if e, ok := tx.overlay[k]; ok {
		if !e.live {
			return false, nil
		}
		inSnap = e.inSnap
	} else {
		inSnap, err = tx.snap.Contains(p)
		if err != nil {
			return false, err
		}
		if !inSnap {
			return false, nil
		}
	}
	tx.setOverlay(k, p, false, inSnap)
	tx.writes = append(tx.writes, core.PointMutation{Point: p, Delete: true})
	return true, nil
}

// DeleteBox deletes every point inside the box as seen by the
// transaction's view, returning how many were buffered for deletion.
func (tx *Tx) DeleteBox(box Box, opts ...QueryOption) (int, error) {
	victims, _, err := tx.RangeSearch(box, opts...)
	if err != nil {
		return 0, err
	}
	for i, p := range victims {
		ok, err := tx.Delete(p)
		if err != nil {
			return i, err
		}
		if !ok {
			return i, fmt.Errorf("probe: point %v vanished during DeleteBox", p)
		}
	}
	return len(victims), nil
}

// RangeSearch returns all points inside the box as seen by the
// transaction: the pinned snapshot's answer with buffered deletions
// removed and buffered insertions merged in, in z order. It accepts
// WithStrategy and WithContext; WithTrace is ignored (snapshot reads
// carry no physical attribution).
func (tx *Tx) RangeSearch(box Box, opts ...QueryOption) ([]Point, QueryStats, error) {
	qc := queryConfig{strategy: MergeLazy}
	for _, o := range opts {
		o.applyQuery(&qc)
	}
	ctx := tx.statementCtx(&qc)
	release, err := tx.begin(ctx)
	if err != nil {
		return nil, QueryStats{}, err
	}
	defer release()
	pts, ss, err := tx.snap.RangeSearchCtx(ctx, box, qc.strategy, nil)
	if err != nil {
		return nil, searchQueryStats(ss), err
	}
	pts = tx.overlayRange(pts, box)
	qs := searchQueryStats(ss)
	qs.Results = len(pts)
	return pts, qs, nil
}

// RangeSearchFunc streams the transaction's view of the box to fn in
// z order; returning false stops the stream early. Unlike
// DB.RangeSearchFunc it materializes the result first (the overlay
// merge needs the full snapshot answer), so it streams from memory.
func (tx *Tx) RangeSearchFunc(box Box, fn func(Point) bool, opts ...QueryOption) (QueryStats, error) {
	pts, qs, err := tx.RangeSearch(box, opts...)
	if err != nil {
		return qs, err
	}
	for _, p := range pts {
		if !fn(p) {
			break
		}
	}
	return qs, nil
}

// Scan streams every point of the transaction's view in z order.
func (tx *Tx) Scan(fn func(Point) bool) error {
	_, err := tx.RangeSearchFunc(geom.FullBox(tx.db.grid), fn)
	return err
}

// Len returns the number of points in the transaction's view.
func (tx *Tx) Len() int {
	n := tx.snap.Len()
	for _, e := range tx.overlay {
		if e.live && !e.inSnap {
			n++
		}
		if !e.live && e.inSnap {
			n--
		}
	}
	return n
}

// overlayRange applies the write-set to a snapshot range result:
// drops points deleted in the transaction, merges in buffered
// insertions falling inside the box, and restores z order.
func (tx *Tx) overlayRange(pts []Point, box Box) []Point {
	if len(tx.overlay) == 0 {
		return pts
	}
	out := pts[:0]
	seen := make(map[txKey]bool, len(tx.overlay))
	for _, p := range pts {
		k := txKey{z: tx.db.grid.ShuffleKey(p.Coords), id: p.ID}
		if e, ok := tx.overlay[k]; ok {
			seen[k] = true
			if !e.live {
				continue
			}
		}
		out = append(out, p)
	}
	added := false
	for k, e := range tx.overlay {
		if e.live && !seen[k] && box.ContainsPoint(e.p.Coords) {
			out = append(out, e.p)
			added = true
		}
	}
	if added {
		g := tx.db.grid
		sort.Slice(out, func(i, j int) bool {
			zi, zj := g.ShuffleKey(out[i].Coords), g.ShuffleKey(out[j].Coords)
			if zi != zj {
				return zi < zj
			}
			return out[i].ID < out[j].ID
		})
	}
	return out
}

// Nearest returns the m points of the transaction's view nearest to
// q: the snapshot is asked for enough extra neighbors to absorb every
// buffered deletion, then buffered insertions are ranked in. Options
// as in RangeSearch.
func (tx *Tx) Nearest(q []uint32, m int, metric Metric, opts ...QueryOption) ([]Neighbor, QueryStats, error) {
	qc := queryConfig{strategy: MergeLazy}
	for _, o := range opts {
		o.applyQuery(&qc)
	}
	ctx := tx.statementCtx(&qc)
	release, err := tx.begin(ctx)
	if err != nil {
		return nil, QueryStats{}, err
	}
	defer release()

	deletes := 0
	for _, e := range tx.overlay {
		if !e.live {
			deletes++
		}
	}
	nbs, ss, err := tx.snap.NearestCtx(ctx, q, m+deletes, metric, qc.strategy)
	if err != nil {
		return nil, searchQueryStats(ss), err
	}
	qs := searchQueryStats(ss)
	if len(tx.overlay) == 0 {
		if len(nbs) > m {
			nbs = nbs[:m]
		}
		qs.Results = len(nbs)
		return nbs, qs, nil
	}
	// The overlay can resurrect results on an empty snapshot, where
	// NearestCtx skipped its own argument validation's Len guard but
	// still validated q, m and metric above.
	seen := make(map[txKey]bool, len(tx.overlay))
	keep := nbs[:0]
	for _, nb := range nbs {
		k := txKey{z: tx.db.grid.ShuffleKey(nb.Point.Coords), id: nb.Point.ID}
		if e, ok := tx.overlay[k]; ok {
			seen[k] = true
			if !e.live {
				continue
			}
		}
		keep = append(keep, nb)
	}
	for k, e := range tx.overlay {
		if e.live && !seen[k] {
			keep = append(keep, Neighbor{Point: e.p, Dist: core.Distance(q, e.p.Coords, metric)})
		}
	}
	sort.Slice(keep, func(i, j int) bool {
		if keep[i].Dist != keep[j].Dist {
			return keep[i].Dist < keep[j].Dist
		}
		return keep[i].Point.ID < keep[j].Point.ID
	})
	if len(keep) > m {
		keep = keep[:m]
	}
	qs.Results = len(keep)
	return keep, qs, nil
}

// Commit ends the transaction, validating and applying its write-set
// as one atomic index publication. It returns ErrTxConflict when a
// version committed after the transaction's snapshot touched a key in
// the write-set (first-committer-wins); the transaction is then ended
// and must be retried from Begin. A transaction with no buffered
// writes commits trivially. Durability follows the database's
// checkpoint contract: the commit is atomic across crashes (recovery
// sees all of it or none of it), and becomes durable at the next
// Checkpoint or Close.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxAborted
	}
	tx.done = true
	defer tx.snap.Release()
	db := tx.db
	if len(tx.writes) == 0 {
		if tx.metered {
			db.txMetrics.Int("committed").Add(1)
		}
		return nil
	}
	t0 := time.Now()
	if !tx.locked {
		db.mu.Lock()
		defer db.mu.Unlock()
	}
	if err := db.usableLocked(tx.ctx); err != nil {
		tx.countAbort()
		return err
	}
	err := db.index.CommitBatch(tx.snap.Seq(), tx.writes)
	switch {
	case err == nil:
		if tx.metered {
			db.txMetrics.Int("committed").Add(1)
			db.txMetrics.Histogram("commit-latency").Observe(int64(time.Since(t0)))
		}
		db.metrics.AddSpan("tx-commit", nil)
		return nil
	case errors.Is(err, btree.ErrConflict):
		if tx.metered {
			db.txMetrics.Int("conflicts").Add(1)
		}
		tx.countAbort()
		return ErrTxConflict
	default:
		tx.countAbort()
		return err
	}
}

// Rollback ends the transaction, discarding its buffered writes. It
// is a no-op on a transaction that already ended, so deferring it
// after Begin is always safe.
func (tx *Tx) Rollback() error {
	if tx.done {
		return nil
	}
	tx.done = true
	tx.snap.Release()
	tx.countAbort()
	return nil
}

func (tx *Tx) countAbort() {
	if tx.metered {
		tx.db.txMetrics.Int("aborted").Add(1)
	}
}

// TxMetrics returns the transaction metrics registry: begun,
// committed, aborted and conflicts counters plus the commit-latency
// histogram. The admin endpoint exposes it under the probe_tx_*
// namespace. One-shot auto-commit operations do not count here.
func (db *DB) TxMetrics() *Metrics { return db.txMetrics }

package probe_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"probe"
	"probe/internal/disk/faultfs"
)

// This file is the transaction crash-atomicity harness: for hundreds
// of seeded schedules it runs transactions — each buffering a batch
// of inserts in a private id band, plus deletes of committed points —
// interleaved with auto-commit writes and checkpoints, on a
// fault-injecting filesystem that crashes (or tears a write) at a
// seeded operation, very often inside the page-write burst a COMMIT's
// publication and the following checkpoint produce. It then recovers
// from the crash image and asserts all-or-nothing:
//
//   - recovery yields an acknowledged checkpoint state (the standard
//     durability contract), never a torn hybrid;
//   - per transaction, band counting makes atomicity directly
//     observable: of the points a committed transaction inserted, the
//     recovered database holds either all of them or none of them —
//     a partially applied write-set can never surface, no matter
//     where in COMMIT the fault landed;
//   - a transaction that was still open (or rolled back, or lost
//     validation) at the fault contributes nothing.
//
// Failing seeds are appended to $CRASH_SEED_FILE like the base
// crash-recovery harness, tagged kind=tx-crash/tx-torn.

// txBand is one transaction's insert band for the all-or-nothing
// check: the ids it buffered, and whether COMMIT was acknowledged.
type txBand struct {
	ids       []uint64
	committed bool
}

// deletableIDs returns the live points outside every transaction's
// insert band (ids below 1<<40). Deletes target only these, so band
// counting observes commit atomicity undisturbed: once a band is in,
// nothing in the schedule ever removes part of it.
func deletableIDs(live dbModel) []uint64 {
	ids := live.liveIDs()
	out := ids[:0]
	for _, id := range ids {
		if id < 1<<40 {
			out = append(out, id)
		}
	}
	return out
}

// runTxCrashSteps drives one schedule until the filesystem crashes or
// the schedule ends. It mirrors runDBSteps' checkpoint bookkeeping
// (acked / maybe) and additionally records every transaction's band.
func runTxCrashSteps(t *testing.T, fsys *faultfs.FS, db *probe.DB, seed int64) (acked, maybe dbModel, bands []*txBand) {
	rng := rand.New(rand.NewSource(seed * 7))
	ctx := context.Background()
	live := dbModel{}
	acked = dbModel{} // database creation checkpoints an empty state

	nextAutoID := uint64(1)
	steps := 30 + rng.Intn(40)
	for i := 0; i < steps && !fsys.Crashed(); i++ {
		switch r := rng.Intn(100); {
		case r < 35: // one whole transaction, commit attempted
			tx, err := db.Begin(ctx)
			if err != nil {
				if fsys.Crashed() {
					return acked, maybe, bands
				}
				t.Fatalf("begin: %v", err)
			}
			band := &txBand{}
			n := 3 + rng.Intn(6)
			bandBase := uint64(i+1)<<40 | uint64(seed&0xffff)<<20
			overlay := dbModel{}
			for j := 0; j < n; j++ {
				id := bandBase + uint64(j)
				x, y := uint32(rng.Intn(256)), uint32(rng.Intn(256))
				if err := tx.Insert(probe.Pt2(id, x, y)); err != nil {
					if fsys.Crashed() {
						tx.Rollback()
						bands = append(bands, band)
						return acked, maybe, bands
					}
					t.Fatalf("tx insert: %v", err)
				}
				band.ids = append(band.ids, id)
				overlay[id] = [2]uint32{x, y}
			}
			var dels []uint64
			if ids := deletableIDs(live); len(ids) > 0 && rng.Intn(2) == 0 {
				id := ids[rng.Intn(len(ids))]
				xy := live[id]
				if ok, err := tx.Delete(probe.Pt2(id, xy[0], xy[1])); err != nil || !ok {
					if fsys.Crashed() {
						tx.Rollback()
						bands = append(bands, band)
						return acked, maybe, bands
					}
					t.Fatalf("tx delete: ok=%v err=%v", ok, err)
				}
				dels = append(dels, id)
			}
			err = tx.Commit()
			bands = append(bands, band)
			switch {
			case err == nil:
				band.committed = true
				for id, xy := range overlay {
					live[id] = xy
				}
				for _, id := range dels {
					delete(live, id)
				}
			case fsys.Crashed() || errors.Is(err, probe.ErrTxConflict):
				// Nothing applies; single-threaded schedules should
				// never actually conflict, but a crashed commit may
				// surface as any error.
			default:
				t.Fatalf("commit: %v", err)
			}
		case r < 55: // auto-commit insert
			id := nextAutoID
			nextAutoID++
			x, y := uint32(rng.Intn(256)), uint32(rng.Intn(256))
			if err := db.Insert(probe.Pt2(id, x, y)); err == nil {
				live[id] = [2]uint32{x, y}
			}
		case r < 65: // auto-commit delete
			ids := deletableIDs(live)
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			xy := live[id]
			if ok, err := db.Delete(probe.Pt2(id, xy[0], xy[1])); err == nil && ok {
				delete(live, id)
			}
		case r < 72: // abandoned transaction: buffered writes, rolled back
			tx, err := db.Begin(ctx)
			if err != nil {
				continue
			}
			id := uint64(i+1)<<40 | 0xdead<<4
			_ = tx.Insert(probe.Pt2(id, uint32(rng.Intn(256)), uint32(rng.Intn(256))))
			bands = append(bands, &txBand{ids: []uint64{id}})
			_ = tx.Rollback()
		default: // checkpoint: the durability point
			cand := live.clone()
			if _, err := db.Checkpoint(); err == nil {
				acked = cand
				maybe = nil
			} else if maybe == nil {
				maybe = cand
			}
		}
	}
	// End on a checkpoint attempt so committed transactions have a
	// durability point to survive through.
	if !fsys.Crashed() {
		cand := live.clone()
		if _, err := db.Checkpoint(); err == nil {
			acked = cand
			maybe = nil
		} else if maybe == nil {
			maybe = cand
		}
	}
	return acked, maybe, bands
}

func TestTxCrashAtomicity(t *testing.T) {
	seeds := txCrashSchedules
	if testing.Short() {
		seeds /= 10
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			kind := runOneTxCrashSchedule(t, seed)
			if t.Failed() {
				recordDBFailureSeed(seed, kind)
			}
		})
	}
}

func runOneTxCrashSchedule(t *testing.T, seed int64) string {
	// Dry run on a clean filesystem to size the fault window.
	dry := faultfs.New()
	dryDB := openOn(t, dry)
	dry.Arm(faultfs.Plan{})
	runTxCrashSteps(t, dry, dryDB, seed)
	w := dry.Ops()
	if w == 0 {
		t.Fatal("schedule performed no write operations")
	}

	// Armed run: crash or torn write at a seeded operation inside the
	// workload's write stream.
	rng := rand.New(rand.NewSource(seed))
	at := 1 + rng.Intn(w)
	var plan faultfs.Plan
	var kind string
	if seed%2 == 0 {
		plan, kind = faultfs.Plan{Seed: seed, CrashAt: at}, "tx-crash"
	} else {
		plan, kind = faultfs.Plan{Seed: seed, TornAt: at}, "tx-torn"
	}
	fsys := faultfs.New()
	db := openOn(t, fsys)
	fsys.Arm(plan)
	acked, maybe, bands := runTxCrashSteps(t, fsys, db, seed)

	img := fsys.CrashImage()
	rec, err := probe.Open(probe.MustGrid(2, 8),
		probe.WithDurability("probe.db"), probe.WithFS(img))
	if err != nil {
		t.Fatalf("kind=%s: recovery failed: %v", kind, err)
	}
	defer rec.Close()

	got := dbModel{}
	if err := rec.Scan(func(p probe.Point) bool {
		got[p.ID] = [2]uint32{p.Coords[0], p.Coords[1]}
		return true
	}); err != nil {
		t.Fatalf("kind=%s: scan of recovered database: %v", kind, err)
	}

	// Durability contract: the recovered state is an acknowledged
	// checkpoint (or the one in flight at the fault).
	errAcked := matchDBState(got, acked)
	if errAcked != nil {
		errMaybe := fmt.Errorf("no checkpoint was in flight")
		if maybe != nil {
			errMaybe = matchDBState(got, maybe)
		}
		if errMaybe != nil {
			t.Fatalf("kind=%s: recovered state matches no acknowledged checkpoint:\n  vs acked: %v\n  vs in-flight: %v",
				kind, errAcked, errMaybe)
		}
	}

	// All-or-nothing, observed directly: every transaction's insert
	// band is fully present or fully absent — regardless of whether
	// the fault hit mid-COMMIT — and an uncommitted band never
	// surfaces at all.
	for i, b := range bands {
		present := 0
		for _, id := range b.ids {
			if _, ok := got[id]; ok {
				present++
			}
		}
		if !b.committed && present != 0 {
			t.Fatalf("kind=%s: tx %d never committed but %d/%d of its inserts survived recovery",
				kind, i, present, len(b.ids))
		}
		if present != 0 && present != len(b.ids) {
			t.Fatalf("kind=%s: tx %d recovered torn: %d of %d inserts present",
				kind, i, present, len(b.ids))
		}
	}

	// The recovered database accepts transactions again.
	ctx := context.Background()
	tx, err := rec.Begin(ctx)
	if err != nil {
		t.Fatalf("kind=%s: begin after recovery: %v", kind, err)
	}
	if err := tx.Insert(probe.Pt2(1<<60, 11, 13)); err != nil {
		t.Fatalf("kind=%s: tx insert after recovery: %v", kind, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("kind=%s: tx commit after recovery: %v", kind, err)
	}
	if _, err := rec.Checkpoint(); err != nil {
		t.Fatalf("kind=%s: checkpoint after recovery: %v", kind, err)
	}
	return kind
}

//go:build !slow

package probe_test

// txHarnessSchedules is the number of seeded transaction schedules
// the isolation property harness runs in the default build. The CI
// tx-stress job builds with -tags slow for a deeper sweep.
const txHarnessSchedules = 250

// txCrashSchedules is the number of seeded crash-mid-commit fault
// schedules in the default build.
const txCrashSchedules = 220

//go:build slow

package probe_test

// txHarnessSchedules under -tags slow: the deep sweep the CI
// tx-stress job runs.
const txHarnessSchedules = 1200

// txCrashSchedules under -tags slow.
const txCrashSchedules = 1000

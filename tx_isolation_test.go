package probe_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"probe"
)

// This file is the transaction isolation property harness
// (docs/transactions.md): for hundreds of seeded schedules it
// interleaves several open transactions with auto-commit writes —
// all driven from one goroutine, so a serial oracle can predict every
// outcome exactly — and asserts:
//
//   - every read inside a transaction equals its pinned base state
//     with its own buffered writes overlaid (read-your-writes), no
//     matter what committed meanwhile;
//   - every auto-commit read equals the committed oracle state;
//   - COMMIT succeeds exactly when first-committer-wins validation
//     should let it: it conflicts if and only if some write published
//     after the transaction began touched a key in its write-set;
//   - a committed transaction applies its whole write-set to the
//     committed state; a conflicting or rolled-back one applies
//     nothing;
//   - when all transactions have ended, the database contents equal
//     the serial replay and the version chain GCs clean.
//
// Failing seeds are appended to $TX_SEED_FILE (CI archives it).

// txKeyT identifies a point for conflict prediction: transactions
// conflict on exact (id, coords) keys.
type txKeyT struct {
	id   uint64
	x, y uint32
}

// txSlot is the oracle's view of one open transaction.
type txSlot struct {
	tx      *probe.Tx
	base    dbModel         // committed state when it began
	overlay dbModel         // inserts buffered so far
	deletes map[txKeyT]bool // deletes buffered so far
	writes  map[txKeyT]bool // every key the write-set touches
	logAt   int             // length of the commit log at Begin
	nextID  uint64          // private id band for inserts
}

// view is the state the transaction must observe: base + overlay.
func (s *txSlot) view() dbModel {
	v := s.base.clone()
	for id, xy := range s.overlay {
		v[id] = xy
	}
	for k := range s.deletes {
		delete(v, k.id)
	}
	return v
}

func recordTxFailureSeed(seed int64) {
	path := os.Getenv("TX_SEED_FILE")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	fmt.Fprintf(f, "probe tx seed=%d\n", seed)
	f.Close()
}

func TestTxIsolationProperty(t *testing.T) {
	schedules := txHarnessSchedules
	if testing.Short() {
		schedules /= 10
	}
	for seed := int64(0); seed < int64(schedules); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runOneTxSchedule(t, seed)
			if t.Failed() {
				recordTxFailureSeed(seed)
			}
		})
	}
}

func runOneTxSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	ctx := context.Background()

	db, err := probe.Open(probe.MustGrid(2, 8),
		probe.WithLeafCapacity(4+rng.Intn(8)), probe.WithPoolPages(64))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Committed oracle state, seeded so deletes have targets.
	committed := dbModel{}
	for i := 0; i < 15+rng.Intn(15); i++ {
		id := uint64(1<<40) + uint64(i)
		x, y := uint32(rng.Intn(256)), uint32(rng.Intn(256))
		if err := db.Insert(probe.Pt2(id, x, y)); err != nil {
			t.Fatal(err)
		}
		committed[id] = [2]uint32{x, y}
	}

	// commitLog records the key set of every publication, in order —
	// the oracle for first-committer-wins validation.
	var commitLog []map[txKeyT]bool
	publish := func(keys map[txKeyT]bool) { commitLog = append(commitLog, keys) }

	const slots = 3
	open := [slots]*txSlot{}
	nextAutoID := uint64(1)

	autoDelete := func(st int) {
		ids := committed.liveIDs()
		if len(ids) == 0 {
			return
		}
		id := ids[st%len(ids)]
		xy := committed[id]
		ok, err := db.Delete(probe.Pt2(id, xy[0], xy[1]))
		if err != nil || !ok {
			t.Fatalf("auto delete of live id %d: ok=%v err=%v", id, ok, err)
		}
		delete(committed, id)
		publish(map[txKeyT]bool{{id, xy[0], xy[1]}: true})
	}

	steps := 60 + rng.Intn(80)
	for i := 0; i < steps; i++ {
		slot := rng.Intn(slots)
		s := open[slot]
		switch r := rng.Intn(100); {
		case r < 12: // begin (if the slot is free)
			if s != nil {
				continue
			}
			tx, err := db.Begin(ctx)
			if err != nil {
				t.Fatal(err)
			}
			open[slot] = &txSlot{
				tx: tx, base: committed.clone(),
				overlay: dbModel{}, deletes: map[txKeyT]bool{}, writes: map[txKeyT]bool{},
				logAt:  len(commitLog),
				nextID: uint64(slot+1)<<50 | uint64(i)<<20, // private band
			}
		case r < 32: // tx insert
			if s == nil {
				continue
			}
			id := s.nextID
			s.nextID++
			x, y := uint32(rng.Intn(256)), uint32(rng.Intn(256))
			if err := s.tx.Insert(probe.Pt2(id, x, y)); err != nil {
				t.Fatalf("tx insert: %v", err)
			}
			s.overlay[id] = [2]uint32{x, y}
			s.writes[txKeyT{id, x, y}] = true
		case r < 44: // tx delete of something in its view
			if s == nil {
				continue
			}
			view := s.view()
			ids := view.liveIDs()
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			xy := view[id]
			ok, err := s.tx.Delete(probe.Pt2(id, xy[0], xy[1]))
			if err != nil || !ok {
				t.Fatalf("tx delete of id %d in its view: ok=%v err=%v", id, ok, err)
			}
			k := txKeyT{id, xy[0], xy[1]}
			if s.overlay[id] == xy {
				delete(s.overlay, id) // deleting its own insert
			} else {
				s.deletes[k] = true
			}
			s.writes[k] = true
		case r < 56: // tx read: full-box range must equal base+overlay
			if s == nil {
				continue
			}
			got := dbModel{}
			if _, err := s.tx.RangeSearchFunc(probe.Box2(0, 255, 0, 255), func(p probe.Point) bool {
				got[p.ID] = [2]uint32{p.Coords[0], p.Coords[1]}
				return true
			}); err != nil {
				t.Fatalf("tx range: %v", err)
			}
			if err := matchDBState(got, s.view()); err != nil {
				t.Fatalf("step %d: tx view diverged from base+overlay: %v", i, err)
			}
			if n := s.tx.Len(); n != len(s.view()) {
				t.Fatalf("step %d: tx Len %d, oracle %d", i, n, len(s.view()))
			}
		case r < 66: // commit: conflicts iff a later publication hit its keys
			if s == nil {
				continue
			}
			open[slot] = nil
			wantConflict := false
			for _, keys := range commitLog[s.logAt:] {
				for k := range keys {
					if s.writes[k] {
						wantConflict = true
					}
				}
			}
			err := s.tx.Commit()
			switch {
			case wantConflict && errors.Is(err, probe.ErrTxConflict):
				// Loser: nothing applies.
			case !wantConflict && err == nil:
				for id, xy := range s.overlay {
					committed[id] = xy
				}
				for k := range s.deletes {
					delete(committed, k.id)
				}
				if len(s.writes) > 0 {
					publish(s.writes)
				}
			default:
				t.Fatalf("step %d: commit got %v, oracle wanted conflict=%v (writes=%d, log since begin=%d)",
					i, err, wantConflict, len(s.writes), len(commitLog)-s.logAt)
			}
		case r < 72: // rollback: nothing applies
			if s == nil {
				continue
			}
			open[slot] = nil
			if err := s.tx.Rollback(); err != nil {
				t.Fatalf("rollback: %v", err)
			}
		case r < 88: // auto-commit insert
			id := nextAutoID
			nextAutoID++
			x, y := uint32(rng.Intn(256)), uint32(rng.Intn(256))
			if err := db.Insert(probe.Pt2(id, x, y)); err != nil {
				t.Fatalf("auto insert: %v", err)
			}
			committed[id] = [2]uint32{x, y}
			publish(map[txKeyT]bool{{id, x, y}: true})
		case r < 96: // auto-commit delete (the conflict generator)
			autoDelete(rng.Intn(1 << 30))
		default: // auto-commit read sees only committed state
			pts, _, err := db.RangeSearch(probe.Box2(0, 255, 0, 255))
			if err != nil {
				t.Fatalf("auto range: %v", err)
			}
			got := dbModel{}
			for _, p := range pts {
				got[p.ID] = [2]uint32{p.Coords[0], p.Coords[1]}
			}
			if err := matchDBState(got, committed); err != nil {
				t.Fatalf("step %d: auto-commit read diverged from committed state: %v", i, err)
			}
		}
	}

	// End every schedule by resolving the stragglers, alternating
	// commit and rollback so both paths run.
	for slot, s := range open {
		if s == nil {
			continue
		}
		if slot%2 == 0 {
			wantConflict := false
			for _, keys := range commitLog[s.logAt:] {
				for k := range keys {
					if s.writes[k] {
						wantConflict = true
					}
				}
			}
			err := s.tx.Commit()
			if wantConflict != (err != nil) {
				t.Fatalf("final commit slot %d: got %v, oracle wanted conflict=%v", slot, err, wantConflict)
			}
			if err == nil {
				for id, xy := range s.overlay {
					committed[id] = xy
				}
				for k := range s.deletes {
					delete(committed, k.id)
				}
				if len(s.writes) > 0 {
					publish(s.writes)
				}
			}
		} else if err := s.tx.Rollback(); err != nil {
			t.Fatalf("final rollback slot %d: %v", slot, err)
		}
	}

	// Serial replay: the surviving state is exactly the oracle's.
	final := dbModel{}
	if err := db.Scan(func(p probe.Point) bool {
		final[p.ID] = [2]uint32{p.Coords[0], p.Coords[1]}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if err := matchDBState(final, committed); err != nil {
		t.Fatalf("final state diverged from serial replay: %v", err)
	}

	// With every transaction ended, the version chain must GC clean.
	db.Index().Tree().CollectGarbage()
	mv := db.MVCCStats()
	if mv.PinnedSnapshots != 0 || mv.RetainedVersions != 0 || mv.RetainedPages != 0 {
		t.Fatalf("version chain not drained after all txs ended: %+v", mv)
	}
	if err := db.Index().Tree().CheckInvariants(); err != nil {
		t.Fatalf("surviving tree invariants: %v", err)
	}
}

package probe_test

import (
	"context"
	"errors"
	"testing"

	"probe"
)

func txTestDB(t *testing.T) *probe.DB {
	t.Helper()
	db, err := probe.Open(probe.MustGrid(2, 8), probe.WithLeafCapacity(4), probe.WithPoolPages(64))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func idsOf(pts []probe.Point) map[uint64]bool {
	m := map[uint64]bool{}
	for _, p := range pts {
		m[p.ID] = true
	}
	return m
}

// TestTxReadYourWrites: inside a tx, RangeSearch, Nearest, Delete and
// Len observe the buffered write-set; outside, nothing is visible
// until Commit.
func TestTxReadYourWrites(t *testing.T) {
	db := txTestDB(t)
	for i := uint64(1); i <= 5; i++ {
		if err := db.Insert(probe.Pt2(i, uint32(i*10), uint32(i*10))); err != nil {
			t.Fatal(err)
		}
	}
	tx, err := db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()

	if err := tx.Insert(probe.Pt2(100, 55, 55)); err != nil {
		t.Fatal(err)
	}
	if ok, err := tx.Delete(probe.Pt2(2, 20, 20)); err != nil || !ok {
		t.Fatalf("tx delete existing: %v %v", ok, err)
	}

	// Inside the tx: insert visible, delete applied.
	pts, _, err := tx.RangeSearch(probe.Box2(0, 255, 0, 255))
	if err != nil {
		t.Fatal(err)
	}
	in := idsOf(pts)
	if !in[100] || in[2] {
		t.Fatalf("tx view wrong: %v", in)
	}
	if got, want := tx.Len(), 5; got != want {
		t.Fatalf("tx Len = %d, want %d", got, want)
	}

	// Outside the tx: nothing happened yet.
	out, _, err := db.RangeSearch(probe.Box2(0, 255, 0, 255))
	if err != nil {
		t.Fatal(err)
	}
	o := idsOf(out)
	if o[100] || !o[2] {
		t.Fatalf("uncommitted tx leaked: %v", o)
	}

	// Nearest sees the buffered insert and not the buffered delete.
	nbs, _, err := tx.Nearest([]uint32{55, 55}, 1, probe.Chebyshev)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbs) != 1 || nbs[0].Point.ID != 100 {
		t.Fatalf("tx nearest = %+v, want buffered point 100", nbs)
	}
	nbs, _, err = tx.Nearest([]uint32{20, 20}, 5, probe.Chebyshev)
	if err != nil {
		t.Fatal(err)
	}
	for _, nb := range nbs {
		if nb.Point.ID == 2 {
			t.Fatal("tx nearest returned a point deleted in the tx")
		}
	}

	// Deleting a point inserted in the tx works; deleting twice
	// reports absent.
	if ok, _ := tx.Delete(probe.Pt2(100, 55, 55)); !ok {
		t.Fatal("delete of tx-inserted point reported absent")
	}
	if ok, _ := tx.Delete(probe.Pt2(100, 55, 55)); ok {
		t.Fatal("second delete reported present")
	}

	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	final, _, err := db.RangeSearch(probe.Box2(0, 255, 0, 255))
	if err != nil {
		t.Fatal(err)
	}
	f := idsOf(final)
	if f[2] || f[100] || len(f) != 4 {
		t.Fatalf("committed state wrong: %v", f)
	}
}

// TestTxSnapshotIsolation: a tx's reads never observe writes
// committed after it began.
func TestTxSnapshotIsolation(t *testing.T) {
	db := txTestDB(t)
	if err := db.Insert(probe.Pt2(1, 10, 10)); err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()

	if err := db.Insert(probe.Pt2(2, 20, 20)); err != nil {
		t.Fatal(err)
	}
	pts, _, err := tx.RangeSearch(probe.Box2(0, 255, 0, 255))
	if err != nil {
		t.Fatal(err)
	}
	if ids := idsOf(pts); ids[2] || !ids[1] {
		t.Fatalf("tx read a post-snapshot commit: %v", ids)
	}
	if tx.Len() != 1 {
		t.Fatalf("tx Len = %d, want 1", tx.Len())
	}
}

// TestTxConflict: first-committer-wins — of two txs writing the same
// key, exactly the later committer fails with ErrTxConflict; disjoint
// write-sets both commit.
func TestTxConflict(t *testing.T) {
	db := txTestDB(t)
	if err := db.Insert(probe.Pt2(1, 10, 10)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	t1, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := t1.Delete(probe.Pt2(1, 10, 10)); err != nil || !ok {
		t.Fatalf("t1 delete: %v %v", ok, err)
	}
	if ok, err := t2.Delete(probe.Pt2(1, 10, 10)); err != nil || !ok {
		t.Fatalf("t2 delete: %v %v", ok, err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("first committer: %v", err)
	}
	if err := t2.Commit(); !errors.Is(err, probe.ErrTxConflict) {
		t.Fatalf("second committer: got %v, want ErrTxConflict", err)
	}

	// Disjoint transactions commit concurrently without conflict.
	t3, _ := db.Begin(ctx)
	t4, _ := db.Begin(ctx)
	if err := t3.Insert(probe.Pt2(30, 30, 30)); err != nil {
		t.Fatal(err)
	}
	if err := t4.Insert(probe.Pt2(40, 40, 40)); err != nil {
		t.Fatal(err)
	}
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t4.Commit(); err != nil {
		t.Fatalf("disjoint tx conflicted: %v", err)
	}

	// An auto-commit write also conflicts an overlapping open tx.
	t5, _ := db.Begin(ctx)
	if ok, err := t5.Delete(probe.Pt2(30, 30, 30)); err != nil || !ok {
		t.Fatalf("t5 delete: %v %v", ok, err)
	}
	if ok, err := db.Delete(probe.Pt2(30, 30, 30)); err != nil || !ok {
		t.Fatalf("auto-commit delete: %v %v", ok, err)
	}
	if err := t5.Commit(); !errors.Is(err, probe.ErrTxConflict) {
		t.Fatalf("tx overlapping auto-commit: got %v, want ErrTxConflict", err)
	}
}

// TestTxRollbackAndEndedSemantics: rollback discards everything;
// operations on an ended tx fail with ErrTxAborted; Rollback after
// Commit is a safe no-op.
func TestTxRollbackAndEndedSemantics(t *testing.T) {
	db := txTestDB(t)
	ctx := context.Background()
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(probe.Pt2(1, 10, 10)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 0 {
		t.Fatalf("rollback leaked writes: Len = %d", db.Len())
	}
	if err := tx.Insert(probe.Pt2(2, 20, 20)); !errors.Is(err, probe.ErrTxAborted) {
		t.Fatalf("write on ended tx: got %v, want ErrTxAborted", err)
	}
	if _, _, err := tx.RangeSearch(probe.Box2(0, 255, 0, 255)); !errors.Is(err, probe.ErrTxAborted) {
		t.Fatalf("read on ended tx: got %v, want ErrTxAborted", err)
	}
	if err := tx.Commit(); !errors.Is(err, probe.ErrTxAborted) {
		t.Fatalf("commit on ended tx: got %v, want ErrTxAborted", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatalf("double rollback: %v", err)
	}
}

// TestViewUpdateClosures: View rejects writes; Update commits on nil,
// rolls back on error and on panic.
func TestViewUpdateClosures(t *testing.T) {
	db := txTestDB(t)
	ctx := context.Background()

	if err := db.View(ctx, func(tx *probe.Tx) error {
		if err := tx.Insert(probe.Pt2(1, 10, 10)); !errors.Is(err, probe.ErrTxReadOnly) {
			t.Fatalf("View insert: got %v, want ErrTxReadOnly", err)
		}
		if _, err := tx.Delete(probe.Pt2(1, 10, 10)); !errors.Is(err, probe.ErrTxReadOnly) {
			t.Fatalf("View delete: got %v, want ErrTxReadOnly", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	if err := db.Update(ctx, func(tx *probe.Tx) error {
		return tx.Insert(probe.Pt2(1, 10, 10))
	}); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 {
		t.Fatalf("Update did not commit: Len = %d", db.Len())
	}

	boom := errors.New("boom")
	if err := db.Update(ctx, func(tx *probe.Tx) error {
		if err := tx.Insert(probe.Pt2(2, 20, 20)); err != nil {
			return err
		}
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("Update error: got %v", err)
	}
	if db.Len() != 1 {
		t.Fatalf("failed Update leaked writes: Len = %d", db.Len())
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Update swallowed the panic")
			}
		}()
		_ = db.Update(ctx, func(tx *probe.Tx) error {
			if err := tx.Insert(probe.Pt2(3, 30, 30)); err != nil {
				return err
			}
			panic("mid-tx panic")
		})
	}()
	if db.Len() != 1 {
		t.Fatalf("panicked Update leaked writes: Len = %d", db.Len())
	}

	// View sees one consistent version across statements.
	if err := db.View(ctx, func(tx *probe.Tx) error {
		before := tx.Len()
		if err := db.Insert(probe.Pt2(9, 90, 90)); err != nil {
			return err
		}
		if tx.Len() != before {
			t.Fatalf("View observed a concurrent commit")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestTxDeleteBoxAndDuplicates: read-your-writes duplicate rules and
// transactional DeleteBox.
func TestTxDeleteBoxAndDuplicates(t *testing.T) {
	db := txTestDB(t)
	ctx := context.Background()
	if err := db.InsertAll([]probe.Point{
		probe.Pt2(1, 10, 10), probe.Pt2(2, 20, 20), probe.Pt2(3, 200, 200),
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Update(ctx, func(tx *probe.Tx) error {
		// Duplicate of a snapshot point: rejected.
		if err := tx.Insert(probe.Pt2(1, 10, 10)); err == nil {
			t.Fatal("duplicate insert accepted")
		}
		// Delete then re-insert the same key: accepted.
		if ok, err := tx.Delete(probe.Pt2(1, 10, 10)); err != nil || !ok {
			t.Fatalf("delete: %v %v", ok, err)
		}
		if err := tx.Insert(probe.Pt2(1, 10, 10)); err != nil {
			t.Fatalf("re-insert after delete: %v", err)
		}
		// DeleteBox over the tx view.
		n, err := tx.DeleteBox(probe.Box2(0, 100, 0, 100))
		if err != nil {
			return err
		}
		if n != 2 {
			t.Fatalf("tx DeleteBox removed %d, want 2", n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 {
		t.Fatalf("final Len = %d, want 1", db.Len())
	}
}

// TestTxMetrics: begun/committed/aborted/conflicts counters move as
// transactions end; one-shot auto-commit operations do not count.
func TestTxMetrics(t *testing.T) {
	db := txTestDB(t)
	ctx := context.Background()
	m := db.TxMetrics()

	if err := db.Insert(probe.Pt2(1, 10, 10)); err != nil {
		t.Fatal(err)
	}
	if got := m.Int("begun").Value(); got != 0 {
		t.Fatalf("auto-commit counted as tx: begun = %d", got)
	}

	if err := db.Update(ctx, func(tx *probe.Tx) error {
		return tx.Insert(probe.Pt2(2, 20, 20))
	}); err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin(ctx)
	tx.Rollback()

	t1, _ := db.Begin(ctx)
	t2, _ := db.Begin(ctx)
	t1.Delete(probe.Pt2(2, 20, 20))
	t2.Delete(probe.Pt2(2, 20, 20))
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); !errors.Is(err, probe.ErrTxConflict) {
		t.Fatal(err)
	}

	if got := m.Int("begun").Value(); got != 4 {
		t.Fatalf("begun = %d, want 4", got)
	}
	if got := m.Int("committed").Value(); got != 2 {
		t.Fatalf("committed = %d, want 2", got)
	}
	if got := m.Int("aborted").Value(); got != 2 {
		t.Fatalf("aborted = %d, want 2", got)
	}
	if got := m.Int("conflicts").Value(); got != 1 {
		t.Fatalf("conflicts = %d, want 1", got)
	}
}

// TestTxAfterClose: transactions surface ErrClosed after Close, and
// an open tx never blocks Close.
func TestTxAfterClose(t *testing.T) {
	db, err := probe.Open(probe.MustGrid(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(probe.Pt2(1, 10, 10)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, probe.ErrClosed) {
		t.Fatalf("commit after close: got %v, want ErrClosed", err)
	}
	if _, err := db.Begin(ctx); !errors.Is(err, probe.ErrClosed) {
		t.Fatalf("begin after close: got %v, want ErrClosed", err)
	}
}
